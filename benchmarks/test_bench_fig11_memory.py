"""Fig. 11 -- memory consumed by the Correlator vs. window size.

Paper shape: enlarging the sliding time window dramatically increases the
number of activities buffered by the Correlator and therefore its memory
consumption.
"""

from conftest import run_once
from repro.experiments.figures import figure11


def test_bench_fig11_memory(benchmark, scale, cache):
    result = run_once(benchmark, lambda: figure11(scale, cache))
    smallest = min(scale.windows)
    largest = max(scale.windows)
    for clients in scale.window_clients:
        rows = {row["window_s"]: row for row in result.rows if row["clients"] == clients}
        assert rows[largest]["peak_buffered_activities"] > rows[smallest]["peak_buffered_activities"]
        assert rows[largest]["peak_memory_mb"] >= rows[smallest]["peak_memory_mb"]

    # More clients -> more activities in the same window span.
    if len(scale.window_clients) >= 2:
        low = min(scale.window_clients)
        high = max(scale.window_clients)
        low_peak = max(
            row["peak_buffered_activities"] for row in result.rows if row["clients"] == low
        )
        high_peak = max(
            row["peak_buffered_activities"] for row in result.rows if row["clients"] == high
        )
        assert high_peak > low_peak
