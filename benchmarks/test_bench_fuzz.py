"""Differential fuzzing as a benchmark: coverage and seconds per seed.

Not a figure of the paper: this tracks the reproduction's own test rig.
The fuzz sweep (``repro fuzz``, :mod:`repro.fuzz`) drives generated
scenarios through the full invariant stack; ``BENCH_fuzz.json`` records,
per seed, the shape exercised and the case cost, so the performance
trajectory shows both how much of the scenario space a CI fuzz budget
buys and whether cases are getting slower.
"""

from conftest import emit_bench, run_once
from repro.experiments.figures import figure_fuzz


def test_bench_fuzz_sweep(benchmark, scale, cache):
    result = run_once(benchmark, lambda: figure_fuzz(scale, cache))
    emit_bench(result)

    assert len(result.rows) == scale.fuzz_seeds
    # the sweep is a correctness gate too: every invariant holds on
    # every generated seed
    assert all(row["violations"] == 0 for row in result.rows)
    assert all(row["seconds"] > 0 for row in result.rows)
    assert all(row["activities"] > 0 for row in result.rows)

    # the generator's small-bias still buys shape variety within the
    # default CI budget: several call patterns and more than one
    # workload kind per sweep
    patterns = {p for row in result.rows for p in row["patterns"].split("+")}
    assert len(patterns) >= 2
    assert len(set(result.column("workload"))) >= 2
    assert "s/seed" in result.notes
