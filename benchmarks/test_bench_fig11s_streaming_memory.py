"""Fig. 11s -- batch vs. streaming memory under watermark eviction.

Companion to the Fig. 11 benchmark: reruns the window sweep through the
incremental correlator with a finite eviction horizon.  At benchmark
scale the simulated runs only last a few horizon lengths, so the
headline bounded-state effect (a flat working set as the trace grows
without bound) is asserted by ``tests/test_stream.py`` on a long run;
what this benchmark pins down is that streaming never *costs* anything:
the incremental working set stays comparable to the batch one for every
window, and eviction at this horizon never drops a live request (same
completed-request count everywhere).

Emits ``BENCH_fig11s.json``, the memory half of the recorded performance
trajectory.
"""

from conftest import emit_bench, run_once
from repro.experiments.figures import figure11_streaming


def test_bench_fig11s_streaming_memory(benchmark, scale, cache):
    result = run_once(benchmark, lambda: figure11_streaming(scale, cache))
    emit_bench(result)
    assert len(result.rows) == len(scale.window_clients) * len(scale.windows)

    # Eviction never costs accuracy at this horizon: every row completes
    # the same number of requests as the batch path.
    assert all(row["same_request_count"] for row in result.rows)

    # The streaming working set tracks the batch one (same window, same
    # trace); the sampling instants differ, so allow a small slack.
    for row in result.rows:
        assert row["stream_peak_entries"] <= 1.25 * row["batch_peak_entries"] + 64
