"""Fig. 13 -- effect of the instrumentation on average response time.

Paper claim: the response-time increase caused by tracing stays below
30 %, and is negligible at low concurrency.
"""

from conftest import run_once
from repro.experiments.figures import figure13


def test_bench_fig13_response_overhead(benchmark, scale, cache):
    result = run_once(benchmark, lambda: figure13(scale, cache))
    assert len(result.rows) == len(scale.client_series)
    for row in result.rows:
        assert row["response_time_enabled_ms"] > 0
        assert row["response_time_disabled_ms"] > 0
        assert row["overhead_pct"] < 30.0
