"""Fig. 12 -- effect of the instrumentation on throughput.

Paper claim: enabling TCP_TRACE costs at most ~3.7 % throughput.  The
simulated probes charge a per-activity CPU cost, so the measured overhead
stays small; the benchmark allows a generous bound to absorb sampling
noise at the reduced scale.
"""

from conftest import run_once
from repro.experiments.figures import figure12


def test_bench_fig12_throughput_overhead(benchmark, scale, cache):
    result = run_once(benchmark, lambda: figure12(scale, cache))
    assert len(result.rows) == len(scale.client_series)
    for row in result.rows:
        assert row["throughput_enabled_rps"] > 0
        assert row["throughput_disabled_rps"] > 0
        # small overhead either way (negative values are sampling noise)
        assert abs(row["overhead_pct"]) < 12.0
