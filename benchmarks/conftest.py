"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper through the
figure generators in :mod:`repro.experiments.figures`.  Simulation runs
are memoised in one shared cache for the whole session, so figures that
reuse the same experiment (e.g. Fig. 8 and Fig. 9) only pay for it once.

Scale is controlled by the ``REPRO_SCALE`` environment variable
(``small`` by default, ``full`` for the paper-sized grids).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import default_scale
from repro.experiments.runner import RunCache


@pytest.fixture(scope="session")
def scale():
    return default_scale()


@pytest.fixture(scope="session")
def cache():
    return RunCache()


def run_once(benchmark, func):
    """Run a figure generator exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
