"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper through the
figure generators in :mod:`repro.experiments.figures`.  Simulation runs
are memoised in one shared cache for the whole session, so figures that
reuse the same experiment (e.g. Fig. 8 and Fig. 9) only pay for it once.

Scale is controlled by the ``REPRO_SCALE`` environment variable
(``small`` by default, ``full`` for the paper-sized grids).

Everything in this directory is marked ``slow``: the default test run
(``pytest -x -q``, see ``pytest.ini``) deselects it so the tier-1 suite
stays fast, and CI runs the benchmarks in a dedicated job with
``-m slow`` that also uploads the ``BENCH_*.json`` performance-trajectory
files written by :func:`emit_bench`.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.bench import write_bench_result
from repro.experiments.config import default_scale
from repro.experiments.figures import FigureResult
from repro.experiments.runner import RunCache

_BENCH_ROOT = Path(__file__).resolve().parent


def pytest_collection_modifyitems(config, items):
    """Mark every test collected from this directory as ``slow``."""
    for item in items:
        try:
            in_benchmarks = Path(str(item.fspath)).resolve().is_relative_to(_BENCH_ROOT)
        except (OSError, ValueError):  # pragma: no cover - exotic collectors
            in_benchmarks = False
        if in_benchmarks:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def scale():
    return default_scale()


@pytest.fixture(scope="session")
def cache():
    return RunCache()


def run_once(benchmark, func):
    """Run a figure generator exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


def emit_bench(result: FigureResult) -> Path:
    """Write the figure's ``BENCH_*.json`` performance-trajectory file.

    Output lands in ``$REPRO_BENCH_DIR`` (default ``./bench_results``);
    CI uploads the files as artifacts so every run extends the recorded
    perf trajectory.
    """
    return write_bench_result(result, label="benchmark suite")
