"""Fig. 16 -- throughput and response time for MaxThreads 40 vs. 250.

Paper shape: raising MaxThreads from 40 to 250 increases throughput and
decreases response time in the saturated region (>=500 clients); at the
top of the range a hardware/database limit becomes the new bottleneck.
"""

from conftest import run_once
from repro.experiments.figures import figure16


def test_bench_fig16_maxthreads(benchmark, scale, cache):
    result = run_once(benchmark, lambda: figure16(scale, cache))
    rows = {row["clients"]: row for row in result.rows}
    clients = sorted(rows)

    # At low concurrency the two configurations are equivalent.
    low = rows[clients[0]]
    assert abs(low["tp_mt40_rps"] - low["tp_mt250_rps"]) <= 0.25 * max(low["tp_mt40_rps"], 1)

    # In the saturated region MaxThreads=250 wins on both metrics.
    high = rows[clients[-1]]
    assert high["tp_mt250_rps"] >= high["tp_mt40_rps"]
    assert high["rt_mt250_ms"] <= high["rt_mt40_ms"]

    # And the win is meaningful (the paper's gap is clearly visible).
    assert high["tp_mt250_rps"] > 1.05 * high["tp_mt40_rps"] or (
        high["rt_mt40_ms"] > 1.2 * high["rt_mt250_ms"]
    )
