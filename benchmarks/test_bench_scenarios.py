"""Scenario library -- accuracy across every topology.

Not a figure of the paper (which validates on one deployment); the
topology subsystem's generalisation of its Section 5.2 claim: 100 %
path accuracy on every scenario of the library -- deep chains,
fan-out/join, cache-aside, replication behind a round-robin LB -- under
closed-loop, open-loop Poisson and bursty workloads.
"""

from conftest import run_once
from repro.experiments.figures import scenario_accuracy
from repro.topology.library import scenario_names


def test_bench_scenario_accuracy(benchmark, scale, cache):
    result = run_once(benchmark, lambda: scenario_accuracy(scale, cache))
    assert [row["scenario"] for row in result.rows] == scenario_names()
    for row in result.rows:
        assert row["accuracy"] == 1.0, f"accuracy dropped below 100% for {row}"
        assert row["false_positives"] == 0
        assert row["false_negatives"] == 0
        assert row["requests"] > 0
    kinds = {row["workload"] for row in result.rows}
    assert {"closed", "open", "bursty"} <= kinds
    assert max(row["tiers"] for row in result.rows) >= 5
