"""Fig. 15 -- latency percentages of components vs. concurrency (MaxThreads=40).

Paper shape: as the client count climbs towards saturation, the share of
the httpd->java interaction (waiting for a free application-server thread)
grows dramatically and becomes the dominant part of the end-to-end
latency -- the signature of the misconfigured thread pool.
"""

from conftest import run_once
from repro.experiments.figures import figure15


def test_bench_fig15_latency_percentages(benchmark, scale, cache):
    result = run_once(benchmark, lambda: figure15(scale, cache))
    rows = {row["clients"]: row for row in result.rows}
    clients = sorted(rows)
    assert len(clients) == len(scale.fig15_clients)

    # every row is a percentage breakdown
    segment_columns = [column for column in result.columns if column != "clients"]
    for row in result.rows:
        total = sum(row[column] for column in segment_columns)
        assert 90.0 < total < 110.0

    # the httpd2java share grows dramatically towards saturation
    low = rows[clients[0]]["httpd2java"]
    high = rows[clients[-1]]["httpd2java"]
    assert high > low + 15.0, f"httpd2java did not spike: {low} -> {high}"
    # and becomes one of the top segments at the highest load
    top_segments = sorted(
        segment_columns, key=lambda column: rows[clients[-1]][column], reverse=True
    )
    assert "httpd2java" in top_segments[:2]
