"""Fig. 14 -- the cost of tolerating noise activities.

Paper shape: with a few hundred thousand coexisting noise activities the
Correlator still produces 100 %-accurate paths; the correlation time
increases moderately because the noise must be filtered or discarded.
"""

from conftest import run_once
from repro.experiments.figures import figure14


def test_bench_fig14_noise_tolerance(benchmark, scale, cache):
    result = run_once(benchmark, lambda: figure14(scale, cache))
    assert len(result.rows) == len(scale.noise_clients)
    for row in result.rows:
        assert row["noise_activities"] > 0
        # noise never hurts correctness
        assert row["accuracy_with_noise"] == 1.0
        # discarding noise costs time but not an order of magnitude
        assert row["correlation_time_noise_s"] < 10 * row["correlation_time_no_noise_s"] + 0.5
