"""Sharded-correlation executors: thread pool vs. process pool.

The sharded backend can drive its causally-closed shards on a thread
pool (zero serialisation cost, GIL-bounded for pure-Python work) or on a
process pool (true CPU parallelism, shards and results pickled across
the boundary).  This benchmark correlates one large scenario trace --
the replicated-LB scenario under heavy bursty load, whose replica
spreading and client churn partition into many components -- through
both executors and the batch baseline, emits the timings as a
``BENCH_sharded_executor.json`` trajectory file, and pins the invariant
that matters: all three produce byte-identical results.
"""

from conftest import emit_bench, run_once
from repro.experiments.figures import FigureResult
from repro.pipeline import BackendSpec, RunSource, result_digest
from repro.topology.library import ScenarioConfig


def _large_sharding_source(scale) -> RunSource:
    """A large, well-sharding trace: heavy bursty load on replicated_lb."""
    return RunSource(
        config=ScenarioConfig(
            scenario="replicated_lb",
            arrival_rate=150.0,
            stages=scale.stages,
            seed=scale.seed,
        )
    )


def _executor_rows(scale):
    source = _large_sharding_source(scale)
    backends = {
        "batch": BackendSpec.batch(window=scale.window),
        "sharded_thread": BackendSpec.sharded(window=scale.window, executor="thread"),
        "sharded_process": BackendSpec.sharded(window=scale.window, executor="process"),
    }
    rows = []
    digests = {}
    for label, spec in backends.items():
        result = spec.correlate(source.activities())
        digests[label] = result_digest(result)
        rows.append(
            {
                "executor": label,
                "activities": result.total_activities,
                "cags": len(result.cags),
                "shards": len(result.shard_sizes or []),
                "correlation_time_s": round(result.correlation_time, 4),
                "kact_s": round(
                    result.total_activities
                    / max(result.correlation_time, 1e-9)
                    / 1e3,
                    1,
                ),
            }
        )
    return rows, digests


def test_bench_sharded_executors(benchmark, scale):
    rows, digests = run_once(benchmark, lambda: _executor_rows(scale))
    result = FigureResult(
        figure_id="sharded_executor",
        title="Sharded correlation: thread pool vs. process pool",
        columns=[
            "executor",
            "activities",
            "cags",
            "shards",
            "correlation_time_s",
            "kact_s",
        ],
        rows=rows,
        notes="replicated_lb, bursty 150 req/s",
    )
    emit_bench(result)

    # Identical output regardless of executor (and of sharding at all).
    assert len(set(digests.values())) == 1, digests
    by_executor = {row["executor"]: row for row in rows}
    assert by_executor["sharded_thread"]["shards"] > 1
    assert by_executor["sharded_process"]["shards"] == by_executor["sharded_thread"]["shards"]
    assert all(row["cags"] > 50 for row in rows)
