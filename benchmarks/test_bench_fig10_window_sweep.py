"""Fig. 10 -- correlation time vs. sliding-time-window size.

Paper shape: for a fixed workload the correlation time grows with the
size of the sliding time window, because a larger window keeps many more
activities buffered per step.  The same trend appears here: the largest
window costs several times more correlation time than the smallest, while
the reconstructed paths stay identical (window independence of the
results is covered by the accuracy benchmarks and tests).
"""

from conftest import run_once
from repro.experiments.figures import figure10


def test_bench_fig10_window_sweep(benchmark, scale, cache):
    result = run_once(benchmark, lambda: figure10(scale, cache))
    assert len(result.rows) == len(scale.window_clients) * len(scale.windows)
    assert all(row["correlation_time_s"] > 0 for row in result.rows)

    smallest = min(scale.windows)
    largest = max(scale.windows)
    for clients in scale.window_clients:
        rows = {row["window_s"]: row for row in result.rows if row["clients"] == clients}
        # growing the window by several orders of magnitude costs more
        # correlation time (the paper's Fig. 10 trend); allow equality with
        # a small absolute slack for the tiniest workloads.
        assert (
            rows[largest]["correlation_time_s"]
            >= 0.9 * rows[smallest]["correlation_time_s"]
        )
    # the trend is clearly visible for the most loaded client count
    busiest = max(scale.window_clients)
    rows = {row["window_s"]: row for row in result.rows if row["clients"] == busiest}
    assert rows[largest]["correlation_time_s"] > rows[smallest]["correlation_time_s"]
