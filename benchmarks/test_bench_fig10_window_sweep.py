"""Fig. 10 -- correlation time vs. sliding-time-window size.

Paper shape: for a fixed workload the correlation time *grows* with the
size of the sliding time window, because every candidate-selection step
of the 2009 implementation rescans the (window-sized) ranker buffer.

This reproduction used to show the same trend, but the indexed ranker
(global future-send registry, buffered-send index, cached window low
edge -- see ``repro.core.ranker``) made the per-candidate cost
independent of how much the window buffers: only the *memory* cost still
grows with the window (asserted by the Fig. 11 benchmark).  What this
benchmark now pins down is exactly that improvement -- sweeping the
window across four orders of magnitude must leave the correlation time
within a small constant factor, instead of the paper's blow-up.
"""

from conftest import run_once
from repro.experiments.figures import figure10


def test_bench_fig10_window_sweep(benchmark, scale, cache):
    result = run_once(benchmark, lambda: figure10(scale, cache))
    assert len(result.rows) == len(scale.window_clients) * len(scale.windows)
    assert all(row["correlation_time_s"] > 0 for row in result.rows)

    # The indexed ranker keeps the per-candidate cost O(1) in the buffer
    # size: across the whole window sweep the correlation time for one
    # client count must stay within a small constant factor, with no
    # blow-up toward the large windows of the paper's Fig. 10.  The
    # observed spread is ~1.4x; the 5x bound plus an absolute floor on
    # the denominator leaves room for scheduler noise on shared CI
    # runners without re-admitting the old superlinear shape.
    for clients in scale.window_clients:
        times = [
            row["correlation_time_s"]
            for row in result.rows
            if row["clients"] == clients
        ]
        floor = max(min(times), 0.020)
        assert max(times) < 5 * floor
