"""Section 5.2 -- path accuracy table.

Paper claim: 100 % path accuracy (no false positives, no false negatives)
across workloads, client counts, sliding-window sizes, clock skews and
coexisting noise.
"""

from conftest import run_once
from repro.experiments.figures import accuracy_table


def test_bench_accuracy_table(benchmark, scale, cache):
    result = run_once(benchmark, lambda: accuracy_table(scale, cache))
    assert result.rows, "the accuracy grid must not be empty"
    for row in result.rows:
        assert row["accuracy"] == 1.0, f"accuracy dropped below 100% for {row}"
        assert row["false_positives"] == 0
        assert row["false_negatives"] == 0
    assert any(row["noise"] for row in result.rows)
    assert len({row["clock_skew_s"] for row in result.rows}) >= 2
