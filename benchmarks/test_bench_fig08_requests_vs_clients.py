"""Fig. 8 -- serviced requests vs. concurrent clients (Browse_Only).

Paper shape: the number of requests completed in a fixed duration grows
linearly with the number of emulated clients until the service saturates.
"""

from conftest import run_once
from repro.experiments.figures import figure8


def test_bench_fig08_requests_vs_clients(benchmark, scale, cache):
    result = run_once(benchmark, lambda: figure8(scale, cache))
    clients = result.column("clients")
    requests = result.column("requests")
    assert len(requests) == len(scale.client_series)

    # More clients always means at least as many serviced requests.
    assert requests[-1] > requests[0]

    # Below saturation the growth is roughly linear: doubling the clients
    # roughly doubles the requests (within 40% tolerance at small scale).
    low_clients, low_requests = clients[0], requests[0]
    mid_index = 1 if len(clients) > 1 else 0
    expected = low_requests * clients[mid_index] / low_clients
    assert requests[mid_index] > 0.6 * expected
    assert requests[mid_index] < 1.6 * expected
