"""Fig. 9 -- correlation time vs. number of serviced requests.

Paper shape: the Correlator's running time grows linearly with the number
of requests processed (window fixed at 10 ms).

This is the repository's headline perf benchmark: besides the shape
assertions it emits ``BENCH_fig9.json`` so successive PRs leave a
machine-comparable performance trajectory (compare against the committed
baseline with ``repro profile --baseline benchmarks/baselines/...``).
"""

from conftest import emit_bench, run_once
from repro.experiments.figures import figure9


def test_bench_fig09_correlation_time(benchmark, scale, cache):
    result = run_once(benchmark, lambda: figure9(scale, cache))
    emit_bench(result)
    requests = result.column("requests")
    times = result.column("correlation_time_s")
    assert all(value > 0 for value in times)

    # Correlating several times more requests must take noticeably longer.
    assert requests[-1] > 2 * requests[0]
    assert times[-1] > times[0]

    # Per-request cost stays within a small constant factor across the
    # sweep (linear scaling, not quadratic blow-up).
    per_request = [time / max(1, count) for time, count in zip(times, requests)]
    assert max(per_request) < 8 * min(per_request)
