"""Extra comparison -- PreciseTracer vs. probabilistic baselines.

Quantifies the paper's Section 6 argument: probabilistic correlation
(Project5 / WAP5 style) loses precision under concurrency, while
PreciseTracer's deterministic correlation stays exact on the same traces.
"""

from conftest import run_once
from repro.experiments.figures import baseline_comparison


def test_bench_baseline_accuracy(benchmark, scale, cache):
    result = run_once(benchmark, lambda: baseline_comparison(scale, cache))
    assert result.rows
    for row in result.rows:
        assert row["precisetracer"] == 1.0
        assert row["wap5_style"] <= 1.0
        assert row["project5_style"] <= 1.0
    # at the highest tested concurrency the probabilistic approaches lag
    last = result.rows[-1]
    assert min(last["wap5_style"], last["project5_style"]) < 1.0
