"""Fig. 17 -- latency percentages for injected performance problems.

Paper shape, per abnormal case (vs. the normal profile):

* EJB_Delay       -- the java-internal share jumps from <10 % to >40 %;
* Database_Lock   -- the mysqld-internal share grows markedly;
* EJB_Network     -- the interactions touching the second tier grow while
                     the second tier's internal share does not.
"""

from conftest import run_once
from repro.experiments.figures import figure17, figure17_diagnosis


def test_bench_fig17_fault_injection(benchmark, scale, cache):
    result = run_once(benchmark, lambda: figure17(scale, cache))
    rows = {row["scenario"]: row for row in result.rows}
    assert set(rows) == {"normal", "EJB_Delay", "Database_Lock", "EJB_Network"}
    normal = rows["normal"]

    # EJB_Delay: the second tier's internal latency dominates the growth.
    assert rows["EJB_Delay"]["java2java"] > normal["java2java"] + 20.0

    # Database_Lock: the third tier's internal latency share grows.
    assert rows["Database_Lock"]["mysqld2mysqld"] > normal["mysqld2mysqld"] + 10.0

    # EJB_Network: interactions touching the second tier grow.
    interactions = ("httpd2java", "java2httpd", "mysqld2java", "java2mysqld")
    grew = [
        label for label in interactions if rows["EJB_Network"][label] > normal[label] + 1.0
    ]
    assert len(grew) >= 2, f"expected second-tier interactions to grow, got {grew}"
    # every abnormal case slows the service down
    for scenario in ("EJB_Delay", "Database_Lock", "EJB_Network"):
        assert rows[scenario]["mean_response_time_ms"] > normal["mean_response_time_ms"]


def test_bench_fig17_diagnosis_points_at_injected_tier(benchmark, scale, cache):
    suspects = run_once(benchmark, lambda: figure17_diagnosis(scale, cache, threshold=5.0))
    assert suspects["EJB_Delay"] and suspects["EJB_Delay"][0] == "java"
    assert "mysqld" in suspects["Database_Lock"]
    assert "java" in suspects["EJB_Network"]
