"""Overhead control -- sampling rate vs. accuracy and correlation cost.

Not a figure of the paper: the 2009 system bounds analysis overhead by
splitting correlation across machines, while per-request sampling is the
complementary axis that precise (non-probabilistic) correlation uniquely
enables -- trace a deterministic subset exactly instead of everything
approximately.  This benchmark sweeps the uniform sampling rate across
the scenario library and records the trade in ``BENCH_sampling.json``:
analytical fidelity of the sampled ranked report on one side,
correlation time and engine state on the other.
"""

from conftest import emit_bench, run_once
from repro.experiments.figures import figure_sampling


def test_bench_sampling_rate_sweep(benchmark, scale, cache):
    result = run_once(benchmark, lambda: figure_sampling(scale, cache))
    emit_bench(result)

    assert {row["scenario"] for row in result.rows} == set(scale.sampling_scenarios)
    for row in result.rows:
        # the sampler selects, never approximates: the sampled report can
        # lose patterns, but whatever it keeps is exact
        assert 0.0 <= row["pattern_coverage"] <= 1.0
        assert row["requests_sampled"] <= row["requests_full"]

    for scenario in scale.sampling_scenarios:
        rows = {
            row["rate"]: row
            for row in result.rows
            if row["scenario"] == scenario
        }
        full = rows[1.0]
        # rate 1.0 is the in-band self-check: identical to the unsampled run
        assert full["requests_sampled"] == full["requests_full"]
        assert full["pattern_coverage"] == 1.0
        assert full["profile_drift_pp"] == 0.0
        # the realised fraction tracks the configured rate monotonically
        # (nested subsets: lowering the rate can only drop requests) ...
        ordered = [rows[rate] for rate in sorted(rows)]
        fractions = [row["sample_fraction"] for row in ordered]
        assert fractions == sorted(fractions)
        # ... and sampling sheds engine state at the lowest rate
        assert ordered[0]["state_vs_full"] <= 1.0
