"""Columnar core -- memory of the ActivityTable vs a plain object list.

Not a paper figure: this benchmark tracks the memory side of the
interning refactor (ROADMAP item 2).  For each client count the same
classified trace is held once as a Python list of ``Activity`` objects
and once as the columnar :class:`repro.core.interning.ActivityTable`;
``tracemalloc`` measures what each representation retains and a gc scan
counts the ``Activity`` instances left alive.  The table must retain a
small fraction of the object list's bytes and keep *zero* ``Activity``
objects alive until rows are materialised at the CAG/export boundary.

Emits ``BENCH_interning.json`` (also available interactively via
``repro profile --figure interning``).
"""

from conftest import emit_bench, run_once
from repro.experiments.figures import figure_interning


def test_bench_interning_memory(benchmark, scale, cache):
    result = run_once(benchmark, lambda: figure_interning(scale, cache))
    assert len(result.rows) == len(scale.window_clients)
    for row in result.rows:
        # The columnar table holds no Activity objects at all (rows are
        # materialised lazily); the object list holds one per activity.
        assert row["columnar_live_activities"] <= 2
        assert row["object_live_activities"] >= row["activities"] * 0.99
        # Struct-packed arrays beat per-object storage by a wide margin;
        # 3x is a deliberately loose floor (measured ~8-10x).
        assert row["retained_ratio"] >= 3.0
        assert row["columnar_kb"] < row["object_kb"]

    emit_bench(result)
