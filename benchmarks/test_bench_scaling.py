"""Scale-out figure: throughput vs shard count, executor and schedule.

Runs :func:`repro.experiments.figures.figure_scaling` -- the same
generator behind ``repro profile --figure scaling`` -- over a skewed
four-scenario composite trace, emits ``BENCH_scaling.json``, and pins
the claims the scheduler work makes:

* the composite trace really is skewed (two dominant components);
* cost-aware scheduling (balanced/stealing) beats the static
  round-robin fold by >= 1.3x aggregate throughput at 4 shards, where
  round-robin stacks both heavy components onto one slot;
* the planned makespan of the LPT packing is never worse than the
  static plan's (LPT is the better packer by construction).

The committed baseline (``benchmarks/baselines/BENCH_scaling_baseline
.json``) is gated separately in CI via ``repro.experiments.bench
compare`` on the makespan column.
"""

from conftest import emit_bench, run_once
from repro.experiments.figures import figure_scaling


def test_bench_scaling(benchmark, scale):
    result = run_once(benchmark, lambda: figure_scaling(scale))
    emit_bench(result)

    by_case = {row["case"]: row for row in result.rows}
    # Every sweep point correlates the identical trace.
    assert len({row["activities"] for row in result.rows}) == 1
    assert all(row["components"] >= 6 for row in result.rows)

    # The headline claim: at 4 shards the static fold stacks the heavy
    # components while the cost-aware schedules spread them.
    for executor in scale.scaling_executors:
        static = by_case[f"4x-{executor}-static"]
        stealing = by_case[f"4x-{executor}-stealing"]
        balanced = by_case[f"4x-{executor}-balanced"]
        ratio = stealing["throughput_kact_s"] / static["throughput_kact_s"]
        assert ratio >= 1.3, (
            f"stealing only {ratio:.2f}x over static on {executor} "
            f"(static makespan {static['correlation_time_s']}s, "
            f"stealing {stealing['correlation_time_s']}s)"
        )
        assert (
            balanced["correlation_time_s"] <= static["correlation_time_s"]
        ), "LPT packing must not be slower than round-robin on the skewed trace"
