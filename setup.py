"""Setuptools shim.

Kept alongside ``pyproject.toml`` so the package can be installed in
editable mode on machines without the ``wheel`` package or network access
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
