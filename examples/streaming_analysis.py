#!/usr/bin/env python3
"""Streaming analysis: correlate a live log incrementally, request by request.

The quickstart example batch-correlates a finished run.  This walkthrough
shows the *online* pipeline instead, the mode a production deployment
would run against live multi-tier traffic:

1. simulate a RUBiS-like run and write its TCP_TRACE records to a log
   file on disk, exactly as the paper's probes would;
2. tail that file with :class:`repro.FileTailSource` -- chunked reads,
   partial lines reassembled across chunk boundaries;
3. classify lines into typed activities on the fly
   (:class:`repro.stream.ActivityStream`);
4. push chunks into an :class:`repro.IncrementalEngine`, which emits
   every Component Activity Graph the moment the request's END activity
   is correlated -- no waiting for the end of the trace;
5. watch the watermark advance and stale state get evicted (the
   ``horizon`` knob that keeps memory bounded on endless streams);
6. verify at the end that the incrementally-built paths are exactly the
   ones the batch correlator would have produced.

Run with::

    python examples/streaming_analysis.py
"""

from __future__ import annotations

import os
import tempfile

from repro import (
    Correlator,
    IncrementalEngine,
    RubisConfig,
    WorkloadStages,
    run_rubis,
)
from repro.core.log_format import format_record
from repro.stream import ActivityStream, FileTailSource, iter_chunks


def main() -> None:
    # -- 1. simulate and persist the per-node logs --------------------------
    config = RubisConfig(
        clients=80,
        stages=WorkloadStages(up_ramp=1.0, runtime=6.0, down_ramp=0.5),
        clock_skew=0.002,
        seed=23,
    )
    print("== running the simulated three-tier deployment ==")
    run = run_rubis(config)
    print(f"  requests completed : {run.completed_requests}")
    print(f"  activities logged  : {run.total_activities}")

    # A merged feed, as a log shipper tailing all three nodes would see it.
    records = sorted(run.all_records(), key=lambda record: record.timestamp)
    with tempfile.NamedTemporaryFile(
        "w", suffix=".log", delete=False, encoding="utf-8"
    ) as handle:
        log_path = handle.name
        for record in records:
            handle.write(format_record(record) + "\n")
    print(f"  log written to     : {log_path}")

    try:
        # -- 2-4. tail + classify + correlate incrementally ------------------
        tail = FileTailSource(log_path, chunk_bytes=16 * 1024)
        stream = ActivityStream(
            frontends=[run.frontend_spec()], ignore_programs={"sshd", "rlogind"}
        )
        engine = IncrementalEngine(
            window=0.010,   # the paper's default sliding window
            horizon=5.0,    # evict state idle for > 5 s of trace time
            skew_bound=0.005,
        )

        print("\n== streaming the log through the incremental engine ==")
        finished = 0
        peak_pending = 0
        lines = tail.drain()  # one poll here; a live tailer would loop poll()
        for chunk in iter_chunks(lines, 400):
            for cag in engine.ingest(stream.classify_lines(chunk)):
                finished += 1
                if finished <= 5 or finished % 50 == 0:
                    duration = (cag.duration() or 0.0) * 1000
                    print(
                        f"  finished CAG #{finished:<4d} "
                        f"vertices={len(cag):<3d} latency={duration:6.1f} ms "
                        f"(watermark {engine.watermark():.3f})"
                    )
            peak_pending = max(peak_pending, engine.pending_state_size())
        finished += len(engine.flush())
        result = engine.result()

        stats = result.engine_stats
        print(f"\n  total finished paths : {finished}")
        print(f"  peak live entries    : {peak_pending}")
        print(
            "  evictions            : "
            f"{stats.evicted_mmap_entries} mmap, "
            f"{stats.evicted_cmap_entries} cmap, "
            f"{stats.evicted_open_cags} open CAGs"
        )

        # -- 6. cross-check against the batch path ---------------------------
        print("\n== verifying against the batch correlator ==")
        batch = Correlator(window=0.010).correlate(run.activities())
        print(f"  batch paths    : {len(batch.cags)}")
        print(f"  streaming paths: {len(result.cags)}")
        report = run.make_tracer().trace_records(run.all_records()).accuracy(
            run.ground_truth
        )
        print(f"  batch accuracy : {report.accuracy * 100:.2f} %")
        from repro.core.accuracy import path_accuracy

        streaming_report = path_accuracy(result.cags, run.ground_truth)
        print(f"  stream accuracy: {streaming_report.accuracy * 100:.2f} %")
    finally:
        os.unlink(log_path)


if __name__ == "__main__":
    main()
