#!/usr/bin/env python3
"""Streaming analysis: correlate a live log incrementally, request by request.

The quickstart example batch-correlates a finished run.  This walkthrough
shows the *online* pipeline instead, the mode a production deployment
would run against live multi-tier traffic -- the same
:class:`repro.Pipeline` facade, with two substitutions:

1. the **source** is a TCP_TRACE log file on disk, read through the
   chunked tail reader (:class:`repro.LogSource` wraps
   :class:`repro.FileTailSource`: chunked reads, partial lines
   reassembled across chunk boundaries, malformed lines counted);
2. the **backend** is ``BackendSpec.streaming(...)``: every Component
   Activity Graph is emitted through the ``on_cag`` hook the moment the
   request's END activity is correlated -- no waiting for the end of the
   trace -- while the ``horizon`` knob keeps memory bounded on endless
   streams by evicting state idle for longer than the horizon;
3. at the end, :meth:`repro.Pipeline.verify_equivalence` re-runs the
   same source through the batch and sharded backends and asserts all
   three reconstructions are identical -- the repo's central invariant,
   available as one API call.

To follow a file that is still being written, drive
:class:`repro.IncrementalEngine` directly with ``FileTailSource.poll()``
in a loop; the facade covers the data-at-rest shape.

Run with::

    python examples/streaming_analysis.py
"""

from __future__ import annotations

import os
import tempfile

from repro import (
    BackendSpec,
    LogSource,
    Pipeline,
    RubisConfig,
    WorkloadStages,
    run_rubis,
)
from repro.core.log_format import format_record


def main() -> None:
    # -- 1. simulate and persist the logs ------------------------------------
    config = RubisConfig(
        clients=80,
        stages=WorkloadStages(up_ramp=1.0, runtime=6.0, down_ramp=0.5),
        clock_skew=0.002,
        seed=23,
    )
    print("== running the simulated three-tier deployment ==")
    run = run_rubis(config)
    print(f"  requests completed : {run.completed_requests}")
    print(f"  activities logged  : {run.total_activities}")

    # A merged feed, as a log shipper tailing all three nodes would see it.
    records = sorted(run.all_records(), key=lambda record: record.timestamp)
    with tempfile.NamedTemporaryFile(
        "w", suffix=".log", delete=False, encoding="utf-8"
    ) as handle:
        log_path = handle.name
        for record in records:
            handle.write(format_record(record) + "\n")
    print(f"  log written to     : {log_path}")

    try:
        # -- 2. the online pipeline: tail + classify + correlate -------------
        pipeline = Pipeline(
            source=LogSource(
                log_path,
                frontend=run.frontend_spec(),
                ignore_programs={"sshd", "rlogind"},
                chunk_bytes=16 * 1024,
            ),
            backend=BackendSpec.streaming(
                window=0.010,   # the paper's default sliding window
                horizon=5.0,    # evict state idle for > 5 s of trace time
                skew_bound=0.005,
            ),
        )

        print("\n== streaming the log through the incremental backend ==")
        finished = 0

        def on_cag(cag) -> None:
            nonlocal finished
            finished += 1
            if finished <= 5 or finished % 50 == 0:
                duration = (cag.duration() or 0.0) * 1000
                print(
                    f"  finished CAG #{finished:<4d} "
                    f"vertices={len(cag):<3d} latency={duration:6.1f} ms"
                )

        session = pipeline.run(on_cag=on_cag)
        result = session.trace.correlation
        stats = result.engine_stats
        print(f"\n  total finished paths : {finished}")
        print(
            "  peak live entries    : "
            f"{result.peak_state_entries + result.peak_buffered_activities}"
        )
        print(
            "  evictions            : "
            f"{stats.evicted_mmap_entries} mmap, "
            f"{stats.evicted_cmap_entries} cmap, "
            f"{stats.evicted_open_cags} open CAGs"
        )

        # -- 3. accuracy + cross-backend equivalence -------------------------
        print("\n== verifying against ground truth and the other backends ==")
        # The log file carries no oracle, so score against the run's own
        # ground truth (a simulation source would provide it to an
        # AccuracyStage automatically).
        accuracy_report = session.trace.accuracy(run.ground_truth)
        print(f"  stream accuracy : {accuracy_report.accuracy * 100:.2f} %")
        report = pipeline.verify_equivalence()
        print(report.describe())
        report.require()  # raises if any backend disagreed
    finally:
        os.unlink(log_path)


if __name__ == "__main__":
    main()
