#!/usr/bin/env python3
"""Misconfiguration shooting: find the undersized JBoss thread pool.

Reproduces the workflow of Section 5.4.1.  With the application server's
``MaxThreads`` left at its default of 40, throughput degrades and response
times climb as the client count passes the saturation point -- yet no
node's CPU or I/O looks busy, so classic utilisation-based debugging gets
stuck.  PreciseTracer's latency percentages show the time going into the
httpd -> java *interaction* (requests waiting for a free pool thread),
which points straight at the thread-pool configuration.  Raising
``MaxThreads`` to 250 removes the bottleneck.

Each load level is one :class:`repro.Pipeline` run (simulation source +
batch backend + :class:`repro.ProfileStage`); the diagnosis step is a
:class:`repro.DiagnosisStage` comparing the heavy-load session against
the moderate-load reference.

Run with::

    python examples/misconfiguration_shooting.py
"""

from __future__ import annotations

from repro import (
    BackendSpec,
    DiagnosisStage,
    Pipeline,
    ProfileStage,
    RubisConfig,
    WorkloadStages,
)

STAGES = WorkloadStages(up_ramp=1.5, runtime=8.0, down_ramp=0.5)
LIGHT_LOAD = 300
HEAVY_LOAD = 900


def run_pipeline(clients: int, max_threads: int, label: str):
    config = RubisConfig(
        clients=clients,
        max_threads=max_threads,
        stages=STAGES,
        clock_skew=0.001,
        seed=23,
    )
    pipeline = Pipeline(
        source=config,
        backend=BackendSpec.batch(window=0.010),
        stages=[ProfileStage(label)],
    )
    return pipeline.run()


def print_profile(title, session) -> None:
    run = session.run
    profile = session.analyses["profile"]
    print(f"\n--- {title} ---")
    print(f"  throughput        : {run.throughput:.1f} req/s")
    print(f"  mean response time: {run.mean_response_time * 1000:.1f} ms")
    print(f"  CPU utilisation   : "
          + ", ".join(f"{node} {value * 100:.0f}%" for node, value in run.cpu_utilisation.items()))
    for label, share in sorted(profile.percentages.items(), key=lambda kv: -kv[1]):
        print(f"    {label:16s} {share:6.1f} %")


def main() -> None:
    print("Step 1: baseline at moderate load (MaxThreads=40)")
    light = run_pipeline(LIGHT_LOAD, 40, f"{LIGHT_LOAD} clients")
    print_profile(f"{LIGHT_LOAD} clients, MaxThreads=40", light)

    print("\nStep 2: the problem appears at high load (MaxThreads=40)")
    heavy = run_pipeline(HEAVY_LOAD, 40, f"{HEAVY_LOAD} clients")
    print_profile(f"{HEAVY_LOAD} clients, MaxThreads=40", heavy)
    print("\n  note: CPU stays far from saturation -- utilisation-based debugging")
    print("  would not explain the degraded throughput and response time.")

    print("\nStep 3: PreciseTracer's diagnosis (latency-percentage changes)")
    result = DiagnosisStage(light, threshold=10.0, label="heavy").run(heavy)
    print(result.report())
    suspect = result.primary_suspect
    if suspect is not None and suspect.label == "httpd2java":
        print("\n  => the wait happens between httpd handing the request over and a")
        print("     JBoss worker thread picking it up: the thread pool is too small.")

    print("\nStep 4: fix the configuration (MaxThreads=250) and re-run")
    fixed = run_pipeline(HEAVY_LOAD, 250, "fixed")
    print_profile(f"{HEAVY_LOAD} clients, MaxThreads=250", fixed)

    heavy_run, fixed_run = heavy.run, fixed.run
    speedup = heavy_run.mean_response_time / max(fixed_run.mean_response_time, 1e-9)
    gain = 100.0 * (fixed_run.throughput - heavy_run.throughput) / max(heavy_run.throughput, 1e-9)
    print(f"\nResult: +{gain:.0f}% throughput, {speedup:.1f}x faster responses after the fix.")


if __name__ == "__main__":
    main()
