#!/usr/bin/env python3
"""Fault localisation: pinpoint injected performance problems.

Reproduces Section 5.4.2.  Three performance problems are injected into
the running service, one at a time:

* ``EJB_Delay``      -- a random delay inside the application tier's code;
* ``Database_Lock``  -- the ``items`` table is locked, stalling queries;
* ``EJB_Network``    -- the application-server node's NIC drops to 10 Mbps.

Each scenario is one :class:`repro.Pipeline` run (simulation source +
batch backend + :class:`repro.ProfileStage`); a
:class:`repro.DiagnosisStage` then compares each faulty profile against
the healthy session and reports which component PreciseTracer implicates.

Run with::

    python examples/fault_localization.py
"""

from __future__ import annotations

from repro import (
    BackendSpec,
    DiagnosisStage,
    FaultConfig,
    Pipeline,
    ProfileStage,
    RubisConfig,
    WorkloadStages,
)

STAGES = WorkloadStages(up_ramp=1.5, runtime=8.0, down_ramp=0.5)

SCENARIOS = {
    "normal": FaultConfig.none(),
    "EJB_Delay": FaultConfig.ejb_delay_case(),
    "Database_Lock": FaultConfig.database_lock_case(),
    "EJB_Network": FaultConfig.ejb_network_case(),
}

#: The tier the paper concludes is at fault in each abnormal case.
EXPECTED_SUSPECTS = {
    "EJB_Delay": "java",
    "Database_Lock": "mysqld",
    "EJB_Network": "java",
}


def scenario_pipeline(name: str, faults: FaultConfig) -> Pipeline:
    config = RubisConfig(
        clients=300,
        workload="default",
        faults=faults,
        stages=STAGES,
        clock_skew=0.001,
        seed=31,
    )
    return Pipeline(
        source=config,
        backend=BackendSpec.batch(window=0.010),
        stages=[ProfileStage(name)],
    )


def main() -> None:
    sessions = {}
    for name, faults in SCENARIOS.items():
        print(f"running scenario {name:14s} ({faults.describe()}) ...")
        sessions[name] = scenario_pipeline(name, faults).run()

    profiles = {name: session.analyses["profile"] for name, session in sessions.items()}
    print("\n== latency percentages per scenario ==")
    labels = sorted({label for profile in profiles.values() for label in profile.percentages})
    header = "segment".ljust(16) + "".join(name.rjust(16) for name in SCENARIOS)
    print(header)
    for label in labels:
        row = label.ljust(16)
        for name in SCENARIOS:
            row += f"{profiles[name].percentages.get(label, 0.0):16.1f}"
        print(row)

    print("\n== diagnoses ==")
    reference = sessions["normal"]
    hits = 0
    for name in SCENARIOS:
        if name == "normal":
            continue
        stage = DiagnosisStage(reference, threshold=5.0, label=name)
        result = stage.run(sessions[name])
        suspects = result.suspected_components()
        expected = EXPECTED_SUSPECTS[name]
        verdict = "OK" if expected in suspects[:2] else "MISS"
        hits += verdict == "OK"
        print(f"\n{name} (expected suspect: {expected}) -> {verdict}")
        print(result.report())

    print(f"\n{hits}/3 injected faults localised to the expected tier.")


if __name__ == "__main__":
    main()
