#!/usr/bin/env python3
"""Fault localisation: pinpoint injected performance problems.

Reproduces Section 5.4.2.  Three performance problems are injected into
the running service, one at a time:

* ``EJB_Delay``      -- a random delay inside the application tier's code;
* ``Database_Lock``  -- the ``items`` table is locked, stalling queries;
* ``EJB_Network``    -- the application-server node's NIC drops to 10 Mbps.

For each case the example compares the latency percentages of the dominant
causal-path pattern against the healthy profile and reports which
component PreciseTracer implicates.

Run with::

    python examples/fault_localization.py
"""

from __future__ import annotations

from repro import FaultConfig, RubisConfig, WorkloadStages, diagnose, run_rubis

STAGES = WorkloadStages(up_ramp=1.5, runtime=8.0, down_ramp=0.5)

SCENARIOS = {
    "normal": FaultConfig.none(),
    "EJB_Delay": FaultConfig.ejb_delay_case(),
    "Database_Lock": FaultConfig.database_lock_case(),
    "EJB_Network": FaultConfig.ejb_network_case(),
}

#: The tier the paper concludes is at fault in each abnormal case.
EXPECTED_SUSPECTS = {
    "EJB_Delay": "java",
    "Database_Lock": "mysqld",
    "EJB_Network": "java",
}


def profile_scenario(name: str, faults: FaultConfig):
    config = RubisConfig(
        clients=300,
        workload="default",
        faults=faults,
        stages=STAGES,
        clock_skew=0.001,
        seed=31,
    )
    run = run_rubis(config)
    trace = run.trace(window=0.010)
    return run, trace.profile(name)


def main() -> None:
    profiles = {}
    runs = {}
    for name, faults in SCENARIOS.items():
        print(f"running scenario {name:14s} ({faults.describe()}) ...")
        runs[name], profiles[name] = profile_scenario(name, faults)

    reference = profiles["normal"]
    print("\n== latency percentages per scenario ==")
    labels = sorted({label for profile in profiles.values() for label in profile.percentages})
    header = "segment".ljust(16) + "".join(name.rjust(16) for name in SCENARIOS)
    print(header)
    for label in labels:
        row = label.ljust(16)
        for name in SCENARIOS:
            row += f"{profiles[name].percentages.get(label, 0.0):16.1f}"
        print(row)

    print("\n== diagnoses ==")
    hits = 0
    for name in SCENARIOS:
        if name == "normal":
            continue
        result = diagnose(reference, profiles[name], threshold=5.0)
        suspects = result.suspected_components()
        expected = EXPECTED_SUSPECTS[name]
        verdict = "OK" if expected in suspects[:2] else "MISS"
        hits += verdict == "OK"
        print(f"\n{name} (expected suspect: {expected}) -> {verdict}")
        print(result.report())

    print(f"\n{hits}/3 injected faults localised to the expected tier.")


if __name__ == "__main__":
    main()
