#!/usr/bin/env python3
"""Offline analysis of raw TCP_TRACE log files.

PreciseTracer is an *offline* tool: the probes write per-node log files in
the format ``timestamp hostname program pid tid SEND|RECEIVE
src_ip:port-dst_ip:port size`` and the correlator is run later on the
gathered files.  This example shows that workflow through the pipeline
facade, starting from nothing but text files and network-level facts:

1. run a simulated deployment (with coexisting noise traffic) and write
   one log file per service node into a temporary directory -- exactly the
   artefacts a real deployment would hand you;
2. build a :class:`repro.Pipeline` whose source is a
   :class:`repro.LogSource` over those files (frontend address + noise
   program names are all it needs) and whose sinks export the results:
   a trace-summary JSON document, the CAG stream as JSON Lines, and
   Graphviz DOT renderings of the first few causal paths;
3. print the reconstructed paths, the noise statistics and the ranked
   per-pattern latency report.

Run with::

    python examples/offline_log_analysis.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    BackendSpec,
    CagJsonlSink,
    DotSink,
    FrontendSpec,
    LogSource,
    NoiseConfig,
    Pipeline,
    RankedLatencyStage,
    RubisConfig,
    SummaryJsonSink,
    WorkloadStages,
    run_rubis,
)
from repro.core.log_format import format_record


def write_log_files(run, directory: Path) -> list:
    """Write one TCP_TRACE log file per traced node, as the probes would."""
    paths = []
    for hostname, records in sorted(run.records_by_node.items()):
        path = directory / f"tcp_trace_{hostname}.log"
        with path.open("w", encoding="utf-8") as handle:
            handle.write(f"# TCP_TRACE log gathered from node {hostname}\n")
            for record in records:
                handle.write(format_record(record) + "\n")
        paths.append(path)
        print(f"  wrote {path.name}: {len(records)} records")
    return paths


def main() -> None:
    print("== step 1: run the deployment and gather per-node logs ==")
    config = RubisConfig(
        clients=120,
        stages=WorkloadStages(up_ramp=1.0, runtime=6.0, down_ramp=0.5),
        noise=NoiseConfig.paper_noise(scale=0.5),
        # Keep the skew below the transfer latencies so the interaction
        # latencies stay meaningful; correctness does not depend on it.
        clock_skew=0.002,
        seed=47,
    )
    run = run_rubis(config)
    workdir = Path(tempfile.mkdtemp(prefix="precisetracer_logs_"))
    log_files = write_log_files(run, workdir)

    print("\n== step 2: offline correlation from the raw files ==")
    source = LogSource(
        log_files,
        frontend=FrontendSpec(
            ip="10.0.0.1",
            port=80,
            internal_ips=frozenset({"10.0.0.1", "10.0.0.2", "10.0.0.3"}),
        ),
        ignore_programs={"sshd", "rlogind"},  # attribute-based noise filter
    )
    pipeline = Pipeline(
        source=source,
        backend=BackendSpec.batch(window=0.005),
        stages=[RankedLatencyStage(top=4)],
        sinks=[
            SummaryJsonSink(workdir / "trace_summary.json"),
            CagJsonlSink(workdir / "cags.jsonl"),
            DotSink(workdir / "dot", limit=3),
        ],
    )
    session = pipeline.run()
    result = session.trace

    print(f"  raw lines read          : {source.lines_read}")
    print(f"  filtered by attributes  : {result.filtered_records} (sshd / rlogind)")
    print(f"  discarded by is_noise   : {result.correlation.ranker_stats.noise_discarded}")
    print(f"  causal paths completed  : {result.request_count}")
    print(f"  correlation time        : {result.correlation_time:.3f} s")

    print("\n== step 3: ranked per-pattern latency report ==")
    for row in session.analyses["ranked_latency"]:
        top = sorted(row["percentages"].items(), key=lambda kv: -kv[1])[:3]
        top_text = ", ".join(f"{label} {share:.0f}%" for label, share in top)
        print(
            f"  {row['paths']:4d} paths x {row['activities_per_path']:2d} activities, "
            f"avg {row['average_latency_s'] * 1000:7.1f} ms  ({top_text})"
        )

    print("\n== step 4: sanity check against the simulator's ground truth ==")
    accuracy = session.trace.accuracy(run.ground_truth, time_tolerance=1e-5)
    print(f"  path accuracy: {accuracy.accuracy * 100:.2f} % "
          f"({accuracy.correct_paths}/{accuracy.total_requests} requests)")

    print("\n== step 5: exported artefacts ==")
    for sink_name, paths in session.artifacts.items():
        for path in paths:
            print(f"  {sink_name:12s} -> {path}")
    print(f"\nlog files kept in {workdir}")


if __name__ == "__main__":
    main()
