#!/usr/bin/env python3
"""Offline analysis of raw TCP_TRACE log files.

PreciseTracer is an *offline* tool: the probes write per-node log files in
the format ``timestamp hostname program pid tid SEND|RECEIVE
src_ip:port-dst_ip:port size`` and the Correlator is run later on the
gathered files.  This example shows that workflow on plain text:

1. run a simulated deployment (with coexisting noise traffic) and write
   one log file per service node into a temporary directory -- exactly the
   artefacts a real deployment would hand you;
2. build a :class:`PreciseTracer` from nothing but network-level facts
   (frontend address, noise program names) and feed it the files;
3. print the reconstructed paths, the noise statistics and a small
   per-pattern latency report.

Run with::

    python examples/offline_log_analysis.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import FrontendSpec, NoiseConfig, PreciseTracer, RubisConfig, WorkloadStages, run_rubis
from repro.core.log_format import format_record


def write_log_files(run, directory: Path) -> list:
    """Write one TCP_TRACE log file per traced node, as the probes would."""
    paths = []
    for hostname, records in sorted(run.records_by_node.items()):
        path = directory / f"tcp_trace_{hostname}.log"
        with path.open("w", encoding="utf-8") as handle:
            handle.write(f"# TCP_TRACE log gathered from node {hostname}\n")
            for record in records:
                handle.write(format_record(record) + "\n")
        paths.append(path)
        print(f"  wrote {path.name}: {len(records)} records")
    return paths


def main() -> None:
    print("== step 1: run the deployment and gather per-node logs ==")
    config = RubisConfig(
        clients=120,
        stages=WorkloadStages(up_ramp=1.0, runtime=6.0, down_ramp=0.5),
        noise=NoiseConfig.paper_noise(scale=0.5),
        # Keep the skew below the transfer latencies so the interaction
        # latencies stay meaningful; correctness does not depend on it.
        clock_skew=0.002,
        seed=47,
    )
    run = run_rubis(config)
    workdir = Path(tempfile.mkdtemp(prefix="precisetracer_logs_"))
    log_files = write_log_files(run, workdir)

    print("\n== step 2: offline correlation from the raw files ==")
    tracer = PreciseTracer(
        frontends=[
            FrontendSpec(
                ip="10.0.0.1",
                port=80,
                internal_ips=frozenset({"10.0.0.1", "10.0.0.2", "10.0.0.3"}),
            )
        ],
        window=0.005,
        ignore_programs={"sshd", "rlogind"},  # attribute-based noise filter
    )
    lines = []
    for path in log_files:
        lines.extend(path.read_text(encoding="utf-8").splitlines())
    result = tracer.trace_lines(lines)

    print(f"  raw records read        : {len(lines)}")
    print(f"  filtered by attributes  : {result.filtered_records} (sshd / rlogind)")
    print(f"  discarded by is_noise   : {result.correlation.ranker_stats.noise_discarded}")
    print(f"  causal paths completed  : {result.request_count}")
    print(f"  correlation time        : {result.correlation_time:.3f} s")

    print("\n== step 3: per-pattern latency report ==")
    for pattern in result.patterns()[:4]:
        breakdown = pattern.average_path()
        top = sorted(breakdown.percentages().items(), key=lambda kv: -kv[1])[:3]
        top_text = ", ".join(f"{label} {share:.0f}%" for label, share in top)
        print(
            f"  {pattern.count:4d} paths x {pattern.length:2d} activities, "
            f"avg {pattern.average_latency() * 1000:7.1f} ms  ({top_text})"
        )

    print("\n== step 4: sanity check against the simulator's ground truth ==")
    accuracy = result.accuracy(run.ground_truth)
    print(f"  path accuracy: {accuracy.accuracy * 100:.2f} % "
          f"({accuracy.correct_paths}/{accuracy.total_requests} requests)")
    print(f"\nlog files kept in {workdir}")


if __name__ == "__main__":
    main()
