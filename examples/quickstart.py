#!/usr/bin/env python3
"""Quickstart: trace a simulated three-tier service end to end.

This example follows the PreciseTracer workflow of the paper:

1. run a RUBiS-like three-tier deployment under an emulated client load
   with the TCP_TRACE probes installed on every service node;
2. feed the gathered per-node activity logs to PreciseTracer, which
   correlates them into one Component Activity Graph (CAG) per request;
3. classify the CAGs into causal-path patterns, compute the average
   causal path of the dominant pattern and print its latency percentages;
4. check the reconstruction against the simulator's ground truth
   (Section 5.2's accuracy metric).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import RubisConfig, WorkloadStages, run_rubis


def main() -> None:
    config = RubisConfig(
        clients=150,
        workload="browse_only",
        stages=WorkloadStages(up_ramp=1.5, runtime=8.0, down_ramp=0.5),
        clock_skew=0.005,       # 5 ms of clock skew across the service nodes
        seed=11,
    )

    print("== running the simulated three-tier deployment ==")
    run = run_rubis(config)
    print(f"  emulated clients        : {config.clients}")
    print(f"  requests completed      : {run.completed_requests}")
    print(f"  throughput              : {run.throughput:.1f} req/s")
    print(f"  mean response time      : {run.mean_response_time * 1000:.1f} ms")
    print(f"  kernel activities logged: {run.total_activities}")
    for hostname, records in sorted(run.records_by_node.items()):
        print(f"    {hostname:5s}: {len(records)} TCP_TRACE records")

    print("\n== correlating activities into causal paths ==")
    trace = run.trace(window=0.010)  # 10 ms sliding time window
    print(f"  causal paths (CAGs)     : {trace.request_count}")
    print(f"  incomplete paths        : {len(trace.incomplete_cags)}")
    print(f"  correlation time        : {trace.correlation_time:.3f} s")
    print(f"  estimated peak memory   : {trace.peak_memory_bytes / 1e6:.2f} MB")

    print("\n== causal path patterns (most frequent first) ==")
    for pattern in trace.patterns()[:5]:
        print(f"  {pattern.describe()}")

    print("\n== latency percentages of the dominant pattern ==")
    profile = trace.profile("quickstart")
    for label, share in sorted(profile.percentages.items(), key=lambda kv: -kv[1]):
        print(f"  {label:16s} {share:6.1f} %")
    print(f"  (average end-to-end latency: {profile.average_latency * 1000:.1f} ms)")

    print("\n== accuracy against ground truth (Section 5.2) ==")
    report = trace.accuracy(run.ground_truth)
    print(f"  logged requests : {report.total_requests}")
    print(f"  correct paths   : {report.correct_paths}")
    print(f"  false positives : {report.false_positives}")
    print(f"  false negatives : {report.false_negatives}")
    print(f"  path accuracy   : {report.accuracy * 100:.2f} %")


if __name__ == "__main__":
    main()
