#!/usr/bin/env python3
"""Quickstart: trace a simulated three-tier service end to end.

This example follows the PreciseTracer workflow of the paper, expressed
as one :class:`repro.Pipeline` -- the facade every entry point of the
repo (CLI, experiments, examples) routes through:

1. **source**: run a RUBiS-like three-tier deployment under an emulated
   client load with the TCP_TRACE probes installed on every service node
   (a ``RubisConfig`` passed to the pipeline is simulated on demand);
2. **backend**: correlate the gathered activity logs into one Component
   Activity Graph (CAG) per request -- here the offline batch driver;
   swapping in ``BackendSpec.streaming(...)`` or ``.sharded(...)``
   changes nothing downstream;
3. **stages**: classify the CAGs into causal-path patterns, profile the
   dominant pattern's latency percentages, and check the reconstruction
   against the simulator's ground truth (Section 5.2's accuracy metric).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AccuracyStage,
    BackendSpec,
    Pipeline,
    ProfileStage,
    RankedLatencyStage,
    RubisConfig,
    WorkloadStages,
)


def main() -> None:
    config = RubisConfig(
        clients=150,
        workload="browse_only",
        stages=WorkloadStages(up_ramp=1.5, runtime=8.0, down_ramp=0.5),
        clock_skew=0.005,       # 5 ms of clock skew across the service nodes
        seed=11,
    )

    pipeline = Pipeline(
        source=config,
        backend=BackendSpec.batch(window=0.010),  # 10 ms sliding time window
        stages=[
            RankedLatencyStage(top=5),
            ProfileStage("quickstart"),
            AccuracyStage(),
        ],
    )

    print("== running the simulated three-tier deployment ==")
    session = pipeline.run()
    run = session.run
    print(f"  emulated clients        : {config.clients}")
    print(f"  requests completed      : {run.completed_requests}")
    print(f"  throughput              : {run.throughput:.1f} req/s")
    print(f"  mean response time      : {run.mean_response_time * 1000:.1f} ms")
    print(f"  kernel activities logged: {run.total_activities}")
    for hostname, records in sorted(run.records_by_node.items()):
        print(f"    {hostname:5s}: {len(records)} TCP_TRACE records")

    print("\n== correlating activities into causal paths ==")
    trace = session.trace
    print(f"  backend                 : {session.backend.describe()}")
    print(f"  causal paths (CAGs)     : {trace.request_count}")
    print(f"  incomplete paths        : {len(trace.incomplete_cags)}")
    print(f"  correlation time        : {trace.correlation_time:.3f} s")
    print(f"  estimated peak memory   : {trace.peak_memory_bytes / 1e6:.2f} MB")

    print("\n== ranked causal-path patterns (most frequent first) ==")
    for row in session.analyses["ranked_latency"]:
        hops = "->".join(component.split("/")[1] for component in row["components"])
        print(
            f"  #{row['rank']}: {row['paths']:4d} paths x "
            f"{row['activities_per_path']:2d} activities, "
            f"avg {row['average_latency_s'] * 1000:7.1f} ms  ({hops})"
        )

    print("\n== latency percentages of the dominant pattern ==")
    profile = session.analyses["profile"]
    for label, share in sorted(profile.percentages.items(), key=lambda kv: -kv[1]):
        print(f"  {label:16s} {share:6.1f} %")
    print(f"  (average end-to-end latency: {profile.average_latency * 1000:.1f} ms)")

    print("\n== accuracy against ground truth (Section 5.2) ==")
    report = session.analyses["accuracy"]
    print(f"  logged requests : {report.total_requests}")
    print(f"  correct paths   : {report.correct_paths}")
    print(f"  false positives : {report.false_positives}")
    print(f"  false negatives : {report.false_negatives}")
    print(f"  path accuracy   : {report.accuracy * 100:.2f} %")


if __name__ == "__main__":
    main()
