"""Command-line interface of the reproduction.

Examples::

    # regenerate one figure
    precisetracer figure fig15

    # regenerate every table/figure and write a combined report
    precisetracer report --output experiments_report.txt

    # run one simulated experiment and print trace statistics
    precisetracer trace --clients 300 --window 0.01

    # list the available figures
    precisetracer list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (
    ALL_FIGURES,
    SCALES,
    default_scale,
    figure17_diagnosis,
    render_table,
    write_report,
)
from .services.faults import FaultConfig
from .services.noise import NoiseConfig
from .services.rubis.client import WorkloadStages
from .services.rubis.deployment import RubisConfig, run_rubis


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="precisetracer",
        description="PreciseTracer reproduction (DSN 2009) experiment driver",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="experiment scale (default: REPRO_SCALE env var or 'small')",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available figures")

    figure_parser = subparsers.add_parser("figure", help="regenerate one figure")
    figure_parser.add_argument("figure_id", choices=sorted(ALL_FIGURES))

    report_parser = subparsers.add_parser("report", help="regenerate every figure")
    report_parser.add_argument("--output", default=None, help="write the report to this file")

    diag_parser = subparsers.add_parser(
        "diagnose", help="run the Fig. 17 fault scenarios and print the suspects"
    )
    diag_parser.add_argument("--threshold", type=float, default=5.0)

    trace_parser = subparsers.add_parser("trace", help="run one experiment and trace it")
    trace_parser.add_argument("--clients", type=int, default=200)
    trace_parser.add_argument("--workload", choices=["browse_only", "default"], default="browse_only")
    trace_parser.add_argument("--max-threads", type=int, default=40)
    trace_parser.add_argument("--window", type=float, default=0.010)
    trace_parser.add_argument("--clock-skew", type=float, default=0.001)
    trace_parser.add_argument("--runtime", type=float, default=8.0)
    trace_parser.add_argument("--noise", action="store_true", help="enable noise traffic")
    trace_parser.add_argument(
        "--fault",
        choices=["none", "ejb_delay", "database_lock", "ejb_network"],
        default="none",
    )
    trace_parser.add_argument("--seed", type=int, default=17)
    return parser


def _fault_from_name(name: str) -> FaultConfig:
    return {
        "none": FaultConfig.none(),
        "ejb_delay": FaultConfig.ejb_delay_case(),
        "database_lock": FaultConfig.database_lock_case(),
        "ejb_network": FaultConfig.ejb_network_case(),
    }[name]


def _command_trace(args: argparse.Namespace) -> int:
    config = RubisConfig(
        clients=args.clients,
        workload=args.workload,
        max_threads=args.max_threads,
        clock_skew=args.clock_skew,
        stages=WorkloadStages(up_ramp=1.5, runtime=args.runtime, down_ramp=0.5),
        noise=NoiseConfig.paper_noise() if args.noise else NoiseConfig.quiet(),
        faults=_fault_from_name(args.fault),
        seed=args.seed,
    )
    run = run_rubis(config)
    trace = run.trace(window=args.window)
    accuracy = trace.accuracy(run.ground_truth)
    print(f"simulated duration      : {run.simulated_duration:.1f} s")
    print(f"requests completed      : {run.completed_requests}")
    print(f"throughput              : {run.throughput:.1f} req/s")
    print(f"mean response time      : {run.mean_response_time * 1000:.1f} ms")
    print(f"activities logged       : {run.total_activities}")
    print(f"causal paths (CAGs)     : {trace.request_count}")
    print(f"correlation time        : {trace.correlation_time:.3f} s")
    print(f"path accuracy           : {accuracy.accuracy * 100:.2f} %")
    profile = trace.profile("trace")
    print("latency percentages of the dominant pattern:")
    for label, value in sorted(profile.percentages.items()):
        print(f"  {label:16s} {value:6.1f} %")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    scale = SCALES[args.scale] if args.scale else default_scale()

    if args.command == "list":
        for figure_id in sorted(ALL_FIGURES):
            print(figure_id)
        return 0
    if args.command == "figure":
        result = ALL_FIGURES[args.figure_id](scale)
        print(render_table(result))
        return 0
    if args.command == "report":
        results = [generator(scale) for generator in ALL_FIGURES.values()]
        if args.output:
            write_report(results, args.output)
            print(f"report written to {args.output}")
        else:
            for result in results:
                print(render_table(result))
                print()
        return 0
    if args.command == "diagnose":
        suspects = figure17_diagnosis(scale, threshold=args.threshold)
        for scenario, components in suspects.items():
            listed = ", ".join(components) if components else "(none above threshold)"
            print(f"{scenario:16s} -> {listed}")
        return 0
    if args.command == "trace":
        return _command_trace(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
