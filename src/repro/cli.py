"""Command-line interface of the reproduction.

Examples::

    # regenerate one figure
    precisetracer figure fig15

    # regenerate every table/figure and write a combined report
    precisetracer report --output experiments_report.txt

    # run one simulated experiment and print trace statistics
    precisetracer trace --clients 300 --window 0.01

    # run a scenario from the topology library (simulate --list shows all)
    precisetracer simulate --scenario fanout_aggregator

    # the same, as machine-readable JSON (trace-summary document)
    precisetracer simulate --scenario fanout_aggregator --json

    # correlate online: simulate, then replay the logs incrementally
    precisetracer stream --clients 150 --horizon 5

    # overhead control: trace a deterministic 25% of the requests
    precisetracer stream --clients 150 --sample-rate 0.25

    # or cap tracing at 40 requests per second of trace time
    precisetracer trace --clients 300 --sample-budget 40

    # correlate an existing TCP_TRACE log file (read once, incrementally)
    precisetracer stream --input /var/log/tcp_trace.log --frontend 10.0.0.1:80

    # fuzz the correlation pipeline: 25 generated scenarios through the
    # full invariant stack, shrinking any failing seed to a minimal repro
    precisetracer fuzz --seeds 25

    # the nightly variant: more seeds, wall-clock bounded, JSON artifact
    precisetracer fuzz --seeds 50 --budget 600 --output fuzz_report.json

    # append runs to a persistent trace store, then query the history
    precisetracer simulate --scenario rubis --store traces.sqlite --run-id day1
    precisetracer query latency --store traces.sqlite --run day1 --bucket 1
    precisetracer query diff day1 day2 --store traces.sqlite --tolerance 0.25

    # list the available figures
    precisetracer list

Commands
--------
``list`` / ``figure`` / ``report``
    Regenerate the paper's evaluation tables (Section 5).
``trace``
    Run one simulated experiment and batch-trace it (Fig. 2 pipeline).
``simulate``
    Run one scenario from the topology library (``--scenario``; see
    ``simulate --list``) and batch-trace it: the RUBiS deployment, a
    five-tier chain, a fan-out aggregator, cache-aside, or a replicated
    tier behind a round-robin LB -- each with its own workload shape.
``stream``
    The online pipeline (``repro.stream``): chunked ingestion ->
    incremental correlation with watermark eviction -> CAGs emitted as
    requests finish.  ``--horizon`` bounds engine state (seconds of
    local time; state idle for longer is evicted -- pick a value above
    the service's worst-case response time, see
    ``IncrementalEngine.horizon``); ``--shards`` switches to the
    sharded parallel driver instead (batch semantics per shard, so the
    incremental-only knobs ``--horizon``/``--skew-bound``/``--chunk-size``
    do not apply there).  ``--input`` reads a log file through the
    chunked tail reader in one pass; to *follow* a file that is still
    being written, loop :meth:`repro.FileTailSource.poll` from Python.
``diagnose``
    Rerun the Fig. 17 fault scenarios and print the implicated tiers.
``fuzz``
    Differential fuzzing (``repro.fuzz``): seeded random scenarios from
    :mod:`repro.topology.generator` driven through the full invariant
    stack -- batch == streaming == sharded digests, sampled-subset
    identity, ground-truth accuracy, engine-state conservation.  A
    failing seed is shrunk to a minimal ``(seed, limits)`` repro and
    printed (and written to ``--output`` as JSON when given); the exit
    status is 1 when any seed fails, so CI can gate on it.
``query``
    Query a persistent trace store (``repro.store``): ``runs`` lists the
    stored runs, ``latency`` reports percentiles (optionally bucketed
    over time and filtered by pattern/scenario), ``patterns`` shows the
    pattern mix of a run (and, with ``--against``, the mix drift between
    two runs), ``diff`` is the regression gate -- two runs' ranked
    reports compared pattern-by-pattern with a ``--tolerance`` on p50/p95
    movement, exit 1 on regression -- and ``export`` writes the diffable
    run-summary JSON (the golden-file format CI diffs against).  Stores
    are written by ``trace``/``simulate``/``stream`` via ``--store``.
``profile``
    Regenerate a performance figure (Fig. 9 correlation-time sweep by
    default, or the Fig. 11s streaming-memory sweep), write its
    ``BENCH_*.json`` trajectory file and -- when a baseline document is
    available -- print the per-point speedup against it.  ``--cprofile``
    additionally prints the hottest functions of one correlation run.

Every data-producing command (``trace`` / ``simulate`` / ``stream``) is
one :class:`repro.pipeline.Pipeline` run -- a source (simulated run or
log file), a backend (:class:`repro.pipeline.BackendSpec`: batch,
streaming or sharded) and analysis stages -- differing only in how the
flags select the source and the backend.  ``--json`` prints the
pipeline's trace-summary document instead of the human report.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .experiments import (
    ALL_FIGURES,
    SCALES,
    default_scale,
    figure17_diagnosis,
    render_table,
    write_report,
)
from .pipeline import (
    AccuracyStage,
    BackendSpec,
    LogSource,
    PatternStage,
    Pipeline,
    ProfileStage,
    RunSource,
    SamplingAccuracyStage,
    SamplingSpec,
    StoreSink,
    TraceSession,
)
from .core.export import trace_summary
from .stream.scheduler import SCHEDULE_KINDS
from .stream.sharded import EXECUTOR_KINDS
from .services.faults import FaultConfig
from .services.noise import NoiseConfig
from .services.rubis.client import WorkloadStages
from .services.rubis.deployment import RubisConfig
from .topology.library import ScenarioConfig, get_scenario, scenario_names

#: Fault scenario names accepted by ``--fault``.
FAULT_CHOICES = ["none", "ejb_delay", "database_lock", "ejb_network"]


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    """The trace-store flags shared by trace/simulate/stream."""
    parser.add_argument(
        "--store",
        default=None,
        metavar="FILE",
        help=(
            "append this run to a persistent SQLite trace store "
            "(created if missing; query it with `precisetracer query`)"
        ),
    )
    parser.add_argument(
        "--run-id",
        default=None,
        metavar="ID",
        help="run id to store the run under (requires --store; default: generated)",
    )


def _add_sampling_flags(parser: argparse.ArgumentParser) -> None:
    """The request-sampling flags shared by trace/simulate/stream."""
    parser.add_argument(
        "--sample-rate",
        type=float,
        default=None,
        metavar="RATE",
        help=(
            "trace a deterministic fraction of the requests (0 < RATE <= 1), "
            "decided by hashing each request's causal root"
        ),
    )
    parser.add_argument(
        "--sample-budget",
        type=int,
        default=None,
        metavar="N",
        help="trace at most N requests per second of trace time",
    )
    parser.add_argument(
        "--sample-adaptive",
        type=int,
        default=None,
        metavar="TARGET",
        help=(
            "steer the admission rate toward TARGET open requests in the "
            "engine (feedback control; incremental backend only)"
        ),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="precisetracer",
        description="PreciseTracer reproduction (DSN 2009) experiment driver",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="experiment scale (default: REPRO_SCALE env var or 'small')",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available figures")

    figure_parser = subparsers.add_parser("figure", help="regenerate one figure")
    figure_parser.add_argument("figure_id", choices=sorted(ALL_FIGURES))

    report_parser = subparsers.add_parser("report", help="regenerate every figure")
    report_parser.add_argument("--output", default=None, help="write the report to this file")

    diag_parser = subparsers.add_parser(
        "diagnose", help="run the Fig. 17 fault scenarios and print the suspects"
    )
    diag_parser.add_argument("--threshold", type=float, default=5.0)

    trace_parser = subparsers.add_parser("trace", help="run one experiment and trace it")
    trace_parser.add_argument("--clients", type=int, default=200)
    trace_parser.add_argument(
        "--workload", choices=["browse_only", "default"], default="browse_only"
    )
    trace_parser.add_argument("--max-threads", type=int, default=40)
    trace_parser.add_argument("--window", type=float, default=0.010)
    trace_parser.add_argument("--clock-skew", type=float, default=0.001)
    trace_parser.add_argument("--runtime", type=float, default=8.0)
    trace_parser.add_argument("--noise", action="store_true", help="enable noise traffic")
    trace_parser.add_argument("--fault", choices=FAULT_CHOICES, default="none")
    trace_parser.add_argument("--seed", type=int, default=17)
    _add_sampling_flags(trace_parser)
    _add_store_flags(trace_parser)
    trace_parser.add_argument(
        "--json", action="store_true", help="print the trace summary as JSON"
    )

    simulate_parser = subparsers.add_parser(
        "simulate",
        help="run one scenario from the topology library and trace it",
    )
    simulate_parser.add_argument(
        "--scenario",
        default="rubis",
        metavar="NAME",
        help="scenario name (see --list; default: rubis)",
    )
    simulate_parser.add_argument(
        "--list", action="store_true", help="list available scenarios and exit"
    )
    simulate_parser.add_argument(
        "--clients", type=int, default=None, help="closed-loop sessions (scenario default)"
    )
    simulate_parser.add_argument(
        "--arrival-rate",
        type=float,
        default=None,
        help="open/bursty arrivals per second (scenario default)",
    )
    simulate_parser.add_argument(
        "--workload-kind",
        choices=["closed", "open", "bursty"],
        default=None,
        help="override the scenario's workload shape",
    )
    simulate_parser.add_argument("--window", type=float, default=0.010)
    simulate_parser.add_argument("--runtime", type=float, default=8.0)
    simulate_parser.add_argument("--noise", action="store_true", help="enable noise traffic")
    simulate_parser.add_argument("--fault", choices=FAULT_CHOICES, default="none")
    simulate_parser.add_argument("--seed", type=int, default=17)
    _add_sampling_flags(simulate_parser)
    _add_store_flags(simulate_parser)
    simulate_parser.add_argument(
        "--json", action="store_true", help="print the trace summary as JSON"
    )

    stream_parser = subparsers.add_parser(
        "stream",
        help="correlate incrementally (online mode), from a simulation or a log file",
    )
    stream_parser.add_argument(
        "--scenario",
        default="rubis",
        metavar="NAME",
        help="scenario to simulate when no --input is given (default: rubis)",
    )
    stream_parser.add_argument(
        "--input",
        default=None,
        metavar="FILE",
        help="TCP_TRACE log file to ingest (default: simulate a run first)",
    )
    stream_parser.add_argument(
        "--frontend",
        default=None,
        metavar="IP:PORT",
        help="frontend endpoint for BEGIN/END classification (required with --input)",
    )
    stream_parser.add_argument("--window", type=float, default=0.010)
    stream_parser.add_argument(
        "--horizon",
        type=float,
        default=5.0,
        help="eviction horizon in seconds of trace time; 0 disables eviction",
    )
    stream_parser.add_argument(
        "--skew-bound",
        type=float,
        default=0.005,
        help="upper bound on node clock skew (delays emission, never changes output)",
    )
    stream_parser.add_argument("--chunk-size", type=int, default=256)
    stream_parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help=(
            "use the sharded parallel driver with up to N shards "
            "(0 = incremental; --horizon/--skew-bound/--chunk-size do not apply)"
        ),
    )
    stream_parser.add_argument(
        "--schedule",
        choices=list(SCHEDULE_KINDS),
        default="static",
        help=(
            "sharded component-to-shard policy: static round-robin, "
            "cost-balanced LPT packing, or LPT plus run-time work stealing "
            "(requires --shards)"
        ),
    )
    stream_parser.add_argument(
        "--executor",
        choices=list(EXECUTOR_KINDS),
        default="thread",
        help="sharded worker pool kind (requires --shards; default: thread)",
    )
    stream_parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help=(
            "periodically snapshot the incremental engine to FILE "
            "(requires --checkpoint-every; incremental backend only)"
        ),
    )
    stream_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint cadence in ingested activities (requires --checkpoint)",
    )
    stream_parser.add_argument(
        "--resume",
        default=None,
        metavar="FILE",
        help=(
            "resume a previous run from this checkpoint file instead of "
            "starting at the head of the trace (incremental backend only)"
        ),
    )
    stream_parser.add_argument(
        "--clients",
        type=int,
        default=None,
        help="closed-loop sessions (default: 100 for rubis, scenario default otherwise)",
    )
    stream_parser.add_argument("--runtime", type=float, default=6.0)
    stream_parser.add_argument("--noise", action="store_true", help="enable noise traffic")
    stream_parser.add_argument("--fault", choices=FAULT_CHOICES, default="none")
    stream_parser.add_argument("--seed", type=int, default=17)
    _add_sampling_flags(stream_parser)
    _add_store_flags(stream_parser)
    stream_parser.add_argument(
        "--json", action="store_true", help="print the trace summary as JSON"
    )

    profile_parser = subparsers.add_parser(
        "profile",
        help="run a perf figure, write BENCH_*.json and compare to a baseline",
    )
    profile_parser.add_argument(
        "--figure",
        choices=["fig9", "fig11s", "sampling", "interning", "scaling"],
        default="fig9",
        help="which performance figure to regenerate (default: fig9)",
    )
    profile_parser.add_argument(
        "--output-dir",
        default=None,
        metavar="DIR",
        help="where to write BENCH_*.json (default: $REPRO_BENCH_DIR or ./bench_results)",
    )
    profile_parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "BENCH_*.json to compare against "
            "(default: benchmarks/baselines/BENCH_<figure>_baseline.json when present)"
        ),
    )
    profile_parser.add_argument(
        "--cprofile",
        action="store_true",
        help="also cProfile one batch correlation run and print the hot spots",
    )

    query_parser = subparsers.add_parser(
        "query",
        help="query a persistent trace store written via --store",
    )
    query_sub = query_parser.add_subparsers(dest="query_command", required=True)

    def _query_store_flag(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--store",
            default=None,
            metavar="FILE",
            help="trace store database file (written by trace/simulate/stream --store)",
        )

    runs_parser = query_sub.add_parser("runs", help="list the runs in a store")
    _query_store_flag(runs_parser)
    runs_parser.add_argument(
        "--json", action="store_true", help="print the run rows as JSON"
    )

    latency_parser = query_sub.add_parser(
        "latency",
        help="latency percentiles, optionally bucketed over time",
    )
    _query_store_flag(latency_parser)
    latency_parser.add_argument(
        "--run", default=None, metavar="ID", help="restrict to one run (default: all)"
    )
    latency_parser.add_argument(
        "--pattern",
        default=None,
        metavar="P",
        help="pattern label or signature-hash prefix (>= 6 chars)",
    )
    latency_parser.add_argument(
        "--scenario", default=None, metavar="NAME", help="restrict to one scenario"
    )
    latency_parser.add_argument(
        "--since", type=float, default=None, metavar="SECS",
        help="only requests beginning at or after this trace time",
    )
    latency_parser.add_argument(
        "--until", type=float, default=None, metavar="SECS",
        help="only requests beginning before this trace time",
    )
    latency_parser.add_argument(
        "--bucket", type=float, default=None, metavar="SECS",
        help="group into time buckets of this width (default: one row)",
    )
    latency_parser.add_argument(
        "--json", action="store_true", help="print the rows as JSON"
    )

    patterns_parser = query_sub.add_parser(
        "patterns",
        help="pattern mix of a run; with --against, the mix drift between two runs",
    )
    _query_store_flag(patterns_parser)
    patterns_parser.add_argument("--run", required=True, metavar="ID")
    patterns_parser.add_argument(
        "--against",
        default=None,
        metavar="ID",
        help="second run: report mix drift --run -> --against instead",
    )
    patterns_parser.add_argument(
        "--json", action="store_true", help="print the rows as JSON"
    )

    diff_parser = query_sub.add_parser(
        "diff",
        help=(
            "regression diff of two runs' ranked reports; each side is a "
            "run id in --store or an exported run-summary JSON file; "
            "exit 1 on regression"
        ),
    )
    _query_store_flag(diff_parser)
    diff_parser.add_argument(
        "runs",
        nargs="*",
        metavar="RUN",
        help="baseline and candidate (run id or run-summary JSON file)",
    )
    diff_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="allowed relative p50/p95 increase before a pattern regresses (default: 0.25)",
    )
    diff_parser.add_argument(
        "--json", action="store_true", help="print the diff document as JSON"
    )

    export_parser = query_sub.add_parser(
        "export",
        help="write one run's diffable summary JSON (the golden-file format)",
    )
    _query_store_flag(export_parser)
    export_parser.add_argument("--run", required=True, metavar="ID")
    export_parser.add_argument(
        "--output", default=None, metavar="FILE", help="write here instead of stdout"
    )

    fuzz_parser = subparsers.add_parser(
        "fuzz",
        help="fuzz the correlation pipeline with generated scenarios",
    )
    fuzz_parser.add_argument(
        "--seeds", type=int, default=25, help="consecutive seeds to run (default: 25)"
    )
    fuzz_parser.add_argument(
        "--start-seed", type=int, default=0, help="first seed (default: 0)"
    )
    fuzz_parser.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECS",
        help="wall-clock budget; the sweep stops cleanly before exceeding it",
    )
    fuzz_parser.add_argument("--window", type=float, default=0.010)
    fuzz_parser.add_argument(
        "--sample-rate",
        type=float,
        default=0.5,
        metavar="RATE",
        help="uniform sampling rate exercised by the sampled invariants",
    )
    fuzz_parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failing seeds as-is instead of minimizing them",
    )
    fuzz_parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the machine-readable JSON fuzz report here",
    )
    return parser


def _fault_from_name(name: str) -> FaultConfig:
    return {
        "none": FaultConfig.none(),
        "ejb_delay": FaultConfig.ejb_delay_case(),
        "database_lock": FaultConfig.database_lock_case(),
        "ejb_network": FaultConfig.ejb_network_case(),
    }[name]


def _fail(message: str) -> int:
    """One-line error on stderr, exit status 2 (no traceback)."""
    print(f"precisetracer: error: {message}", file=sys.stderr)
    return 2


def _sampling_from_args(args: argparse.Namespace) -> Optional[SamplingSpec]:
    """Resolve the shared sampling flags into a spec (``None`` = trace all).

    Raises :class:`ValueError` with a user-facing message on invalid
    combinations; the commands convert that into the exit-2 path.
    """
    rate = args.sample_rate
    budget = args.sample_budget
    adaptive = getattr(args, "sample_adaptive", None)
    given = [
        flag
        for flag, value in (
            ("--sample-rate", rate),
            ("--sample-budget", budget),
            ("--sample-adaptive", adaptive),
        )
        if value is not None
    ]
    if not given:
        return None
    if len(given) > 1:
        raise ValueError(f"{' and '.join(given)} are mutually exclusive")
    if rate is not None:
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"--sample-rate must be in (0, 1], got {rate:g}")
        return SamplingSpec.uniform(rate)
    if budget is not None:
        if budget <= 0:
            raise ValueError(f"--sample-budget must be positive, got {budget}")
        return SamplingSpec.budget(budget)
    if adaptive <= 0:
        raise ValueError(f"--sample-adaptive must be positive, got {adaptive}")
    return SamplingSpec.adaptive(target_open_cags=adaptive)


# ---------------------------------------------------------------------------
# Shared pipeline plumbing for trace / simulate / stream
# ---------------------------------------------------------------------------

def _store_sink_from_args(
    args: argparse.Namespace, scenario: Optional[str]
) -> Optional[StoreSink]:
    """Build the :class:`StoreSink` behind ``--store``/``--run-id``.

    Raises :class:`ValueError` with a user-facing message on invalid
    combinations; the commands convert that into the exit-2 path.
    """
    if args.run_id is not None and args.store is None:
        raise ValueError("--run-id requires --store")
    if args.store is None:
        return None
    return StoreSink(args.store, run_id=args.run_id, scenario=scenario)


def _shared_run_fields(args: argparse.Namespace, up_ramp: float = 1.5) -> dict:
    """The run-config fields ``trace``/``simulate``/``stream`` all share.

    One helper instead of three copy-pasted blocks: stage durations from
    ``--runtime``, noise from ``--noise``, faults from ``--fault``, seed
    from ``--seed``.  Works for :class:`RubisConfig` and
    :class:`ScenarioConfig` alike (both embed the same field names).
    """
    return {
        "stages": WorkloadStages(up_ramp=up_ramp, runtime=args.runtime, down_ramp=0.5),
        "noise": NoiseConfig.paper_noise() if args.noise else NoiseConfig.quiet(),
        "faults": _fault_from_name(args.fault),
        "seed": args.seed,
    }


def _session_json(session: TraceSession, command: str, **extra) -> str:
    """The machine-readable document behind ``--json``: the pipeline's
    ``trace_summary`` plus provenance and (when available) accuracy."""
    payload = trace_summary(session.trace)
    payload["command"] = command
    payload["backend"] = session.backend.describe()
    payload["source"] = session.source.describe()
    sampling = session.backend.sampling
    if sampling is not None:
        stats = session.trace.correlation.engine_stats
        payload["sampling"] = sampling.describe()
        payload["sampled_out_requests"] = stats.sampled_out_roots
        if "sampling_accuracy" in session.analyses:
            payload["sampling_accuracy"] = session.analyses[
                "sampling_accuracy"
            ].summary()
    elif session.source.ground_truth is not None:
        # Ground-truth path accuracy only makes sense for full traces: a
        # sampled run is *meant* to miss requests, so scoring it against
        # the full oracle would just re-measure the sampling rate.
        report = session.accuracy()
        payload["accuracy"] = report.accuracy
        payload["false_positives"] = report.false_positives
        payload["false_negatives"] = report.false_negatives
    payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)


def _parse_frontend(text: str):
    from .core.log_format import FrontendSpec

    ip, sep, port_text = text.rpartition(":")
    if not sep or not ip:
        return None
    try:
        return FrontendSpec(ip=ip, port=int(port_text))
    except ValueError:
        return None


def _print_sampling_report(session: TraceSession) -> None:
    """Human-readable sampling lines shared by trace/simulate."""
    stats = session.trace.correlation.engine_stats
    print(f"requests sampled out    : {stats.sampled_out_roots}")
    fidelity = session.analyses.get(SamplingAccuracyStage.name)
    if fidelity is not None:
        print(f"sample fraction         : {fidelity.sample_fraction * 100:.1f} %")
        print(f"pattern coverage        : {fidelity.pattern_coverage * 100:.1f} %")
        if fidelity.dominant_profile_distance is not None:
            print(
                "dominant profile drift  : "
                f"{fidelity.dominant_profile_distance:.2f} pp"
            )


def _command_trace(args: argparse.Namespace) -> int:
    try:
        sampling = _sampling_from_args(args)
        store_sink = _store_sink_from_args(args, scenario="rubis")
    except ValueError as exc:
        return _fail(str(exc))
    config = RubisConfig(
        clients=args.clients,
        workload=args.workload,
        max_threads=args.max_threads,
        clock_skew=args.clock_skew,
        **_shared_run_fields(args),
    )
    # A sampled trace is *supposed* to miss requests, so ground-truth
    # path accuracy is replaced by sampled-vs-full report fidelity.
    analysis = SamplingAccuracyStage() if sampling is not None else AccuracyStage()
    pipeline = Pipeline(
        source=config,
        backend=BackendSpec.batch(window=args.window, sampling=sampling),
        stages=[analysis, ProfileStage("trace")],
        sinks=[store_sink] if store_sink is not None else (),
    )
    try:
        session = pipeline.run()
    except ValueError as exc:
        # Store-side refusals (finalized duplicate run id, bad store file).
        return _fail(str(exc))
    if args.json:
        extra = {}
        if store_sink is not None:
            extra = {"store": args.store, "store_run_id": store_sink.run_id}
        print(_session_json(session, "trace", **extra))
        return 0
    run = session.run
    trace = session.trace
    print(f"simulated duration      : {run.simulated_duration:.1f} s")
    print(f"requests completed      : {run.completed_requests}")
    print(f"throughput              : {run.throughput:.1f} req/s")
    print(f"mean response time      : {run.mean_response_time * 1000:.1f} ms")
    print(f"activities logged       : {run.total_activities}")
    print(f"causal paths (CAGs)     : {trace.request_count}")
    print(f"correlation time        : {trace.correlation_time:.3f} s")
    if sampling is not None:
        _print_sampling_report(session)
    else:
        accuracy = session.analyses["accuracy"]
        print(f"path accuracy           : {accuracy.accuracy * 100:.2f} %")
    profile = session.analyses["profile"]
    print("latency percentages of the dominant pattern:")
    for label, value in sorted(profile.percentages.items()):
        print(f"  {label:16s} {value:6.1f} %")
    if store_sink is not None:
        print(f"stored as run           : {store_sink.run_id} -> {args.store}")
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    """Run one scenario from the topology library and batch-trace it."""
    if args.list:
        if args.json:
            return _fail("--json cannot be combined with --list")
        for name in scenario_names():
            print(f"{name:20s} {get_scenario(name).description}")
        return 0
    if args.scenario not in scenario_names():
        return _fail(
            f"unknown scenario {args.scenario!r}; available scenarios: "
            f"{', '.join(scenario_names())}"
        )
    try:
        sampling = _sampling_from_args(args)
        store_sink = _store_sink_from_args(args, scenario=args.scenario)
    except ValueError as exc:
        return _fail(str(exc))
    scenario = get_scenario(args.scenario)
    config = ScenarioConfig(
        scenario=args.scenario,
        clients=args.clients,
        arrival_rate=args.arrival_rate,
        workload_kind=args.workload_kind,
        **_shared_run_fields(args),
    )
    analysis = SamplingAccuracyStage() if sampling is not None else AccuracyStage()
    pipeline = Pipeline(
        source=config,
        backend=BackendSpec.batch(window=args.window, sampling=sampling),
        stages=[analysis, ProfileStage(scenario.name), PatternStage()],
        sinks=[store_sink] if store_sink is not None else (),
    )
    try:
        session = pipeline.run()
    except ValueError as exc:
        # Store-side refusals (finalized duplicate run id, bad store file).
        return _fail(str(exc))
    if args.json:
        extra = {"scenario": scenario.name}
        if store_sink is not None:
            extra.update(store=args.store, store_run_id=store_sink.run_id)
        print(_session_json(session, "simulate", **extra))
        return 0
    run = session.run
    trace = session.trace
    tier_list = ", ".join(
        f"{tier.name}({tier.role}" + (f" x{tier.replicas})" if tier.replicas > 1 else ")")
        for tier in scenario.topology.front_to_back()
    )
    print(f"scenario                : {scenario.name} -- {scenario.description}")
    print(f"tiers                   : {tier_list}")
    print(f"workload                : {run.workload.kind}")
    print(f"simulated duration      : {run.simulated_duration:.1f} s")
    print(f"requests completed      : {run.completed_requests}")
    print(f"throughput              : {run.throughput:.1f} req/s")
    print(f"mean response time      : {run.mean_response_time * 1000:.1f} ms")
    print(f"activities logged       : {run.total_activities}")
    print(f"causal paths (CAGs)     : {trace.request_count}")
    print(f"path patterns           : {len(session.analyses['patterns'])}")
    print(f"correlation time        : {trace.correlation_time:.3f} s")
    if sampling is not None:
        _print_sampling_report(session)
    else:
        accuracy = session.analyses["accuracy"]
        print(f"path accuracy           : {accuracy.accuracy * 100:.2f} %")
    profile = session.analyses["profile"]
    print("latency percentages of the dominant pattern:")
    for label, value in sorted(profile.percentages.items()):
        print(f"  {label:24s} {value:6.1f} %")
    if store_sink is not None:
        print(f"stored as run           : {store_sink.run_id} -> {args.store}")
    return 0


def _command_stream(args: argparse.Namespace) -> int:
    """Drive the online pipeline: source -> streaming/sharded backend."""
    import os
    import time

    if args.chunk_size <= 0:
        return _fail("--chunk-size must be positive")
    if args.window <= 0:
        return _fail("--window must be positive")
    if args.skew_bound < 0:
        return _fail("--skew-bound must be non-negative")
    if args.shards < 0:
        return _fail("--shards must be non-negative")
    try:
        sampling = _sampling_from_args(args)
        store_sink = _store_sink_from_args(
            args, scenario=None if args.input else args.scenario
        )
    except ValueError as exc:
        return _fail(str(exc))

    # -- source: a log file, or a freshly simulated run ----------------------
    if args.input:
        if not args.frontend:
            return _fail("--input requires --frontend IP:PORT")
        frontend = _parse_frontend(args.frontend)
        if frontend is None:
            return _fail(f"bad --frontend {args.frontend!r}, expected IP:PORT")
        if args.noise or args.fault != "none":
            return _fail(
                "--noise/--fault shape a simulated run and cannot be "
                "combined with --input"
            )
        if not os.path.exists(args.input):
            return _fail(f"--input file not found: {args.input}")
        source = LogSource(args.input, frontend=frontend)
    else:
        if args.scenario not in scenario_names():
            return _fail(
                f"unknown scenario {args.scenario!r}; available scenarios: "
                f"{', '.join(scenario_names())}"
            )
        clients = args.clients
        if clients is None and args.scenario == "rubis":
            clients = 100
        config = ScenarioConfig(
            scenario=args.scenario,
            clients=clients,
            **_shared_run_fields(args, up_ramp=1.0),
        )
        source = RunSource(config=config)
        if not args.json:
            if args.scenario == "rubis":
                print(f"== simulating {clients} clients for {args.runtime:.0f} s ==")
            else:
                print(
                    f"== simulating scenario {args.scenario} "
                    f"for {args.runtime:.0f} s =="
                )
            run = source.run
            print(f"requests completed      : {run.completed_requests}")
            print(f"activities logged       : {run.total_activities}")

    # -- backend: incremental, or sharded parallel ---------------------------
    # BackendSpec validation raises ValueError on incompatible knob
    # combinations (adaptive sampling on the sharded driver, checkpoint
    # flags without --checkpoint-every, ...); surface those as the usual
    # one-line exit-2 error instead of a traceback.
    try:
        if args.shards > 0:
            if args.checkpoint or args.checkpoint_every or args.resume:
                raise ValueError(
                    "--checkpoint/--checkpoint-every/--resume apply to the "
                    "incremental driver and cannot be combined with --shards"
                )
            backend = BackendSpec.sharded(
                window=args.window,
                max_shards=args.shards,
                executor=args.executor,
                schedule=args.schedule,
                sampling=sampling,
            )
        else:
            backend = BackendSpec.streaming(
                window=args.window,
                horizon=args.horizon if args.horizon > 0 else None,
                skew_bound=args.skew_bound,
                chunk_size=args.chunk_size,
                sampling=sampling,
                checkpoint_path=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                resume_from=args.resume,
            )
    except ValueError as exc:
        return _fail(str(exc))

    # Classification (and the simulation, for run sources) happens inside
    # source.activities(); keep it outside the timer so "wall-clock
    # ingestion" measures the correlation drive alone, comparable to the
    # reported correlation time.
    activities = source.activities()
    wall_start = time.perf_counter()
    try:
        # The store sink ingests live, at the cadence CAGs finish -- on
        # the incremental driver that means chunk-boundary commits, so a
        # long run persists as it goes (and composes with --checkpoint:
        # ingest is idempotent, so re-emitted CAGs after --resume are
        # no-ops).
        trace = backend.trace(
            activities,
            on_cag=store_sink.on_cag if store_sink is not None else None,
        )
    except (ValueError, OSError) as exc:
        # Bad/missing/mismatched checkpoint files (and store refusals,
        # e.g. a finalized duplicate --run-id) surface here.
        return _fail(str(exc))
    wall = time.perf_counter() - wall_start
    trace.filtered_records = source.filtered_records
    session = TraceSession(source=source, backend=backend, trace=trace)
    if store_sink is not None:
        try:
            session.artifacts[store_sink.name] = store_sink.write(session)
        except ValueError as exc:
            return _fail(str(exc))
    result = trace.correlation

    if args.json:
        extra = {"wall_clock_s": wall}
        if result.shard_sizes is not None:
            extra["shards"] = len(result.shard_sizes)
        if store_sink is not None:
            extra.update(store=args.store, store_run_id=store_sink.run_id)
        print(_session_json(session, "stream", **extra))
        return 0

    stats = result.engine_stats
    evictions = (
        stats.evicted_mmap_entries
        + stats.evicted_cmap_entries
        + stats.evicted_open_cags
    )
    peak_pending = result.peak_state_entries + result.peak_buffered_activities
    if backend.kind == "sharded":
        print(f"\n== sharded correlation ({len(result.shard_sizes or [])} shards) ==")
    else:
        print("\n== incremental correlation ==")
        print(f"wall-clock ingestion    : {wall:.3f} s")
    print(f"activities ingested     : {result.total_activities}")
    print(f"finished paths (CAGs)   : {len(result.cags)}")
    print(f"incomplete paths        : {len(result.incomplete_cags)}")
    print(f"correlation time        : {result.correlation_time:.3f} s")
    rate = result.total_activities / max(result.correlation_time, 1e-9)
    print(f"correlation throughput  : {rate / 1e3:.1f} kact/s")
    print(f"peak live entries       : {peak_pending}")
    print(f"state evictions         : {evictions}")
    if sampling is not None:
        print(f"requests sampled out    : {stats.sampled_out_roots}")
    if session.source.malformed_lines:
        print(f"malformed lines         : {session.source.malformed_lines}")
    if sampling is None and session.source.ground_truth is not None:
        report = session.accuracy()
        print(f"path accuracy           : {report.accuracy * 100:.2f} %")
    if store_sink is not None:
        print(f"stored as run           : {store_sink.run_id} -> {args.store}")
    return 0


# ---------------------------------------------------------------------------
# `query`: the persistent trace store
# ---------------------------------------------------------------------------

def _open_store(args: argparse.Namespace):
    """Open the store named by ``--store`` read-only-ish, or raise ValueError."""
    from .store import TraceStore

    if not args.store:
        raise ValueError(
            "--store FILE is required (write one with "
            "`precisetracer trace/simulate/stream --store FILE`)"
        )
    return TraceStore.open(args.store)


def _format_stats(row: dict, indent: str = "") -> str:
    if not row.get("count"):
        return f"{indent}(no finished requests)"
    return (
        f"{indent}n={row['count']:<6d} "
        f"p50={row['p50_s'] * 1000:8.2f}ms  "
        f"p90={row['p90_s'] * 1000:8.2f}ms  "
        f"p95={row['p95_s'] * 1000:8.2f}ms  "
        f"p99={row['p99_s'] * 1000:8.2f}ms  "
        f"max={row['max_s'] * 1000:8.2f}ms"
    )


def _query_runs(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        rows = store.runs()
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    if not rows:
        print("(store is empty)")
        return 0
    for row in rows:
        state = "finalized" if row["finalized"] else "open"
        print(
            f"{row['run_id']:24s} {state:9s} requests={row['requests']:<6d} "
            f"scenario={row['scenario'] or '-':18s} "
            f"backend={row['backend'] or '-'}"
        )
    return 0


def _query_latency(args: argparse.Namespace) -> int:
    from .store import latency_over_windows

    if args.bucket is not None and args.bucket <= 0:
        return _fail("--bucket must be positive")
    with _open_store(args) as store:
        rows = latency_over_windows(
            store,
            run_id=args.run,
            pattern=args.pattern,
            scenario=args.scenario,
            since=args.since,
            until=args.until,
            bucket_s=args.bucket,
        )
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    for row in rows:
        prefix = f"t={row['begin_s']:8.2f}s  " if args.bucket is not None else ""
        print(f"{prefix}{_format_stats(row)}")
    return 0


def _query_patterns(args: argparse.Namespace) -> int:
    from .store import mix_drift, pattern_mix

    with _open_store(args) as store:
        if args.against is not None:
            rows = mix_drift(store, args.run, args.against)
        else:
            rows = pattern_mix(store, args.run)
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    if args.against is not None:
        for row in rows:
            print(
                f"{row['status']:9s} {row['pattern'][:12]}  "
                f"{row['base_count']:5d} -> {row['current_count']:5d}  "
                f"share {row['base_share'] * 100:5.1f}% -> "
                f"{row['current_share'] * 100:5.1f}% "
                f"({row['share_delta'] * 100:+5.1f} pp)  {row['label']}"
            )
        return 0
    for row in rows:
        print(
            f"{row['pattern'][:12]}  {row['count']:5d} paths "
            f"({row['share'] * 100:5.1f}%)  "
            f"{_format_stats(row)}  {row['label']}"
        )
    return 0


def _query_diff(args: argparse.Namespace) -> int:
    import os

    from .store import diff_summaries, load_run_summary, run_summary

    if len(args.runs) != 2:
        return _fail(
            "diff needs exactly two runs: a baseline and a candidate "
            "(run ids in --store, or exported run-summary JSON files)"
        )
    if args.tolerance <= 0:
        return _fail(f"--tolerance must be positive, got {args.tolerance:g}")

    def side(token: str):
        # A side naming an existing file (or anything .json) is an
        # exported summary; everything else is a run id in the store.
        if token.endswith(".json") or os.path.exists(token):
            return load_run_summary(token)
        store = _open_store(args)
        with store:
            return run_summary(store, token)

    try:
        base = side(args.runs[0])
        current = side(args.runs[1])
        diff = diff_summaries(base, current, tolerance=args.tolerance)
    except ValueError as exc:
        return _fail(str(exc))
    if args.json:
        print(json.dumps(diff.payload(), indent=2, sort_keys=True))
    else:
        print(diff.describe())
    return 0 if diff.ok else 1


def _query_export(args: argparse.Namespace) -> int:
    from .store import run_summary

    with _open_store(args) as store:
        document = run_summary(store, args.run)
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"run summary written to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _command_query(args: argparse.Namespace) -> int:
    handlers = {
        "runs": _query_runs,
        "latency": _query_latency,
        "patterns": _query_patterns,
        "diff": _query_diff,
        "export": _query_export,
    }
    try:
        return handlers[args.query_command](args)
    except ValueError as exc:
        # Missing/invalid store files, schema mismatches, unknown run
        # ids, unknown patterns -- all the one-line exit-2 paths.
        return _fail(str(exc))


def _command_profile(args: argparse.Namespace, scale) -> int:
    """Regenerate a perf figure, record BENCH_*.json, compare to baseline."""
    import os

    from .core.kernel import kernel_provenance
    from .experiments.bench import (
        compare_timing_rows,
        load_bench_result,
        write_bench_result,
    )
    from .experiments.figures import (
        figure9,
        figure11_streaming,
        figure_interning,
        figure_sampling,
        figure_scaling,
    )

    generators = {
        "fig9": figure9,
        "fig11s": figure11_streaming,
        "sampling": figure_sampling,
        "interning": figure_interning,
        "scaling": figure_scaling,
    }
    provenance = kernel_provenance()
    print(
        f"rank kernel: {provenance['kernel']} "
        f"(requested {provenance['kernel_requested']}; "
        f"{provenance['kernel_reason']})"
    )
    result = generators[args.figure](scale)
    print(render_table(result))

    path = write_bench_result(
        result,
        label="repro profile",
        directory=args.output_dir,
        scale_name=scale.name,
    )
    print(f"\nbenchmark results written to {path}")

    baseline_path = args.baseline
    if baseline_path is None:
        default_path = os.path.join(
            "benchmarks", "baselines", f"BENCH_{args.figure}_baseline.json"
        )
        if os.path.exists(default_path):
            baseline_path = default_path
    if baseline_path and args.figure == "fig9":
        baseline = load_bench_result(baseline_path)
        comparison = compare_timing_rows(baseline["rows"], result.rows)
        if comparison:
            print(f"\nspeedup vs {baseline_path} ({baseline.get('label', '')}):")
            for row in comparison:
                print(
                    f"  clients={int(row['key']):5d}  "
                    f"{row['baseline']:.4f}s -> {row['current']:.4f}s  "
                    f"({row['speedup']:.2f}x)"
                )
            total_old = sum(row["baseline"] for row in comparison)
            total_new = sum(row["current"] for row in comparison)
            print(f"  aggregate: {total_old / max(total_new, 1e-9):.2f}x")
    elif baseline_path:
        print(f"(baseline comparison only supports fig9; ignoring {baseline_path})")

    if args.cprofile:
        import cProfile
        import pstats

        from .experiments.figures import _base_config
        from .experiments.runner import get_run

        clients = max(scale.client_series)
        run = get_run(_base_config(scale, clients=clients))
        activities = run.activities()
        print(f"\ncProfile of one batch correlation ({clients} clients):")
        profiler = cProfile.Profile()
        profiler.enable()
        BackendSpec.batch(window=scale.window).correlate(activities)
        profiler.disable()
        pstats.Stats(profiler).sort_stats("tottime").print_stats(15)
    return 0


def _command_fuzz(args: argparse.Namespace) -> int:
    """Run the differential fuzz sweep; exit 1 when any seed fails."""
    from .fuzz import report_payload, run_fuzz

    if args.seeds <= 0:
        return _fail("--seeds must be positive")
    if not 0.0 < args.sample_rate <= 1.0:
        return _fail(f"--sample-rate must be in (0, 1], got {args.sample_rate:g}")
    if args.window <= 0:
        return _fail("--window must be positive")
    if args.budget is not None and args.budget <= 0:
        return _fail("--budget must be positive")

    def progress(case) -> None:
        status = "ok " if case.ok else "FAIL"
        print(
            f"seed {case.seed:8d}  {status}  tiers={case.shape['tiers']:>2}  "
            f"{case.shape['workload']:<11s}  activities={case.activities:>6d}  "
            f"{case.elapsed:.2f}s"
        )

    report = run_fuzz(
        seeds=args.seeds,
        start_seed=args.start_seed,
        window=args.window,
        sampling_rate=args.sample_rate,
        budget=args.budget,
        shrink_failures=not args.no_shrink,
        on_case=progress,
    )
    print()
    print(report.describe())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report_payload(report), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"fuzz report written to {args.output}")
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    scale = SCALES[args.scale] if args.scale else default_scale()

    if args.command == "list":
        for figure_id in sorted(ALL_FIGURES):
            print(figure_id)
        return 0
    if args.command == "figure":
        result = ALL_FIGURES[args.figure_id](scale)
        print(render_table(result))
        return 0
    if args.command == "report":
        results = [generator(scale) for generator in ALL_FIGURES.values()]
        if args.output:
            write_report(results, args.output)
            print(f"report written to {args.output}")
        else:
            for result in results:
                print(render_table(result))
                print()
        return 0
    if args.command == "diagnose":
        suspects = figure17_diagnosis(scale, threshold=args.threshold)
        for scenario, components in suspects.items():
            listed = ", ".join(components) if components else "(none above threshold)"
            print(f"{scenario:16s} -> {listed}")
        return 0
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "stream":
        return _command_stream(args)
    if args.command == "query":
        return _command_query(args)
    if args.command == "profile":
        return _command_profile(args, scale)
    if args.command == "fuzz":
        return _command_fuzz(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
