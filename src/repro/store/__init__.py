"""Persistent trace store: SQLite-backed, queryable request history.

Write side (:mod:`~repro.store.store`): :class:`TraceStore` ingests
finished CAGs -- incrementally and idempotently -- into an on-disk
database, one row per request, with interned cross-run pattern identities
and per-run provenance metadata.  Read side (:mod:`~repro.store.query`):
latency percentiles over time windows, pattern mix per run, mix drift
between runs.  Gate (:mod:`~repro.store.diff`): regression diff of two
runs' ranked reports with a tolerance threshold -- the document behind
``repro query diff`` and the CI drift gate.
"""

from .diff import PatternDelta, RunDiff, diff_summaries, load_run_summary
from .query import (
    PERCENTILES,
    RUN_SUMMARY_FORMAT,
    latency_over_windows,
    mix_drift,
    pattern_mix,
    percentile,
    run_summary,
    summarize_durations,
)
from .store import (
    SCHEMA_VERSION,
    TraceStore,
    cag_root_key,
    default_run_id,
    git_describe,
    record_trace,
    signature_hash,
    signature_label,
)

__all__ = [
    "PERCENTILES",
    "RUN_SUMMARY_FORMAT",
    "SCHEMA_VERSION",
    "PatternDelta",
    "RunDiff",
    "TraceStore",
    "cag_root_key",
    "default_run_id",
    "diff_summaries",
    "git_describe",
    "latency_over_windows",
    "load_run_summary",
    "mix_drift",
    "pattern_mix",
    "percentile",
    "record_trace",
    "run_summary",
    "signature_hash",
    "signature_label",
    "summarize_durations",
]
