"""The on-disk trace store: SQLite-backed queryable request history.

Every other artefact the tracer writes (summary JSON, CAG JSONL, DOT,
BENCH files) describes *one* run.  :class:`TraceStore` is the layer that
accumulates **many** runs into one durable, indexed database so that
post-hoc questions -- "how did p99 of this pattern move over the last
week?", "did today's run regress against yesterday's?" -- are one query
instead of one re-simulation.

Schema (version :data:`SCHEMA_VERSION`)
---------------------------------------
``meta``
    Key/value pairs; carries ``schema_version``.  Opening a store whose
    version differs from this build's is refused with a clear error --
    silently misreading rows written by another schema would poison the
    CI drift gate.
``runs``
    One row per ingest run: user-visible ``run_id``, creation wall-clock
    time, scenario name, source/backend one-liners
    (:meth:`BackendSpec.describe`), sampling policy, rank-kernel
    provenance, ``git describe`` of the ingesting checkout, window, and
    final counters (requests, incomplete paths, correlation time).
``patterns``
    Causal-path patterns interned *across* runs: the full
    :func:`~repro.core.patterns.cag_signature` identity is carried as a
    SHA-256 hash plus a human label (component hops) -- two runs that
    observe the same request shape share one pattern row, which is what
    makes cross-run drift queries a join instead of a re-classification.
``requests``
    One row per finished request/CAG: owning run, pattern, begin/end
    timestamps, end-to-end duration, root context, and the per-category
    latency breakdown (segment label -> seconds, JSON).  Indexed by
    (run, pattern, begin time) -- the axes every query filters on.

Ingest is *incremental and idempotent*: each row carries a
data-derived ``root_key`` (root timestamp + root context + root
connection) under a UNIQUE constraint, so re-ingesting a request --
a batch pass after a streaming pass, or a resumed streaming run
re-emitting CAGs that finished between its last checkpoint and the
crash -- is a no-op instead of a duplicate.  That is the property that
makes streaming-chunked, batch and post-resume ingest produce
digest-identical stores (see :meth:`TraceStore.run_digest`).
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import subprocess
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.cag import CAG
from ..core.latency import breakdown_for_cag
from ..core.patterns import Signature, cag_signature

#: Version of the on-disk layout; bump on any incompatible change.
SCHEMA_VERSION = 1

_DDL = """
CREATE TABLE meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE runs (
    run_key            INTEGER PRIMARY KEY,
    run_id             TEXT NOT NULL UNIQUE,
    created_at         REAL NOT NULL,
    scenario           TEXT,
    source             TEXT,
    backend            TEXT,
    sampling           TEXT,
    kernel             TEXT,
    kernel_requested   TEXT,
    kernel_reason      TEXT,
    git_describe       TEXT,
    window_s           REAL,
    requests           INTEGER NOT NULL DEFAULT 0,
    incomplete         INTEGER NOT NULL DEFAULT 0,
    correlation_time_s REAL,
    finalized          INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE patterns (
    pattern_key    INTEGER PRIMARY KEY,
    signature_hash TEXT NOT NULL UNIQUE,
    label          TEXT NOT NULL,
    length         INTEGER NOT NULL,
    components     TEXT NOT NULL
);
CREATE TABLE requests (
    request_key  INTEGER PRIMARY KEY,
    run_key      INTEGER NOT NULL REFERENCES runs(run_key),
    pattern_key  INTEGER NOT NULL REFERENCES patterns(pattern_key),
    root_key     TEXT NOT NULL,
    begin_ts     REAL NOT NULL,
    end_ts       REAL,
    duration_s   REAL,
    root_context TEXT NOT NULL,
    segments     TEXT NOT NULL,
    UNIQUE (run_key, root_key)
);
CREATE INDEX idx_requests_run_pattern_time ON requests (run_key, pattern_key, begin_ts);
CREATE INDEX idx_requests_run_time ON requests (run_key, begin_ts);
"""


def signature_hash(signature: Signature) -> str:
    """Stable cross-run identity of a pattern signature.

    The signature is a nested tuple of strings and ints whose ``repr``
    is deterministic on every supported Python (the same property the
    golden digests rely on), so its SHA-256 is a portable join key.
    """
    return hashlib.sha256(repr(signature).encode("utf-8")).hexdigest()


def signature_label(signature: Signature) -> str:
    """Human-readable component-hop label (not an identity -- the hash is).

    Consecutive same-program vertices are collapsed so a 24-activity
    chain reads ``httpd>java>mysqld>java>httpd`` instead of repeating
    every kernel event.
    """
    hops: List[str] = []
    for _type_name, _hostname, program in signature[0]:
        if not hops or hops[-1] != program:
            hops.append(program)
    return ">".join(hops)


def _signature_components(signature: Signature) -> List[str]:
    seen: List[str] = []
    for _type_name, hostname, program in signature[0]:
        name = f"{hostname}/{program}"
        if name not in seen:
            seen.append(name)
    return seen


def cag_root_key(cag: CAG) -> str:
    """Data-derived identity of a request, stable across backends.

    Built only from logged fields of the root activity (local timestamp,
    context 4-tuple, directional connection 4-tuple) -- never from
    process-local artefacts like ``Activity.seq`` or interned ints -- so
    the same request ingested by the batch, streaming or sharded driver,
    or re-ingested by a resumed run in a fresh interpreter, collapses
    onto one row.
    """
    root = cag.root
    return repr(
        (
            root.timestamp.hex(),
            root.context.as_tuple(),
            root.message.connection_key(),
        )
    )


def git_describe() -> str:
    """``git describe`` of the ingesting checkout, or ``"unknown"``.

    Provenance only -- never load-bearing: a store written outside a git
    checkout (production log ingest) is just as valid.
    """
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def default_run_id(prefix: str = "run") -> str:
    """A readable, reasonably unique run id for callers that pin none."""
    return f"{prefix}-{time.strftime('%Y%m%dT%H%M%S')}-{os.getpid()}"


class TraceStore:
    """One SQLite trace store: open/create, ingest, query.

    Parameters
    ----------
    path:
        Database file.  Created (with schema) when missing unless
        ``create=False``, in which case a missing file raises
        :class:`ValueError` -- the query CLI must never silently create
        an empty store and then report "unknown run".
    """

    def __init__(self, path, create: bool = True) -> None:
        self.path = os.fspath(path)
        exists = os.path.exists(self.path)
        if not exists and not create:
            raise ValueError(f"store file not found: {self.path}")
        if not exists:
            parent = os.path.dirname(self.path) or "."
            if not os.path.isdir(parent):
                raise ValueError(f"store directory does not exist: {parent}")
        self._conn = sqlite3.connect(self.path)
        self._conn.row_factory = sqlite3.Row
        if exists:
            self._check_schema()
        else:
            with self._conn:
                self._conn.executescript(_DDL)
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )

    @classmethod
    def open(cls, path) -> "TraceStore":
        """Open an *existing* store; missing files are an error."""
        return cls(path, create=False)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def commit(self) -> None:
        """Flush pending ingests to disk (the incremental commit point)."""
        self._conn.commit()

    def _check_schema(self) -> None:
        try:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            raise ValueError(f"not a trace store: {self.path} ({exc})") from exc
        if row is None:
            raise ValueError(f"not a trace store: {self.path} (no schema_version)")
        version = int(row["value"])
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"trace store {self.path} has schema version {version}, this "
                f"build supports version {SCHEMA_VERSION}; re-ingest the runs "
                "into a fresh store (or use a matching build) instead of "
                "mixing layouts"
            )

    # -- ingest --------------------------------------------------------------

    def begin_run(self, run_id: str, scenario: Optional[str] = None) -> int:
        """Create (or resume) the run row for ``run_id``; return its key.

        A run that was started but never finalized -- a crashed streaming
        ingest -- is *resumed*: its existing rows stay, and the
        idempotent request ingest fills in whatever the crash cut off.
        Re-using the id of a **finalized** run is refused: silently
        appending to yesterday's completed run would corrupt every drift
        query built on it.
        """
        row = self._conn.execute(
            "SELECT run_key, finalized FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if row is not None:
            if row["finalized"]:
                raise ValueError(
                    f"run id {run_id!r} already exists (finalized) in {self.path}; "
                    "pick a new run id"
                )
            return int(row["run_key"])
        cursor = self._conn.execute(
            "INSERT INTO runs (run_id, created_at, scenario) VALUES (?, ?, ?)",
            (run_id, time.time(), scenario),
        )
        return int(cursor.lastrowid)

    def _pattern_key(self, signature: Signature) -> int:
        digest = signature_hash(signature)
        row = self._conn.execute(
            "SELECT pattern_key FROM patterns WHERE signature_hash = ?", (digest,)
        ).fetchone()
        if row is not None:
            return int(row["pattern_key"])
        cursor = self._conn.execute(
            "INSERT INTO patterns (signature_hash, label, length, components) "
            "VALUES (?, ?, ?, ?)",
            (
                digest,
                signature_label(signature),
                len(signature[0]),
                json.dumps(_signature_components(signature)),
            ),
        )
        return int(cursor.lastrowid)

    def ingest_cag(self, run_key: int, cag: CAG) -> bool:
        """Insert one finished CAG; return False when it was already there.

        Unfinished CAGs carry no END (hence no duration) and are counted
        on the run row instead of stored as rows.
        """
        if not cag.finished:
            return False
        signature = cag_signature(cag)
        breakdown = breakdown_for_cag(cag)
        duration = cag.duration()
        begin_ts = cag.begin_timestamp
        end_ts = None if duration is None else begin_ts + duration
        root = cag.root
        cursor = self._conn.execute(
            "INSERT OR IGNORE INTO requests "
            "(run_key, pattern_key, root_key, begin_ts, end_ts, duration_s, "
            " root_context, segments) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                run_key,
                self._pattern_key(signature),
                cag_root_key(cag),
                begin_ts,
                end_ts,
                duration,
                json.dumps(list(root.context.as_tuple())),
                json.dumps(breakdown.as_dict(), sort_keys=True),
            ),
        )
        return cursor.rowcount > 0

    def ingest_cags(self, run_key: int, cags: Iterable[CAG]) -> int:
        """Ingest many CAGs; return how many rows were newly inserted."""
        return sum(1 for cag in cags if self.ingest_cag(run_key, cag))

    def finalize_run(
        self,
        run_key: int,
        *,
        scenario: Optional[str] = None,
        source: Optional[str] = None,
        backend: Optional[str] = None,
        sampling: Optional[str] = None,
        window_s: Optional[float] = None,
        incomplete: int = 0,
        correlation_time_s: Optional[float] = None,
        kernel_provenance: Optional[Dict[str, str]] = None,
    ) -> None:
        """Stamp run metadata and final counters; marks the run finalized."""
        if kernel_provenance is None:
            from ..core.kernel import kernel_provenance as current_kernel

            kernel_provenance = current_kernel()
        requests = self._conn.execute(
            "SELECT COUNT(*) AS n FROM requests WHERE run_key = ?", (run_key,)
        ).fetchone()["n"]
        self._conn.execute(
            "UPDATE runs SET scenario = COALESCE(?, scenario), source = ?, "
            "backend = ?, sampling = ?, kernel = ?, kernel_requested = ?, "
            "kernel_reason = ?, git_describe = ?, window_s = ?, requests = ?, "
            "incomplete = ?, correlation_time_s = ?, finalized = 1 "
            "WHERE run_key = ?",
            (
                scenario,
                source,
                backend,
                sampling,
                kernel_provenance.get("kernel"),
                kernel_provenance.get("kernel_requested"),
                kernel_provenance.get("kernel_reason"),
                git_describe(),
                window_s,
                requests,
                incomplete,
                correlation_time_s,
                run_key,
            ),
        )
        self._conn.commit()

    # -- run access ----------------------------------------------------------

    def runs(self) -> List[Dict[str, object]]:
        """Every run's metadata row, oldest first."""
        rows = self._conn.execute("SELECT * FROM runs ORDER BY run_key").fetchall()
        return [dict(row) for row in rows]

    def run_ids(self) -> List[str]:
        return [row["run_id"] for row in self.runs()]

    def resolve_run(self, run_id: str) -> int:
        """Map a user-visible run id to its key, or raise ValueError."""
        row = self._conn.execute(
            "SELECT run_key FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if row is None:
            known = ", ".join(self.run_ids()) or "(store is empty)"
            raise ValueError(f"unknown run id {run_id!r}; store has: {known}")
        return int(row["run_key"])

    def run_row(self, run_id: str) -> Dict[str, object]:
        key = self.resolve_run(run_id)
        row = self._conn.execute("SELECT * FROM runs WHERE run_key = ?", (key,)).fetchone()
        return dict(row)

    # -- request-level access ------------------------------------------------

    def _pattern_keys_matching(self, pattern: str) -> List[int]:
        """Pattern filter: exact label or signature-hash prefix (>= 6 chars)."""
        rows = self._conn.execute(
            "SELECT pattern_key FROM patterns WHERE label = ? "
            "OR (length(?) >= 6 AND signature_hash LIKE ? || '%')",
            (pattern, pattern, pattern),
        ).fetchall()
        if not rows:
            raise ValueError(
                f"no pattern matches {pattern!r} (give a label or a "
                "signature-hash prefix of at least 6 characters; see "
                "`repro query patterns`)"
            )
        return [int(row["pattern_key"]) for row in rows]

    def request_rows(
        self,
        run_id: Optional[str] = None,
        pattern: Optional[str] = None,
        scenario: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[sqlite3.Row]:
        """Request rows matching the filters, ordered by begin time.

        ``since``/``until`` select on the request *begin* timestamp
        (trace-local seconds), the time axis the store indexes.
        """
        clauses: List[str] = []
        params: List[object] = []
        if run_id is not None:
            clauses.append("requests.run_key = ?")
            params.append(self.resolve_run(run_id))
        if scenario is not None:
            clauses.append("runs.scenario = ?")
            params.append(scenario)
        if pattern is not None:
            keys = self._pattern_keys_matching(pattern)
            clauses.append(
                f"requests.pattern_key IN ({', '.join('?' * len(keys))})"
            )
            params.extend(keys)
        if since is not None:
            clauses.append("requests.begin_ts >= ?")
            params.append(since)
        if until is not None:
            clauses.append("requests.begin_ts < ?")
            params.append(until)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        query = (
            "SELECT requests.*, runs.run_id AS run_id, runs.scenario AS scenario, "
            "patterns.signature_hash AS signature_hash, patterns.label AS label "
            "FROM requests "
            "JOIN runs ON runs.run_key = requests.run_key "
            "JOIN patterns ON patterns.pattern_key = requests.pattern_key "
            f"{where} ORDER BY requests.begin_ts, requests.root_key"
        )
        return self._conn.execute(query, params).fetchall()

    def durations(self, **filters) -> List[Tuple[float, float]]:
        """(begin_ts, duration_s) pairs for the matching requests."""
        return [
            (row["begin_ts"], row["duration_s"])
            for row in self.request_rows(**filters)
            if row["duration_s"] is not None
        ]

    # -- canonical digest ----------------------------------------------------

    def run_digest(self, run_id: str) -> str:
        """SHA-256 over the run's canonical request rows.

        Canonical = sorted by (root_key), each row reduced to its logged
        data (pattern hash, begin/end/duration, segments).  Insertion
        order, autoincrement keys and run metadata (wall-clock times,
        git state) are all excluded, so two ingests of the same trace --
        batch vs. streaming-chunked vs. crashed-and-resumed -- produce
        the same digest exactly when they stored the same requests.
        """
        key = self.resolve_run(run_id)
        rows = self._conn.execute(
            "SELECT requests.root_key, patterns.signature_hash, requests.begin_ts, "
            "requests.end_ts, requests.duration_s, requests.segments "
            "FROM requests JOIN patterns "
            "ON patterns.pattern_key = requests.pattern_key "
            "WHERE requests.run_key = ? ORDER BY requests.root_key",
            (key,),
        ).fetchall()
        payload = [
            (
                row["root_key"],
                row["signature_hash"],
                repr(row["begin_ts"]),
                repr(row["end_ts"]),
                repr(row["duration_s"]),
                row["segments"],
            )
            for row in rows
        ]
        return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def record_trace(
    store,
    trace,
    *,
    run_id: Optional[str] = None,
    scenario: Optional[str] = None,
    source: Optional[str] = None,
    backend=None,
) -> str:
    """One-shot ingest of a completed trace; returns the run id used.

    ``store`` is a path or an open :class:`TraceStore`; ``backend`` may
    be a :class:`~repro.pipeline.BackendSpec` (its ``describe()`` string
    and knobs land in the run metadata).
    """
    own = not isinstance(store, TraceStore)
    target = TraceStore(store) if own else store
    try:
        used_run_id = run_id or default_run_id()
        run_key = target.begin_run(used_run_id, scenario=scenario)
        target.ingest_cags(run_key, trace.cags)
        sampling = getattr(backend, "sampling", None)
        target.finalize_run(
            run_key,
            scenario=scenario,
            source=source,
            backend=backend.describe() if backend is not None else None,
            sampling=sampling.describe() if sampling is not None else None,
            window_s=trace.correlation.window,
            incomplete=len(trace.incomplete_cags),
            correlation_time_s=trace.correlation_time,
        )
        return used_run_id
    finally:
        if own:
            target.close()
