"""Regression diff of two runs' ranked reports -- the CI drift gate.

:func:`diff_summaries` compares two run summaries (see
:func:`~repro.store.query.run_summary`) pattern by pattern:

* patterns present on one side only are reported as **new** /
  **vanished** -- a request shape appearing or disappearing is report
  drift by definition, so either fails the gate;
* for common patterns, the p50 and p95 end-to-end latencies are
  compared; a relative increase beyond ``tolerance`` (e.g. ``0.25`` =
  +25 %) on either percentile is a **regression**.  Improvements and
  within-tolerance movement pass.

Either side may come straight from a store (``run_summary``) or from a
committed JSON export (:func:`load_run_summary`), which is how CI diffs
today's run against a golden file with no store history.  The result is
deliberately symmetric in structure but not in meaning: the first
argument is the *baseline*, the second the *candidate* being gated.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .query import RUN_SUMMARY_FORMAT


def load_run_summary(path: str) -> Dict[str, object]:
    """Read an exported run summary, validating the format marker."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise ValueError(f"cannot read run summary {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"run summary {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("format") != RUN_SUMMARY_FORMAT:
        raise ValueError(
            f"{path} is not an exported run summary (expected format "
            f"{RUN_SUMMARY_FORMAT!r}; write one with `repro query export`)"
        )
    return document


@dataclass
class PatternDelta:
    """How one pattern moved between the baseline and the candidate."""

    pattern: str
    label: str
    status: str  # "common" | "new" | "vanished"
    base_count: int = 0
    current_count: int = 0
    share_delta: float = 0.0
    base_p50_s: Optional[float] = None
    current_p50_s: Optional[float] = None
    base_p95_s: Optional[float] = None
    current_p95_s: Optional[float] = None
    p50_change: Optional[float] = None
    p95_change: Optional[float] = None
    regressed: bool = False

    def payload(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class RunDiff:
    """The full diff document: per-pattern rows plus the gate verdict."""

    base_run: str
    current_run: str
    tolerance: float
    rows: List[PatternDelta] = field(default_factory=list)

    @property
    def new_patterns(self) -> List[PatternDelta]:
        return [row for row in self.rows if row.status == "new"]

    @property
    def vanished_patterns(self) -> List[PatternDelta]:
        return [row for row in self.rows if row.status == "vanished"]

    @property
    def regressions(self) -> List[PatternDelta]:
        return [row for row in self.rows if row.regressed]

    @property
    def ok(self) -> bool:
        """True when the candidate passes the gate (exit status 0)."""
        return not self.regressions

    def payload(self) -> Dict[str, object]:
        return {
            "base_run": self.base_run,
            "current_run": self.current_run,
            "tolerance": self.tolerance,
            "ok": self.ok,
            "regressions": len(self.regressions),
            "new_patterns": len(self.new_patterns),
            "vanished_patterns": len(self.vanished_patterns),
            "rows": [row.payload() for row in self.rows],
        }

    def describe(self) -> str:
        """Human-readable report (the non-``--json`` CLI output)."""
        lines = [
            f"diff: {self.base_run} (baseline) -> {self.current_run} "
            f"(candidate), tolerance +{self.tolerance * 100:.0f}%"
        ]
        if not self.rows:
            lines.append("no patterns on either side")
        for row in self.rows:
            if row.status == "new":
                lines.append(
                    f"  NEW       {row.pattern[:12]}  {row.label}  "
                    f"({row.current_count} paths)"
                )
                continue
            if row.status == "vanished":
                lines.append(
                    f"  VANISHED  {row.pattern[:12]}  {row.label}  "
                    f"(had {row.base_count} paths)"
                )
                continue
            marker = "REGRESSED" if row.regressed else "ok       "
            lines.append(
                f"  {marker} {row.pattern[:12]}  {row.label}  "
                f"p50 {_ms(row.base_p50_s)} -> {_ms(row.current_p50_s)} "
                f"({_pct(row.p50_change)}), "
                f"p95 {_ms(row.base_p95_s)} -> {_ms(row.current_p95_s)} "
                f"({_pct(row.p95_change)}), "
                f"share {row.share_delta * 100:+.1f} pp"
            )
        verdict = "PASS" if self.ok else f"FAIL ({len(self.regressions)} regressed)"
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


def _ms(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value * 1000:.2f}ms"


def _pct(change: Optional[float]) -> str:
    return "n/a" if change is None else f"{change * 100:+.1f}%"


def _relative_change(base: Optional[float], current: Optional[float]) -> Optional[float]:
    if base is None or current is None or base <= 0:
        return None
    return (current - base) / base


def diff_summaries(
    base: Dict[str, object],
    current: Dict[str, object],
    tolerance: float = 0.25,
) -> RunDiff:
    """Diff two run summaries; see the module docstring for semantics."""
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance:g}")
    base_patterns = {entry["pattern"]: entry for entry in base.get("patterns", [])}
    current_patterns = {
        entry["pattern"]: entry for entry in current.get("patterns", [])
    }
    diff = RunDiff(
        base_run=str(base.get("run_id")),
        current_run=str(current.get("run_id")),
        tolerance=tolerance,
    )
    for digest in sorted(set(base_patterns) | set(current_patterns)):
        before = base_patterns.get(digest)
        after = current_patterns.get(digest)
        entry = before or after
        row = PatternDelta(
            pattern=digest,
            label=str(entry.get("label", "")),
            status="common" if before and after else ("new" if after else "vanished"),
            base_count=int(before["count"]) if before else 0,
            current_count=int(after["count"]) if after else 0,
            share_delta=(after.get("share", 0.0) if after else 0.0)
            - (before.get("share", 0.0) if before else 0.0),
        )
        if row.status == "common":
            row.base_p50_s = before.get("p50_s")
            row.current_p50_s = after.get("p50_s")
            row.base_p95_s = before.get("p95_s")
            row.current_p95_s = after.get("p95_s")
            row.p50_change = _relative_change(row.base_p50_s, row.current_p50_s)
            row.p95_change = _relative_change(row.base_p95_s, row.current_p95_s)
            row.regressed = any(
                change is not None and change > tolerance
                for change in (row.p50_change, row.p95_change)
            )
        else:
            # A pattern appearing or vanishing is report drift: the
            # ranked report CI pinned no longer has the same rows.
            row.regressed = True
        diff.rows.append(row)
    diff.rows.sort(
        key=lambda row: (not row.regressed, -abs(row.share_delta), row.pattern)
    )
    return diff
