"""Read-side of the trace store: percentiles, pattern mix, mix drift.

Everything here is a pure function over :class:`~repro.store.store.
TraceStore` rows, returning JSON-friendly dictionaries -- the `repro
query` CLI renders them for humans, and ``--json`` prints them as-is.

Percentiles use the **nearest-rank** definition (the smallest stored
value with at least ``q`` percent of the sample at or below it).  Unlike
interpolating definitions it always returns a latency that actually
occurred, and -- because it never mixes two samples arithmetically --
identical request sets produce bit-identical percentiles regardless of
which backend or ingest path wrote them, which is what lets tests pin
store-side percentiles against the in-memory report exactly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from .store import TraceStore

#: Percentiles the latency query and run summaries report.
PERCENTILES = (50.0, 90.0, 95.0, 99.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (q in (0, 100])."""
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {q:g}")
    ordered = sorted(values)
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(rank, 1) - 1]


def summarize_durations(durations: Sequence[float]) -> Dict[str, float]:
    """count/mean/max plus the :data:`PERCENTILES` of a duration sample."""
    stats: Dict[str, float] = {"count": len(durations)}
    if not durations:
        return stats
    stats["mean_s"] = sum(durations) / len(durations)
    stats["max_s"] = max(durations)
    for q in PERCENTILES:
        stats[f"p{q:g}_s"] = percentile(durations, q)
    return stats


def latency_over_windows(
    store: TraceStore,
    run_id: Optional[str] = None,
    pattern: Optional[str] = None,
    scenario: Optional[str] = None,
    since: Optional[float] = None,
    until: Optional[float] = None,
    bucket_s: Optional[float] = None,
) -> List[Dict[str, float]]:
    """Latency percentiles, optionally grouped into time buckets.

    Without ``bucket_s`` the whole selection is one row.  With it, the
    request *begin* timestamps are floored onto an absolute
    ``bucket_s``-wide grid, one row per non-empty bucket -- absolute
    (``floor(ts / bucket)``), not relative to the first request, so the
    same request always lands in the same bucket no matter what filter
    selected it.
    """
    if bucket_s is not None and bucket_s <= 0:
        raise ValueError("bucket must be positive")
    pairs = store.durations(
        run_id=run_id, pattern=pattern, scenario=scenario, since=since, until=until
    )
    if bucket_s is None:
        row = summarize_durations([duration for _begin, duration in pairs])
        row["begin_s"] = min((begin for begin, _d in pairs), default=0.0)
        return [row]
    buckets: Dict[int, List[float]] = {}
    for begin, duration in pairs:
        buckets.setdefault(int(begin // bucket_s), []).append(duration)
    rows = []
    for index in sorted(buckets):
        row = summarize_durations(buckets[index])
        row["begin_s"] = index * bucket_s
        rows.append(row)
    return rows


def pattern_mix(store: TraceStore, run_id: str) -> List[Dict[str, object]]:
    """The run's pattern mix: count and share per pattern, ranked.

    Rank order matches the in-memory ranked report
    (:meth:`PatternClassifier.patterns`): most paths first, then fewest
    activities, then the signature identity (here: its hash) -- so row 1
    is the same dominant pattern the paper's report would lead with.
    """
    rows = store.request_rows(run_id=run_id)
    counts: Dict[str, Dict[str, object]] = {}
    for row in rows:
        entry = counts.setdefault(
            row["signature_hash"],
            {
                "pattern": row["signature_hash"],
                "label": row["label"],
                "count": 0,
                "durations": [],
            },
        )
        entry["count"] += 1
        if row["duration_s"] is not None:
            entry["durations"].append(row["duration_s"])
    lengths = _pattern_lengths(store, counts)
    total = sum(entry["count"] for entry in counts.values())
    mix = []
    for entry in sorted(
        counts.values(),
        key=lambda e: (-e["count"], lengths[e["pattern"]], e["pattern"]),
    ):
        durations = entry.pop("durations")
        entry["length"] = lengths[entry["pattern"]]
        entry["share"] = entry["count"] / total if total else 0.0
        stats = summarize_durations(durations)
        stats.pop("count", None)  # entry["count"] counts rows, not durations
        entry.update(stats)
        mix.append(entry)
    return mix


def _pattern_lengths(store: TraceStore, counts) -> Dict[str, int]:
    rows = store._conn.execute(
        "SELECT signature_hash, length FROM patterns"
    ).fetchall()
    return {
        row["signature_hash"]: int(row["length"])
        for row in rows
        if row["signature_hash"] in counts
    }


def mix_drift(
    store: TraceStore, base_run: str, current_run: str
) -> List[Dict[str, object]]:
    """Pattern-mix drift between two runs: share deltas, new/vanished.

    One row per pattern seen in either run, ordered by absolute share
    delta (largest movement first).  ``base_share``/``current_share``
    are fractions of each run's own request total, so runs of different
    sizes compare meaningfully.
    """
    base = {entry["pattern"]: entry for entry in pattern_mix(store, base_run)}
    current = {entry["pattern"]: entry for entry in pattern_mix(store, current_run)}
    rows = []
    for digest in sorted(set(base) | set(current)):
        before = base.get(digest)
        after = current.get(digest)
        entry = before or after
        rows.append(
            {
                "pattern": digest,
                "label": entry["label"],
                "base_count": before["count"] if before else 0,
                "current_count": after["count"] if after else 0,
                "base_share": before["share"] if before else 0.0,
                "current_share": after["share"] if after else 0.0,
                "share_delta": (after["share"] if after else 0.0)
                - (before["share"] if before else 0.0),
                "status": "common"
                if before and after
                else ("new" if after else "vanished"),
            }
        )
    rows.sort(key=lambda row: (-abs(row["share_delta"]), row["pattern"]))
    return rows


#: Format marker of exported run summaries (bump with SCHEMA_VERSION).
RUN_SUMMARY_FORMAT = "repro-trace-store-run/1"


def run_summary(store: TraceStore, run_id: str) -> Dict[str, object]:
    """Self-contained, diffable description of one run.

    This is the document ``repro query export`` writes and ``repro query
    diff`` consumes: run metadata for provenance, plus the ranked
    per-pattern rows (count, share, percentiles) the regression diff
    compares.  Committing one of these as a golden file gives CI a
    drift gate that needs no store -- only today's run.
    """
    row = store.run_row(run_id)
    return {
        "format": RUN_SUMMARY_FORMAT,
        "run_id": row["run_id"],
        "created_at": row["created_at"],
        "scenario": row["scenario"],
        "source": row["source"],
        "backend": row["backend"],
        "sampling": row["sampling"],
        "kernel": row["kernel"],
        "git_describe": row["git_describe"],
        "window_s": row["window_s"],
        "requests": row["requests"],
        "incomplete": row["incomplete"],
        "correlation_time_s": row["correlation_time_s"],
        "patterns": pattern_mix(store, run_id),
    }
