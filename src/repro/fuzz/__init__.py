"""Cross-backend fuzzing of the correlation pipeline.

Seeded random scenarios (:mod:`repro.topology.generator`) driven through
the full invariant stack -- backend equivalence, sampling identity,
ground-truth accuracy, engine-state conservation -- with shrink-on-failure.
``repro fuzz --seeds N`` is the CLI front end; :func:`run_fuzz` the
programmatic one.
"""

from .harness import (
    CaseResult,
    FailureReport,
    FuzzReport,
    Violation,
    report_payload,
    run_case,
    run_fuzz,
    run_generated_scenario,
    shrink,
)

__all__ = [
    "CaseResult",
    "FailureReport",
    "FuzzReport",
    "Violation",
    "report_payload",
    "run_case",
    "run_fuzz",
    "run_generated_scenario",
    "shrink",
]
