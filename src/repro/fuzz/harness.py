"""The cross-backend fuzz harness: generated scenarios vs the invariants.

One fuzz *case* takes an integer seed, generates a scenario
(:func:`~repro.topology.generator.generate_scenario`), runs it on the
simulated cluster, and drives the resulting trace through the full
invariant stack:

``full_equivalence``
    batch == streaming == sharded result digests
    (:func:`~repro.pipeline.verify_equivalence`);
``sampled_equivalence``
    the same three backends under request sampling still agree -- the
    root-hash decision makes the admitted subset backend-independent;
``sampled_subset``
    every CAG of the sampled run is byte-for-byte one of the full run's
    (sampling selects, never distorts);
``accuracy``
    :class:`~repro.pipeline.AccuracyStage` scores 100 % causal-path
    accuracy with zero false positives against the simulator's ground
    truth;
``engine_state``
    conservation laws of the engine counters after the drain: an
    unsampled run has no tombstone activity at all; a sampled run
    accounts every sampled-out root (finished + still-open + evicted),
    purges at least one context-map entry per discarded request (its
    END's own entry -- the PR 5 leak), and ends with no more live engine
    state than the unsampled run.

Each invariant that fails contributes a :class:`Violation`; a failing
seed is then *shrunk* by re-generating it under progressively smaller
:class:`~repro.topology.generator.GeneratorLimits` envelopes (fewer
tiers, fewer clients, smaller catalogue, shorter runtime), keeping each
reduction that still fails -- the reported repro is the smallest
still-failing ``(seed, limits)`` pair, a handful of requests instead of
a 60-tier mesh.

Noise and fault attachment points are generated into the topologies
(ssh-noise tiers, ``db_noise_tier``, ``network_fault_tier``) but the
harness runs with noise and faults *disabled*: the oracle demands exact
accuracy, and the paper's non-filterable noise legitimately perturbs it.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..pipeline import (
    AccuracyStage,
    BackendSpec,
    Pipeline,
    RunSource,
    canonical_cags,
    verify_equivalence,
)
from ..sampling import SamplingSpec
from ..topology import (
    DEFAULT_LIMITS,
    GeneratorLimits,
    RunSettings,
    Scenario,
    TopologyDeployment,
    generate_scenario,
    scenario_shape,
)

#: Clock skews cycled across seeds (seconds); all within the streaming
#: backend's default reorder slack, so equivalence is exact by design.
_CLOCK_SKEWS = (0.0005, 0.0, 0.002)

#: Offset decorrelating the run-knob stream from the scenario stream.
_RUN_SALT = 0x9E3779B9


@dataclass
class Violation:
    """One invariant the case broke."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


@dataclass
class CaseResult:
    """Outcome of one seed under one generator envelope."""

    seed: int
    limits: GeneratorLimits
    shape: Dict[str, object]
    violations: List[Violation]
    activities: int
    requests: int
    spliced_receives: int
    elapsed: float

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class FailureReport:
    """A failing seed plus its minimized repro."""

    seed: int
    violations: List[Violation]
    shrunk_limits: GeneratorLimits
    shrunk_violations: List[Violation]
    shrunk_shape: Dict[str, object]
    shrink_steps: int

    def describe(self) -> str:
        lines = [f"seed {self.seed} FAILED:"]
        lines += [f"  {v}" for v in self.violations]
        lines.append(
            f"  minimized repro ({self.shrink_steps} shrink steps): "
            f"seed={self.seed} limits={self.shrunk_limits} "
            f"shape={self.shrunk_shape}"
        )
        lines += [f"    {v}" for v in self.shrunk_violations]
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Everything one :func:`run_fuzz` sweep produced."""

    cases: List[CaseResult] = field(default_factory=list)
    failures: List[FailureReport] = field(default_factory=list)
    elapsed: float = 0.0
    budget_exhausted: bool = False
    seeds_requested: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def seeds_run(self) -> int:
        return len(self.cases)

    def seconds_per_seed(self) -> float:
        return self.elapsed / len(self.cases) if self.cases else 0.0

    def coverage(self) -> Dict[str, object]:
        """Shapes the sweep exercised (the fuzz figure's payload)."""
        patterns: set = set()
        workloads: set = set()
        tiers: List[int] = []
        for case in self.cases:
            patterns.update(case.shape["patterns"])
            workloads.add(case.shape["workload"])
            tiers.append(int(case.shape["tiers"]))
        return {
            "patterns": sorted(patterns),
            "workloads": sorted(workloads),
            "tiers_min": min(tiers) if tiers else 0,
            "tiers_max": max(tiers) if tiers else 0,
            "replicated_meshes": sum(1 for c in self.cases if c.shape["replicated"]),
            "splice_exercised": sum(1 for c in self.cases if c.spliced_receives > 0),
            "total_activities": sum(c.activities for c in self.cases),
        }

    def describe(self) -> str:
        cov = self.coverage()
        lines = [
            f"fuzz: {self.seeds_run}/{self.seeds_requested} seeds run, "
            f"{len(self.failures)} failing, {self.seconds_per_seed():.2f} s/seed"
            + (" (budget exhausted)" if self.budget_exhausted else ""),
            f"  coverage: patterns={'/'.join(cov['patterns'])} "
            f"workloads={'/'.join(cov['workloads'])} "
            f"tiers={cov['tiers_min']}..{cov['tiers_max']} "
            f"replicated={cov['replicated_meshes']} "
            f"splice_exercised={cov['splice_exercised']}",
        ]
        for failure in self.failures:
            lines.append(failure.describe())
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# one case
# ---------------------------------------------------------------------------


def run_generated_scenario(seed: int, scenario: Scenario):
    """Simulate one generated scenario (deterministic run knobs)."""
    knobs = random.Random(seed + _RUN_SALT)
    settings = RunSettings(
        seed=seed,
        clock_skew=knobs.choice(_CLOCK_SKEWS),
    )
    deployment = TopologyDeployment(
        topology=scenario.topology,
        workload=scenario.workload,
        mix=scenario.mix,
        settings=settings,
    )
    return deployment.run()


def run_case(
    seed: int,
    limits: GeneratorLimits = DEFAULT_LIMITS,
    window: float = 0.010,
    sampling_rate: float = 0.5,
) -> CaseResult:
    """Generate, simulate and check one seed; never raises on violation."""
    start = time.perf_counter()
    scenario = generate_scenario(seed, limits)
    run = run_generated_scenario(seed, scenario)
    source = RunSource(run=run)
    sampling = SamplingSpec.uniform(sampling_rate)
    violations: List[Violation] = []

    full = verify_equivalence(source, window=window, keep_results=True)
    if not full.equivalent:
        violations.append(Violation("full_equivalence", full.describe()))
    sampled = verify_equivalence(
        source, window=window, sampling=sampling, keep_results=True
    )
    if not sampled.equivalent:
        violations.append(Violation("sampled_equivalence", sampled.describe()))

    full_batch = full.outcomes[0].result
    sampled_batch = sampled.outcomes[0].result
    full_canon = set(canonical_cags(full_batch.cags))
    missing = [
        shape for shape in canonical_cags(sampled_batch.cags) if shape not in full_canon
    ]
    if missing:
        violations.append(
            Violation(
                "sampled_subset",
                f"{len(missing)} sampled CAG(s) are not byte-identical to any "
                "CAG of the unsampled run",
            )
        )

    session = Pipeline(
        source=source,
        backend=BackendSpec.batch(window=window),
        stages=[AccuracyStage()],
    ).run()
    accuracy = session.analyses["accuracy"]
    if accuracy.accuracy != 1.0 or accuracy.false_positives != 0:
        violations.append(
            Violation(
                "accuracy",
                f"accuracy={accuracy.accuracy} "
                f"false_positives={accuracy.false_positives} vs ground truth",
            )
        )

    violations.extend(_engine_state_violations(full, sampled))

    shape = scenario_shape(scenario)
    return CaseResult(
        seed=seed,
        limits=limits,
        shape=shape,
        violations=violations,
        activities=run.total_activities,
        requests=len(run.ground_truth),
        spliced_receives=sum(
            o.result.engine_stats.spliced_receives for o in full.outcomes
        ),
        elapsed=time.perf_counter() - start,
    )


def _engine_state_violations(full, sampled) -> List[Violation]:
    """Conservation laws over the engine counters of every backend."""
    violations: List[Violation] = []
    for outcome in full.outcomes:
        stats = outcome.result.engine_stats
        if (
            stats.sampled_out_roots
            or stats.sampled_out_finished
            or stats.purged_cmap_entries
            or outcome.result.final_open_tombstones
        ):
            violations.append(
                Violation(
                    "engine_state",
                    f"{outcome.kind}: unsampled run produced tombstone "
                    f"activity (roots={stats.sampled_out_roots}, "
                    f"purged={stats.purged_cmap_entries})",
                )
            )
    for outcome, full_outcome in zip(sampled.outcomes, full.outcomes):
        stats = outcome.result.engine_stats
        accounted = (
            stats.sampled_out_finished
            + outcome.result.final_open_tombstones
            + stats.evicted_sampled_out_cags
        )
        if stats.sampled_out_roots != accounted:
            violations.append(
                Violation(
                    "engine_state",
                    f"{outcome.kind}: leaked tombstones -- "
                    f"{stats.sampled_out_roots} sampled-out roots but only "
                    f"{accounted} accounted (finished + open + evicted)",
                )
            )
        if stats.purged_cmap_entries < stats.sampled_out_finished:
            violations.append(
                Violation(
                    "engine_state",
                    f"{outcome.kind}: sampled-out purge leak -- "
                    f"{stats.sampled_out_finished} discarded requests purged "
                    f"only {stats.purged_cmap_entries} context-map entries "
                    "(each END must purge at least its own)",
                )
            )
        if (
            outcome.result.final_state_entries
            > full_outcome.result.final_state_entries
        ):
            violations.append(
                Violation(
                    "engine_state",
                    f"{outcome.kind}: sampled run retained more live engine "
                    f"state ({outcome.result.final_state_entries} entries) "
                    f"than the unsampled run "
                    f"({full_outcome.result.final_state_entries})",
                )
            )
    return violations


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------

#: Reductions tried in order; each is kept only if the seed still fails.
_SHRINK_LADDER = (
    {"min_tiers": 3, "max_tiers": 5},
    {"max_clients": 6, "max_arrival_rate": 8.0},
    {"max_request_types": 1, "max_queries": 2},
    {"runtime": 0.5, "ramp": 0.1},
    {"max_replicas": 1},
)


def shrink(
    seed: int,
    limits: GeneratorLimits,
    window: float = 0.010,
    sampling_rate: float = 0.5,
) -> FailureReport:
    """Minimize a failing seed by tightening the generator envelope.

    Greedy over :data:`_SHRINK_LADDER`: each reduction is applied on top
    of the reductions kept so far and re-run; it sticks only when the
    seed still fails.  Bounded at ``len(_SHRINK_LADDER)`` extra runs,
    each cheaper than the original.
    """
    original = run_case(seed, limits, window=window, sampling_rate=sampling_rate)
    best = original
    current = limits
    steps = 0
    for reduction in _SHRINK_LADDER:
        candidate_limits = current.with_overrides(**reduction)
        candidate = run_case(
            seed, candidate_limits, window=window, sampling_rate=sampling_rate
        )
        steps += 1
        if not candidate.ok:
            current = candidate_limits
            best = candidate
    return FailureReport(
        seed=seed,
        violations=original.violations,
        shrunk_limits=best.limits,
        shrunk_violations=best.violations,
        shrunk_shape=best.shape,
        shrink_steps=steps,
    )


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------


def run_fuzz(
    seeds: int = 25,
    start_seed: int = 0,
    limits: GeneratorLimits = DEFAULT_LIMITS,
    window: float = 0.010,
    sampling_rate: float = 0.5,
    budget: Optional[float] = None,
    shrink_failures: bool = True,
    on_case: Optional[Callable[[CaseResult], None]] = None,
) -> FuzzReport:
    """Fuzz ``seeds`` consecutive seeds starting at ``start_seed``.

    ``budget`` caps wall-clock seconds: the sweep stops cleanly before
    starting a case that would exceed it (``report.budget_exhausted``).
    ``on_case`` fires after every case -- the CLI's progress line.
    """
    report = FuzzReport(seeds_requested=seeds)
    start = time.perf_counter()
    for seed in range(start_seed, start_seed + seeds):
        if budget is not None and time.perf_counter() - start >= budget:
            report.budget_exhausted = True
            break
        case = run_case(seed, limits, window=window, sampling_rate=sampling_rate)
        report.cases.append(case)
        if on_case is not None:
            on_case(case)
        if not case.ok:
            if shrink_failures:
                report.failures.append(
                    shrink(seed, limits, window=window, sampling_rate=sampling_rate)
                )
            else:
                report.failures.append(
                    FailureReport(
                        seed=seed,
                        violations=case.violations,
                        shrunk_limits=limits,
                        shrunk_violations=case.violations,
                        shrunk_shape=case.shape,
                        shrink_steps=0,
                    )
                )
    report.elapsed = time.perf_counter() - start
    return report


def report_payload(report: FuzzReport) -> Dict[str, object]:
    """JSON-ready summary (the CLI's ``--output`` artifact)."""
    return {
        "ok": report.ok,
        "seeds_requested": report.seeds_requested,
        "seeds_run": report.seeds_run,
        "elapsed_s": round(report.elapsed, 3),
        "seconds_per_seed": round(report.seconds_per_seed(), 3),
        "budget_exhausted": report.budget_exhausted,
        "coverage": report.coverage(),
        "failures": [
            {
                "seed": failure.seed,
                "violations": [str(v) for v in failure.violations],
                "shrunk_limits": {
                    f: getattr(failure.shrunk_limits, f)
                    for f in (
                        "min_tiers",
                        "max_tiers",
                        "max_replicas",
                        "max_clients",
                        "max_arrival_rate",
                        "max_request_types",
                        "max_queries",
                        "runtime",
                        "ramp",
                    )
                },
                "shrunk_shape": failure.shrunk_shape,
                "shrunk_violations": [str(v) for v in failure.shrunk_violations],
            }
            for failure in report.failures
        ],
    }
