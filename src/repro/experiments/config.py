"""Experiment scales.

The paper's runs last ten and a half minutes with up to 1000 emulated
clients against real hardware; replaying that verbatim under a pure-Python
discrete-event simulator would make the benchmark suite take hours.  Every
figure generator therefore accepts an :class:`ExperimentScale` that fixes
the run durations and the parameter grids.  Two scales are provided:

* ``small``  -- the default: short runtime sessions and a thinned grid,
  suitable for CI and for ``pytest benchmarks/``;
* ``full``   -- the paper's grids (clients 100..1000 in steps of 100,
  windows up to 100 s) with longer runtime sessions.

Select via the ``REPRO_SCALE`` environment variable or pass a scale
explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

from ..services.rubis.client import WorkloadStages

#: Environment variable selecting the experiment scale.
SCALE_ENV = "REPRO_SCALE"


@dataclass(frozen=True)
class ExperimentScale:
    """Grid and duration settings shared by the figure generators."""

    name: str
    #: stage durations used by every run
    stages: WorkloadStages
    #: base RNG seed
    seed: int = 17
    #: clock skew across service nodes used by the performance figures
    clock_skew: float = 0.001
    #: default sliding window for traces
    window: float = 0.010
    #: client counts for the request/throughput figures (Fig. 8, 9, 12, 13, 16)
    client_series: Tuple[int, ...] = (100, 300, 500, 700, 900)
    #: client counts for the window sweeps (Fig. 10, 11)
    window_clients: Tuple[int, ...] = (200, 500, 800)
    #: sliding-window sizes for the sweeps (seconds)
    windows: Tuple[float, ...] = (0.001, 0.01, 0.1, 1.0, 10.0)
    #: client counts for the latency-percentage figure (Fig. 15)
    fig15_clients: Tuple[int, ...] = (500, 600, 700, 800)
    #: client count for the fault-injection figure (Fig. 17)
    fault_clients: int = 300
    #: client counts for the noise figure (Fig. 14)
    noise_clients: Tuple[int, ...] = (100, 300, 500)
    #: noise-figure sliding window (the paper uses 2 ms)
    noise_window: float = 0.002
    #: accuracy-table grid
    accuracy_clients: Tuple[int, ...] = (100, 400)
    accuracy_windows: Tuple[float, ...] = (0.010, 1.0)
    accuracy_skews: Tuple[float, ...] = (0.001, 0.500)
    accuracy_workloads: Tuple[str, ...] = ("browse_only", "default")
    #: client counts for the baseline comparison
    baseline_clients: Tuple[int, ...] = (100, 400)
    #: sampling rates for the overhead-control figure (1.0 = trace all)
    sampling_rates: Tuple[float, ...] = (1.0, 0.5, 0.25, 0.1)
    #: consecutive generated seeds swept by the fuzz figure/benchmark
    fuzz_seeds: int = 12
    #: uniform sampling rate the fuzz invariants are exercised at
    fuzz_sampling_rate: float = 0.5
    #: scenario-library scenarios swept by the overhead-control figure
    sampling_scenarios: Tuple[str, ...] = ("rubis", "fanout_aggregator", "cache_aside")
    #: shard counts swept by the scale-out figure
    scaling_shard_counts: Tuple[int, ...] = (2, 4, 8)
    #: executors swept by the scale-out figure
    scaling_executors: Tuple[str, ...] = ("thread", "process")
    #: schedules swept by the scale-out figure
    scaling_schedules: Tuple[str, ...] = ("static", "balanced", "stealing")

    @property
    def max_threads_values(self) -> Tuple[int, ...]:
        """MaxThreads settings compared by Fig. 16."""
        return (40, 250)


SMALL = ExperimentScale(
    name="small",
    stages=WorkloadStages(up_ramp=1.5, runtime=8.0, down_ramp=0.5),
)

FULL = ExperimentScale(
    name="full",
    stages=WorkloadStages(up_ramp=2.0, runtime=25.0, down_ramp=1.0),
    client_series=tuple(range(100, 1001, 100)),
    window_clients=(200, 500, 800),
    windows=(0.001, 0.01, 0.1, 1.0, 10.0, 100.0),
    fig15_clients=(500, 600, 700, 800),
    noise_clients=(100, 300, 500, 700, 900),
    accuracy_clients=(100, 400, 800),
    accuracy_windows=(0.001, 0.010, 0.1, 1.0, 10.0),
    accuracy_skews=(0.001, 0.050, 0.100, 0.500),
    sampling_rates=(1.0, 0.75, 0.5, 0.25, 0.1, 0.05),
    fuzz_seeds=50,
    sampling_scenarios=(
        "rubis",
        "five_tier_chain",
        "fanout_aggregator",
        "cache_aside",
        "replicated_lb",
    ),
)

SCALES = {scale.name: scale for scale in (SMALL, FULL)}


def default_scale() -> ExperimentScale:
    """The scale selected by ``REPRO_SCALE`` (defaults to ``small``)."""
    name = os.environ.get(SCALE_ENV, "small").strip().lower()
    return SCALES.get(name, SMALL)
