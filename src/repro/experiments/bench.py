"""Benchmark-results writer: the repository's performance trajectory.

Every performance-sensitive run (the Fig. 9 correlation-time sweep, the
Fig. 11s streaming-memory sweep, the ``repro profile`` CLI command) can
serialise its :class:`~repro.experiments.figures.FigureResult` to a
``BENCH_<figure_id>.json`` file.  The files are small, schema-stable JSON
documents so successive PRs can be compared machine-to-machine:

* CI uploads them as build artifacts (one per run of the benchmark job);
* ``repro profile --baseline`` compares a fresh run against a committed
  baseline (``benchmarks/baselines/``) and prints per-point speedups;
* the committed baselines pin the numbers a change claims to beat.

Schema (one JSON object per file)::

    {
      "figure_id":  "fig9",
      "title":      "...",
      "label":      "free-form provenance note",
      "python":     "3.11.7",
      "platform":   "Linux-...",
      "scale":      "small",
      "created_at": "2026-07-25T12:00:00+00:00",
      "columns":    [...],
      "rows":       [{...}, ...],
      "notes":      "..."
    }

Timing fields inside ``rows`` keep whatever unit the figure generator
used (seconds for correlation times, entry counts for memory).  Every
row additionally carries the active rank-kernel backend and the reason
it was selected (``kernel`` / ``kernel_requested`` / ``kernel_reason``,
see :mod:`repro.core.kernel`), so a document is self-describing about
what was measured; comparisons match on the key/value columns only and
therefore tolerate baselines that predate these columns.

As a perf-regression gate
-------------------------

:func:`compare_to_baseline` turns two documents into a machine-readable
verdict, and the module doubles as a command-line entry point for CI::

    python -m repro.experiments.bench compare \
        --baseline benchmarks/baselines/BENCH_fig9_baseline.json \
        --current bench_results/BENCH_fig9.json --tolerance 0.25

Exit status 1 means the current aggregate regressed beyond the
tolerance; a missing baseline file is reported but never fails the gate
(a fresh clone must be able to run CI before its first baseline is
committed).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.kernel import kernel_provenance
from .config import default_scale
from .figures import FigureResult

#: Environment variable overriding the output directory.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

#: Default output directory (relative to the current working directory).
DEFAULT_BENCH_DIR = "bench_results"


def bench_dir(directory: Optional[str] = None) -> Path:
    """Resolve (and create) the benchmark-results directory."""
    chosen = directory or os.environ.get(BENCH_DIR_ENV) or DEFAULT_BENCH_DIR
    path = Path(chosen)
    path.mkdir(parents=True, exist_ok=True)
    return path


def bench_payload(
    result: FigureResult,
    label: str = "",
    scale_name: Optional[str] = None,
) -> Dict[str, object]:
    """The serialisable document for one figure result.

    Pass the *resolved* scale's name whenever the caller selected the
    scale itself (the CLI's ``--scale`` flag overrides the environment);
    the default falls back to :func:`default_scale`, which normalises
    the ``REPRO_SCALE`` value the same way the generators do.
    """
    if scale_name is None:
        scale_name = default_scale().name
    # Every row carries the active kernel backend and why it was
    # selected: a BENCH file must be self-describing about *what* was
    # measured, or cross-machine comparisons silently mix backends.
    # Comparison code matches on key/value columns only, so old
    # baselines without these columns still compare cleanly.
    provenance = kernel_provenance()
    rows = [{**row, **provenance} for row in result.rows]
    columns = list(result.columns) + [
        column for column in provenance if column not in result.columns
    ]
    return {
        "figure_id": result.figure_id,
        "title": result.title,
        "label": label,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scale": scale_name,
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "columns": columns,
        "rows": rows,
        "notes": result.notes,
    }


def write_bench_result(
    result: FigureResult,
    label: str = "",
    directory: Optional[str] = None,
    scale_name: Optional[str] = None,
) -> Path:
    """Write ``BENCH_<figure_id>.json`` and return its path."""
    target = bench_dir(directory) / f"BENCH_{result.figure_id}.json"
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(
            bench_payload(result, label=label, scale_name=scale_name),
            handle,
            indent=2,
        )
        handle.write("\n")
    return target


def load_bench_result(path: str) -> Dict[str, object]:
    """Load a previously written ``BENCH_*.json`` document."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare_timing_rows(
    baseline_rows: Sequence[Dict[str, object]],
    current_rows: Sequence[Dict[str, object]],
    key_column: str = "clients",
    value_column: str = "correlation_time_s",
) -> List[Dict[str, float]]:
    """Per-point speedup of ``current`` over ``baseline``.

    Points are matched on ``key_column``; points present in only one of
    the two documents are skipped (sweeps may differ across scales).
    Returns rows of ``{key, baseline, current, speedup}``.
    """
    baseline_by_key = {row[key_column]: row for row in baseline_rows}
    comparison: List[Dict[str, float]] = []
    for row in current_rows:
        key = row.get(key_column)
        base = baseline_by_key.get(key)
        if base is None:
            continue
        old = float(base[value_column])
        new = float(row[value_column])
        comparison.append(
            {
                "key": float(key),
                "baseline": old,
                "current": new,
                "speedup": old / new if new > 0 else float("inf"),
            }
        )
    return comparison


def compare_to_baseline(
    baseline: object,
    current: object,
    key_column: str = "clients",
    value_column: str = "correlation_time_s",
    tolerance: float = 0.25,
) -> Dict[str, object]:
    """Machine-readable perf verdict of ``current`` against ``baseline``.

    ``baseline`` / ``current`` are BENCH documents (dicts with ``rows``),
    bare row lists, or paths to BENCH files.  The verdict is computed on
    the *aggregate* of ``value_column`` over the sweep points both
    documents share -- per-point times on small scales are noisy, but
    their sum tracks real slowdowns -- and tolerates imperfect inputs
    instead of crashing a CI job:

    * a ``baseline`` path that does not exist -> ``"missing-baseline"``
      (``regressed`` stays False: a repo without a committed baseline
      must still pass its gate);
    * sweep points present on one side only are skipped and listed in
      ``skipped_keys``;
    * zero/negative-time rows (a figure generator that did not measure,
      or clock quantisation on a trivial point) are skipped and listed
      too -- a 0-second baseline point would otherwise turn any real
      time into an infinite regression.

    Returns a JSON-ready dict::

        {"status": "pass" | "regression" | "missing-baseline" | "no-overlap",
         "regressed": bool, "tolerance": 0.25,
         "aggregate_baseline": ..., "aggregate_current": ...,
         "aggregate_ratio": ...,  # current / baseline, > 1 means slower
         "points": [{"key", "baseline", "current", "ratio"} ...],
         "skipped_keys": [...], "reason": "..."}
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")

    def resolve(document: object, side: str):
        if isinstance(document, (str, os.PathLike)):
            if not os.path.exists(document):
                return None, f"{side} file not found: {document}"
            document = load_bench_result(os.fspath(document))
        if isinstance(document, dict):
            document = document.get("rows", [])
        return list(document), None

    verdict: Dict[str, object] = {
        "status": "pass",
        "regressed": False,
        "tolerance": tolerance,
        "key_column": key_column,
        "value_column": value_column,
        "points": [],
        "skipped_keys": [],
        "reason": "",
    }

    baseline_rows, missing = resolve(baseline, "baseline")
    if missing:
        verdict["status"] = "missing-baseline"
        verdict["reason"] = missing
        return verdict
    current_rows, missing = resolve(current, "current")
    if missing:
        # No current measurement is a broken benchmark run, not a pass.
        verdict["status"] = "no-overlap"
        verdict["regressed"] = True
        verdict["reason"] = missing
        return verdict

    baseline_by_key = {row.get(key_column): row for row in baseline_rows}
    skipped: List[object] = []
    points: List[Dict[str, float]] = []
    for row in current_rows:
        key = row.get(key_column)
        base = baseline_by_key.get(key)
        if base is None or value_column not in row or value_column not in base:
            skipped.append(key)
            continue
        old = float(base[value_column])
        new = float(row[value_column])
        if old <= 0.0 or new < 0.0:
            skipped.append(key)
            continue
        points.append(
            {"key": key, "baseline": old, "current": new, "ratio": new / old}
        )
    for key in baseline_by_key:
        if all(point["key"] != key for point in points) and key not in skipped:
            skipped.append(key)

    verdict["points"] = points
    verdict["skipped_keys"] = skipped
    if not points:
        verdict["status"] = "no-overlap"
        verdict["regressed"] = True
        verdict["reason"] = (
            "no comparable sweep points between baseline and current rows"
        )
        return verdict

    aggregate_baseline = sum(point["baseline"] for point in points)
    aggregate_current = sum(point["current"] for point in points)
    ratio = aggregate_current / aggregate_baseline
    verdict["aggregate_baseline"] = aggregate_baseline
    verdict["aggregate_current"] = aggregate_current
    verdict["aggregate_ratio"] = ratio
    if ratio > 1.0 + tolerance:
        verdict["status"] = "regression"
        verdict["regressed"] = True
        verdict["reason"] = (
            f"aggregate {value_column} regressed {ratio:.2f}x vs baseline "
            f"(tolerance {1.0 + tolerance:.2f}x)"
        )
    else:
        verdict["reason"] = (
            f"aggregate {value_column} at {ratio:.2f}x of baseline "
            f"(tolerance {1.0 + tolerance:.2f}x)"
        )
    return verdict


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.experiments.bench`` -- the CI perf gate.

    ``compare`` prints the :func:`compare_to_baseline` verdict as JSON
    and exits 1 iff the verdict says ``regressed`` -- which a CI step
    can use directly as a pass/fail gate.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.bench",
        description="compare BENCH_*.json perf documents",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    compare = subparsers.add_parser(
        "compare", help="verdict of a current BENCH file vs a baseline"
    )
    compare.add_argument("--baseline", required=True, help="baseline BENCH_*.json")
    compare.add_argument("--current", required=True, help="current BENCH_*.json")
    compare.add_argument("--key-column", default="clients")
    compare.add_argument("--value-column", default="correlation_time_s")
    compare.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed aggregate slowdown fraction (default 0.25 = +25%%)",
    )
    args = parser.parse_args(argv)

    verdict = compare_to_baseline(
        args.baseline,
        args.current,
        key_column=args.key_column,
        value_column=args.value_column,
        tolerance=args.tolerance,
    )
    print(json.dumps(verdict, indent=2, sort_keys=True))
    return 1 if verdict["regressed"] else 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
