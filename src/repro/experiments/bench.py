"""Benchmark-results writer: the repository's performance trajectory.

Every performance-sensitive run (the Fig. 9 correlation-time sweep, the
Fig. 11s streaming-memory sweep, the ``repro profile`` CLI command) can
serialise its :class:`~repro.experiments.figures.FigureResult` to a
``BENCH_<figure_id>.json`` file.  The files are small, schema-stable JSON
documents so successive PRs can be compared machine-to-machine:

* CI uploads them as build artifacts (one per run of the benchmark job);
* ``repro profile --baseline`` compares a fresh run against a committed
  baseline (``benchmarks/baselines/``) and prints per-point speedups;
* the committed baselines pin the numbers a change claims to beat.

Schema (one JSON object per file)::

    {
      "figure_id":  "fig9",
      "title":      "...",
      "label":      "free-form provenance note",
      "python":     "3.11.7",
      "platform":   "Linux-...",
      "scale":      "small",
      "created_at": "2026-07-25T12:00:00+00:00",
      "columns":    [...],
      "rows":       [{...}, ...],
      "notes":      "..."
    }

Timing fields inside ``rows`` keep whatever unit the figure generator
used (seconds for correlation times, entry counts for memory).
"""

from __future__ import annotations

import json
import os
import platform
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .config import default_scale
from .figures import FigureResult

#: Environment variable overriding the output directory.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

#: Default output directory (relative to the current working directory).
DEFAULT_BENCH_DIR = "bench_results"


def bench_dir(directory: Optional[str] = None) -> Path:
    """Resolve (and create) the benchmark-results directory."""
    chosen = directory or os.environ.get(BENCH_DIR_ENV) or DEFAULT_BENCH_DIR
    path = Path(chosen)
    path.mkdir(parents=True, exist_ok=True)
    return path


def bench_payload(
    result: FigureResult,
    label: str = "",
    scale_name: Optional[str] = None,
) -> Dict[str, object]:
    """The serialisable document for one figure result.

    Pass the *resolved* scale's name whenever the caller selected the
    scale itself (the CLI's ``--scale`` flag overrides the environment);
    the default falls back to :func:`default_scale`, which normalises
    the ``REPRO_SCALE`` value the same way the generators do.
    """
    if scale_name is None:
        scale_name = default_scale().name
    return {
        "figure_id": result.figure_id,
        "title": result.title,
        "label": label,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scale": scale_name,
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "columns": list(result.columns),
        "rows": list(result.rows),
        "notes": result.notes,
    }


def write_bench_result(
    result: FigureResult,
    label: str = "",
    directory: Optional[str] = None,
    scale_name: Optional[str] = None,
) -> Path:
    """Write ``BENCH_<figure_id>.json`` and return its path."""
    target = bench_dir(directory) / f"BENCH_{result.figure_id}.json"
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(
            bench_payload(result, label=label, scale_name=scale_name),
            handle,
            indent=2,
        )
        handle.write("\n")
    return target


def load_bench_result(path: str) -> Dict[str, object]:
    """Load a previously written ``BENCH_*.json`` document."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare_timing_rows(
    baseline_rows: Sequence[Dict[str, object]],
    current_rows: Sequence[Dict[str, object]],
    key_column: str = "clients",
    value_column: str = "correlation_time_s",
) -> List[Dict[str, float]]:
    """Per-point speedup of ``current`` over ``baseline``.

    Points are matched on ``key_column``; points present in only one of
    the two documents are skipped (sweeps may differ across scales).
    Returns rows of ``{key, baseline, current, speedup}``.
    """
    baseline_by_key = {row[key_column]: row for row in baseline_rows}
    comparison: List[Dict[str, float]] = []
    for row in current_rows:
        key = row.get(key_column)
        base = baseline_by_key.get(key)
        if base is None:
            continue
        old = float(base[value_column])
        new = float(row[value_column])
        comparison.append(
            {
                "key": float(key),
                "baseline": old,
                "current": new,
                "speedup": old / new if new > 0 else float("inf"),
            }
        )
    return comparison
