"""Experiment harness: per-figure generators, scales and report rendering."""

from .config import FULL, SCALES, SMALL, ExperimentScale, default_scale
from .figures import (
    ALL_FIGURES,
    FAULT_SCENARIOS,
    FigureResult,
    accuracy_table,
    baseline_comparison,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    figure17_diagnosis,
)
from .report import render_report, render_table, write_report
from .runner import SHARED_CACHE, RunCache, get_run

__all__ = [
    "ALL_FIGURES",
    "FAULT_SCENARIOS",
    "FULL",
    "FigureResult",
    "ExperimentScale",
    "RunCache",
    "SCALES",
    "SHARED_CACHE",
    "SMALL",
    "accuracy_table",
    "baseline_comparison",
    "default_scale",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "figure17",
    "figure17_diagnosis",
    "get_run",
    "render_report",
    "render_table",
    "write_report",
]
