"""Per-figure data generators for the paper's evaluation (Section 5).

Each function regenerates the data behind one table or figure of the
paper: it runs the required simulated experiments (memoised through
:mod:`repro.experiments.runner`), traces them with PreciseTracer and
returns a :class:`FigureResult` holding the same rows/series the paper
plots.  Absolute values differ from the 2009 testbed; the *shape* (who
wins, where the knees are, which latency share grows) is the reproduction
target, and EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

import gc
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..baselines.project5 import nesting_algorithm
from ..baselines.wap5 import Wap5Tracer
from ..core.activity import Activity, sort_key
from ..core.debugging import LatencyProfile
from ..core.interning import ActivityTable
from ..services.faults import FaultConfig
from ..services.noise import NoiseConfig
from ..pipeline import (
    BackendSpec,
    DiagnosisStage,
    Pipeline,
    ProfileStage,
    RunSource,
)
from ..sampling import SamplingSpec, compare_sampled_reports
from ..services.rubis.deployment import RubisConfig
from ..topology.library import ScenarioConfig, get_scenario, scenario_names
from .config import ExperimentScale, default_scale
from .runner import RunCache, get_run, stream_trace


@dataclass
class FigureResult:
    """The regenerated data of one table or figure."""

    figure_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def column(self, name: str) -> List[object]:
        """One column as a list (handy for assertions in tests/benches)."""
        return [row.get(name) for row in self.rows]

    def series(self, key_column: str, value_column: str) -> Dict[object, object]:
        return {row[key_column]: row[value_column] for row in self.rows}


def _base_config(scale: ExperimentScale, **overrides) -> RubisConfig:
    config = RubisConfig(
        stages=scale.stages,
        clock_skew=scale.clock_skew,
        seed=scale.seed,
    )
    return config.with_overrides(**overrides) if overrides else config


# ---------------------------------------------------------------------------
# Section 5.2 -- accuracy
# ---------------------------------------------------------------------------

def accuracy_table(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Path accuracy across workloads, client counts, windows, skews and noise.

    The paper reports 100 % accuracy (no false positives, no false
    negatives) for every combination it tried; this table re-checks the
    same claim on the simulated testbed.
    """
    scale = scale or default_scale()
    result = FigureResult(
        figure_id="sec5.2",
        title="Path accuracy of PreciseTracer (paper: 100% everywhere)",
        columns=[
            "workload",
            "clients",
            "window_s",
            "clock_skew_s",
            "noise",
            "requests",
            "accuracy",
            "false_positives",
            "false_negatives",
        ],
    )
    for workload in scale.accuracy_workloads:
        for clients in scale.accuracy_clients:
            for skew in scale.accuracy_skews:
                for noisy in (False, True):
                    noise = NoiseConfig.paper_noise(scale=0.3) if noisy else NoiseConfig.quiet()
                    config = _base_config(
                        scale,
                        workload=workload,
                        clients=clients,
                        clock_skew=skew,
                        noise=noise,
                    )
                    run = get_run(config, cache)
                    for window in scale.accuracy_windows:
                        trace = run.trace(window=window)
                        report = trace.accuracy(run.ground_truth)
                        result.rows.append(
                            {
                                "workload": workload,
                                "clients": clients,
                                "window_s": window,
                                "clock_skew_s": skew,
                                "noise": noisy,
                                "requests": report.total_requests,
                                "accuracy": report.accuracy,
                                "false_positives": report.false_positives,
                                "false_negatives": report.false_negatives,
                            }
                        )
    return result


# ---------------------------------------------------------------------------
# Fig. 8 / Fig. 9 -- requests vs clients, correlation time vs requests
# ---------------------------------------------------------------------------

def figure8(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Fig. 8: serviced requests vs. concurrent clients (Browse_Only).

    Linear growth until the service saturates (the paper's knee is around
    800 clients with ``MaxThreads = 40``)."""
    scale = scale or default_scale()
    result = FigureResult(
        figure_id="fig8",
        title="Requests vs. concurrent clients (Browse_Only, MaxThreads=40)",
        columns=["clients", "requests", "throughput_rps"],
    )
    for clients in scale.client_series:
        run = get_run(_base_config(scale, clients=clients), cache)
        result.rows.append(
            {
                "clients": clients,
                "requests": run.completed_requests,
                "throughput_rps": round(run.throughput, 2),
            }
        )
    return result


def figure9(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Fig. 9: correlation time vs. number of serviced requests.

    The paper observes linear scaling (window fixed at 10 ms)."""
    scale = scale or default_scale()
    result = FigureResult(
        figure_id="fig9",
        title="Correlation time vs. requests (window = 10 ms)",
        columns=["clients", "requests", "activities", "correlation_time_s"],
    )
    for clients in scale.client_series:
        run = get_run(_base_config(scale, clients=clients), cache)
        # Median of three timed traces per point: a single cold run mixes
        # interpreter warm-up into the smallest points, and the committed
        # baselines are medians too -- comparisons should be like-for-like.
        traces = [run.trace(window=0.010) for _ in range(3)]
        trace = sorted(traces, key=lambda t: t.correlation_time)[1]
        result.rows.append(
            {
                "clients": clients,
                "requests": trace.request_count,
                "activities": run.total_activities,
                "correlation_time_s": round(trace.correlation_time, 4),
            }
        )
    return result


# ---------------------------------------------------------------------------
# Fig. 10 / Fig. 11 -- sliding-window sweeps
# ---------------------------------------------------------------------------

def figure10(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Fig. 10: correlation time vs. sliding-window size per client count."""
    scale = scale or default_scale()
    result = FigureResult(
        figure_id="fig10",
        title="Correlation time vs. sliding time window",
        columns=["clients", "window_s", "correlation_time_s"],
    )
    for clients in scale.window_clients:
        run = get_run(_base_config(scale, clients=clients), cache)
        for window in scale.windows:
            trace = run.trace(window=window)
            result.rows.append(
                {
                    "clients": clients,
                    "window_s": window,
                    "correlation_time_s": round(trace.correlation_time, 4),
                }
            )
    return result


def figure11(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Fig. 11: Correlator memory consumption vs. sliding-window size."""
    scale = scale or default_scale()
    result = FigureResult(
        figure_id="fig11",
        title="Correlator memory vs. sliding time window",
        columns=["clients", "window_s", "peak_memory_mb", "peak_buffered_activities"],
    )
    for clients in scale.window_clients:
        run = get_run(_base_config(scale, clients=clients), cache)
        for window in scale.windows:
            trace = run.trace(window=window)
            result.rows.append(
                {
                    "clients": clients,
                    "window_s": window,
                    "peak_memory_mb": round(trace.peak_memory_bytes / 1e6, 3),
                    "peak_buffered_activities": trace.correlation.peak_buffered_activities,
                }
            )
    return result


# ---------------------------------------------------------------------------
# Fig. 12 / Fig. 13 -- instrumentation overhead
# ---------------------------------------------------------------------------

def _overhead_rows(
    scale: ExperimentScale, cache: Optional[RunCache]
) -> List[Dict[str, object]]:
    rows = []
    for clients in scale.client_series:
        enabled = get_run(_base_config(scale, clients=clients, tracing_enabled=True), cache)
        disabled = get_run(_base_config(scale, clients=clients, tracing_enabled=False), cache)
        rows.append(
            {
                "clients": clients,
                "throughput_disabled_rps": round(disabled.throughput, 2),
                "throughput_enabled_rps": round(enabled.throughput, 2),
                "response_time_disabled_ms": round(disabled.mean_response_time * 1000, 2),
                "response_time_enabled_ms": round(enabled.mean_response_time * 1000, 2),
            }
        )
    return rows


def figure12(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Fig. 12: throughput with tracing enabled vs. disabled.

    The paper reports a maximum throughput degradation of 3.7 %."""
    scale = scale or default_scale()
    rows = _overhead_rows(scale, cache)
    result = FigureResult(
        figure_id="fig12",
        title="Effect of tracing on throughput",
        columns=["clients", "throughput_disabled_rps", "throughput_enabled_rps", "overhead_pct"],
    )
    for row in rows:
        disabled = float(row["throughput_disabled_rps"]) or 1e-9
        overhead = 100.0 * (disabled - float(row["throughput_enabled_rps"])) / disabled
        result.rows.append(
            {
                "clients": row["clients"],
                "throughput_disabled_rps": row["throughput_disabled_rps"],
                "throughput_enabled_rps": row["throughput_enabled_rps"],
                "overhead_pct": round(overhead, 2),
            }
        )
    return result


def figure13(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Fig. 13: average response time with tracing enabled vs. disabled.

    The paper reports a maximum response-time increase below 30 %."""
    scale = scale or default_scale()
    rows = _overhead_rows(scale, cache)
    result = FigureResult(
        figure_id="fig13",
        title="Effect of tracing on average response time",
        columns=[
            "clients",
            "response_time_disabled_ms",
            "response_time_enabled_ms",
            "overhead_pct",
        ],
    )
    for row in rows:
        disabled = float(row["response_time_disabled_ms"]) or 1e-9
        overhead = 100.0 * (float(row["response_time_enabled_ms"]) - disabled) / disabled
        result.rows.append(
            {
                "clients": row["clients"],
                "response_time_disabled_ms": row["response_time_disabled_ms"],
                "response_time_enabled_ms": row["response_time_enabled_ms"],
                "overhead_pct": round(overhead, 2),
            }
        )
    return result


# ---------------------------------------------------------------------------
# Fig. 14 -- noise tolerance
# ---------------------------------------------------------------------------

def figure14(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Fig. 14: correlation time with and without coexisting noise traffic.

    Noise from ssh/rlogin is filtered by program name; mysql-client noise
    is discarded by ``is_noise``.  Accuracy stays at 100 % and the extra
    correlation time stays moderate."""
    scale = scale or default_scale()
    result = FigureResult(
        figure_id="fig14",
        title="Correlation time with and without noise (window = 2 ms)",
        columns=[
            "clients",
            "correlation_time_no_noise_s",
            "correlation_time_noise_s",
            "noise_activities",
            "accuracy_with_noise",
        ],
    )
    for clients in scale.noise_clients:
        quiet = get_run(_base_config(scale, clients=clients), cache)
        noisy = get_run(
            _base_config(scale, clients=clients, noise=NoiseConfig.paper_noise()), cache
        )
        quiet_trace = quiet.trace(window=scale.noise_window)
        noisy_trace = noisy.trace(window=scale.noise_window)
        accuracy = noisy_trace.accuracy(noisy.ground_truth).accuracy
        result.rows.append(
            {
                "clients": clients,
                "correlation_time_no_noise_s": round(quiet_trace.correlation_time, 4),
                "correlation_time_noise_s": round(noisy_trace.correlation_time, 4),
                "noise_activities": noisy.noise_activities,
                "accuracy_with_noise": round(accuracy, 4),
            }
        )
    return result


# ---------------------------------------------------------------------------
# Fig. 15 / Fig. 16 -- the MaxThreads misconfiguration
# ---------------------------------------------------------------------------

def figure15(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Fig. 15: latency percentages of the dominant pattern vs. client count.

    With ``MaxThreads = 40`` the share of the httpd->java interaction grows
    dramatically as the thread pool saturates (the paper's
    misconfiguration-shooting example, based on ViewItem)."""
    scale = scale or default_scale()
    segments = [
        "httpd2httpd",
        "httpd2java",
        "java2httpd",
        "java2java",
        "java2mysqld",
        "mysqld2java",
        "mysqld2mysqld",
    ]
    result = FigureResult(
        figure_id="fig15",
        title="Latency percentages of components (MaxThreads=40)",
        columns=["clients"] + segments,
    )
    for clients in scale.fig15_clients:
        run = get_run(_base_config(scale, clients=clients, max_threads=40), cache)
        trace = run.trace(window=scale.window)
        profile = trace.profile(f"clients={clients}")
        percentages = profile.percentages
        row: Dict[str, object] = {"clients": clients}
        for segment in segments:
            row[segment] = round(percentages.get(segment, 0.0), 1)
        result.rows.append(row)
    return result


def figure16(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Fig. 16: throughput and response time for MaxThreads 40 vs. 250.

    Raising MaxThreads removes the thread-pool bottleneck; beyond ~900
    clients a hardware/database limit becomes the new bottleneck."""
    scale = scale or default_scale()
    result = FigureResult(
        figure_id="fig16",
        title="Performance for different MaxThreads",
        columns=["clients", "tp_mt40_rps", "tp_mt250_rps", "rt_mt40_ms", "rt_mt250_ms"],
    )
    for clients in scale.client_series:
        run40 = get_run(_base_config(scale, clients=clients, max_threads=40), cache)
        run250 = get_run(_base_config(scale, clients=clients, max_threads=250), cache)
        result.rows.append(
            {
                "clients": clients,
                "tp_mt40_rps": round(run40.throughput, 2),
                "tp_mt250_rps": round(run250.throughput, 2),
                "rt_mt40_ms": round(run40.mean_response_time * 1000, 2),
                "rt_mt250_ms": round(run250.mean_response_time * 1000, 2),
            }
        )
    return result


# ---------------------------------------------------------------------------
# Fig. 17 -- injected performance problems
# ---------------------------------------------------------------------------

FAULT_SCENARIOS: Dict[str, FaultConfig] = {
    "normal": FaultConfig.none(),
    "EJB_Delay": FaultConfig.ejb_delay_case(),
    "Database_Lock": FaultConfig.database_lock_case(),
    "EJB_Network": FaultConfig.ejb_network_case(),
}


def figure17(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Fig. 17: latency percentages for the normal case and three faults."""
    scale = scale or default_scale()
    segments = [
        "httpd2httpd",
        "httpd2java",
        "java2httpd",
        "java2java",
        "java2mysqld",
        "mysqld2java",
        "mysqld2mysqld",
    ]
    result = FigureResult(
        figure_id="fig17",
        title="Latency percentages for injected performance problems",
        columns=["scenario"] + segments + ["mean_response_time_ms"],
    )
    for name, faults in FAULT_SCENARIOS.items():
        config = _base_config(
            scale,
            clients=scale.fault_clients,
            workload="default",
            faults=faults,
        )
        run = get_run(config, cache)
        trace = run.trace(window=scale.window)
        profile = trace.profile(name)
        percentages = profile.percentages
        row: Dict[str, object] = {"scenario": name}
        for segment in segments:
            row[segment] = round(percentages.get(segment, 0.0), 1)
        row["mean_response_time_ms"] = round(run.mean_response_time * 1000, 1)
        result.rows.append(row)
    return result


def figure17_diagnosis(
    scale: Optional[ExperimentScale] = None,
    cache: Optional[RunCache] = None,
    threshold: float = 5.0,
) -> Dict[str, List[str]]:
    """Which components PreciseTracer implicates for each injected fault.

    A companion to Fig. 17: runs each fault scenario through the pipeline
    facade (batch backend + :class:`~repro.pipeline.ProfileStage` +
    :class:`~repro.pipeline.DiagnosisStage` against the healthy profile)
    and returns the suspected components per scenario (the paper's
    conclusions are JBoss, MySQL and the JBoss node's network
    respectively)."""
    scale = scale or default_scale()
    sessions = {}
    for name, faults in FAULT_SCENARIOS.items():
        config = _base_config(
            scale, clients=scale.fault_clients, workload="default", faults=faults
        )
        pipeline = Pipeline(
            source=RunSource(config=config, cache=cache),
            backend=BackendSpec.batch(window=scale.window),
            stages=[ProfileStage(name)],
        )
        sessions[name] = pipeline.run()
    reference: LatencyProfile = sessions["normal"].analyses["profile"]
    suspects: Dict[str, List[str]] = {}
    for name, session in sessions.items():
        if name == "normal":
            continue
        stage = DiagnosisStage(reference, threshold=threshold, label=name)
        suspects[name] = stage.run(session).suspected_components()
    return suspects


# ---------------------------------------------------------------------------
# Extra: Fig. 11 / Fig. 12 rerun in streaming mode
# ---------------------------------------------------------------------------

#: Eviction horizon used by the streaming reruns, in seconds.  Far above
#: any simulated response time, so accuracy is untouched; small enough to
#: demonstrate bounded state on long runs.
STREAMING_HORIZON = 5.0


def figure11_streaming(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Fig. 11 rerun in streaming mode: batch vs. incremental memory.

    The batch correlator's working set holds the whole trace plus every
    index-map entry it ever created; the incremental correlator keeps only
    the in-window ranker buffer and the watermark-bounded engine state, so
    its peak live-entry count stays roughly flat as the trace grows."""
    scale = scale or default_scale()
    result = FigureResult(
        figure_id="fig11s",
        title="Correlator memory: batch vs. streaming (watermark eviction)",
        columns=[
            "clients",
            "window_s",
            "batch_peak_entries",
            "stream_peak_entries",
            "stream_evictions",
            "same_request_count",
        ],
        notes=f"streaming horizon = {STREAMING_HORIZON} s",
    )
    for clients in scale.window_clients:
        run = get_run(_base_config(scale, clients=clients), cache)
        for window in scale.windows:
            batch = run.trace(window=window)
            stream = stream_trace(run, window=window, horizon=STREAMING_HORIZON)
            stats = stream.correlation.engine_stats
            evictions = (
                stats.evicted_mmap_entries
                + stats.evicted_cmap_entries
                + stats.evicted_open_cags
            )
            result.rows.append(
                {
                    "clients": clients,
                    "window_s": window,
                    "batch_peak_entries": batch.correlation.peak_buffered_activities
                    + batch.correlation.peak_state_entries,
                    "stream_peak_entries": stream.correlation.peak_buffered_activities
                    + stream.correlation.peak_state_entries,
                    "stream_evictions": evictions,
                    # count equality only -- full CAG identity is asserted
                    # structurally by tests/test_stream.py
                    "same_request_count": stream.request_count == batch.request_count,
                }
            )
    return result


def figure12_streaming(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Fig. 12 companion: correlation throughput of the three drivers.

    Where Fig. 12 measures the *instrumentation* overhead on the traced
    service, this table measures the *analysis* side: how many logged
    activities per second the batch, streaming and sharded correlators
    sustain, i.e. how much live traffic an online deployment could keep
    up with."""
    scale = scale or default_scale()
    result = FigureResult(
        figure_id="fig12s",
        title="Correlation throughput: batch vs. streaming vs. sharded",
        columns=[
            "clients",
            "activities",
            "batch_kact_s",
            "stream_kact_s",
            "sharded_kact_s",
            "shards",
        ],
    )

    def _rate(activities: int, seconds: float) -> float:
        return round(activities / max(seconds, 1e-9) / 1e3, 1)

    for clients in scale.client_series:
        run = get_run(_base_config(scale, clients=clients), cache)
        batch = run.trace(window=scale.window)
        stream = stream_trace(run, window=scale.window, horizon=STREAMING_HORIZON)
        sharder = BackendSpec.sharded(window=scale.window).make_correlator()
        sharded = sharder.correlate(run.activities())
        total = run.total_activities
        result.rows.append(
            {
                "clients": clients,
                "activities": total,
                "batch_kact_s": _rate(total, batch.correlation_time),
                "stream_kact_s": _rate(total, stream.correlation_time),
                "sharded_kact_s": _rate(total, sharded.correlation_time),
                "shards": len(sharder.last_shard_sizes),
            }
        )
    return result


# ---------------------------------------------------------------------------
# Extra: accuracy across the scenario library
# ---------------------------------------------------------------------------

def scenario_accuracy(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Path accuracy across the whole scenario library.

    Not a figure of the paper -- the paper validates on one deployment
    (Fig. 7) -- but its natural generalisation: the same 100 %-accuracy
    claim re-checked on every topology of the library (deep chains,
    fan-out/join, cache-aside, replication behind a load balancer) under
    each scenario's own workload shape (closed, open-loop Poisson,
    bursty)."""
    scale = scale or default_scale()
    result = FigureResult(
        figure_id="scenarios",
        title="Path accuracy across the scenario library (window = 10 ms)",
        columns=[
            "scenario",
            "workload",
            "tiers",
            "requests",
            "activities",
            "patterns",
            "accuracy",
            "false_positives",
            "false_negatives",
        ],
    )
    for name in scenario_names():
        scenario = get_scenario(name)
        config = ScenarioConfig(
            scenario=name,
            seed=scale.seed,
            stages=scale.stages,
            clock_skew=scale.clock_skew,
        )
        run = get_run(config, cache)
        trace = run.trace(window=scale.window)
        report = trace.accuracy(run.ground_truth)
        result.rows.append(
            {
                "scenario": name,
                "workload": run.workload.kind,
                "tiers": sum(tier.replicas for tier in scenario.topology.tiers),
                "requests": report.total_requests,
                "activities": run.total_activities,
                "patterns": len(trace.patterns()),
                "accuracy": report.accuracy,
                "false_positives": report.false_positives,
                "false_negatives": report.false_negatives,
            }
        )
    return result


# ---------------------------------------------------------------------------
# Extra: overhead control -- accuracy and cost vs. sampling rate
# ---------------------------------------------------------------------------

def figure_sampling(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Overhead control: what request sampling costs and what it buys.

    Sweeps the uniform sampling rate across the scenario library and
    reports, per (scenario, rate) point, the realised sample fraction,
    the correlation time and engine state relative to the full trace,
    and the analytical fidelity of the sampled ranked latency report
    (pattern coverage, dominant-profile drift -- see
    :mod:`repro.sampling.accuracy`).  Not a figure of the paper: the
    2009 system bounds overhead by splitting correlation across
    machines; per-request sampling is the complementary axis its
    *precise* (non-probabilistic) correlation uniquely enables.

    Rate 1.0 is included as the in-band baseline: every metric there
    must read "identical to full", which doubles as a self-check.
    """
    scale = scale or default_scale()
    result = FigureResult(
        figure_id="sampling",
        title="Request sampling: accuracy and correlation cost vs. rate",
        columns=[
            "scenario",
            "rate",
            "requests_full",
            "requests_sampled",
            "sample_fraction",
            "pattern_coverage",
            "profile_drift_pp",
            "correlation_time_s",
            "time_vs_full",
            "state_vs_full",
        ],
        notes=(
            "uniform root-hash sampling, batch backend; time_vs_full and "
            "state_vs_full are ratios against the same trace unsampled"
        ),
    )
    for name in scale.sampling_scenarios:
        config = ScenarioConfig(
            scenario=name,
            seed=scale.seed,
            stages=scale.stages,
            clock_skew=scale.clock_skew,
        )
        run = get_run(config, cache)
        source = RunSource(run=run)
        full = BackendSpec.batch(window=scale.window).correlate(source.activities())
        full_time = max(full.correlation_time, 1e-9)
        full_state = max(full.peak_state_entries, 1)
        for rate in scale.sampling_rates:
            spec = BackendSpec.batch(
                window=scale.window, sampling=SamplingSpec.uniform(rate)
            )
            sampled = spec.correlate(source.activities())
            fidelity = compare_sampled_reports(full.cags, sampled.cags)
            drift = fidelity.dominant_profile_distance
            result.rows.append(
                {
                    "scenario": name,
                    "rate": rate,
                    "requests_full": len(full.cags),
                    "requests_sampled": len(sampled.cags),
                    "sample_fraction": round(fidelity.sample_fraction, 4),
                    "pattern_coverage": round(fidelity.pattern_coverage, 4),
                    "profile_drift_pp": None if drift is None else round(drift, 3),
                    "correlation_time_s": round(sampled.correlation_time, 4),
                    "time_vs_full": round(sampled.correlation_time / full_time, 3),
                    "state_vs_full": round(
                        sampled.peak_state_entries / full_state, 3
                    ),
                }
            )
    return result


def figure_fuzz(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Differential fuzzing: generated scenarios vs the invariant stack.

    Not a figure of the paper but of the reproduction's own test rig:
    ``scale.fuzz_seeds`` consecutive generated scenarios
    (:mod:`repro.topology.generator`) are each driven through the full
    invariant stack (:mod:`repro.fuzz`), and the rows record what each
    seed exercised and what it cost -- so the BENCH trajectory shows
    both the shapes covered and the seconds-per-seed trend over time.
    The ``cache`` parameter is accepted for generator-signature
    uniformity; fuzz cases are never memoised (each seed is its own
    run).
    """
    from ..fuzz import run_fuzz

    scale = scale or default_scale()
    result = FigureResult(
        figure_id="fuzz",
        title="Differential fuzzing: invariant coverage per generated seed",
        columns=[
            "seed",
            "tiers",
            "patterns",
            "workload",
            "replicated",
            "request_types",
            "activities",
            "requests",
            "spliced_receives",
            "violations",
            "seconds",
        ],
    )
    report = run_fuzz(
        seeds=scale.fuzz_seeds,
        window=scale.window,
        sampling_rate=scale.fuzz_sampling_rate,
    )
    for case in report.cases:
        result.rows.append(
            {
                "seed": case.seed,
                "tiers": case.shape["tiers"],
                "patterns": "+".join(sorted(case.shape["patterns"])),
                "workload": case.shape["workload"],
                "replicated": case.shape["replicated"],
                "request_types": case.shape["request_types"],
                "activities": case.activities,
                "requests": case.requests,
                "spliced_receives": case.spliced_receives,
                "violations": len(case.violations),
                "seconds": round(case.elapsed, 4),
            }
        )
    coverage = report.coverage()
    result.notes = (
        f"{report.seeds_run} seeds, {len(report.failures)} failing, "
        f"{report.seconds_per_seed():.2f} s/seed; covered "
        f"patterns={'/'.join(coverage['patterns'])} "
        f"workloads={'/'.join(coverage['workloads'])} "
        f"tiers={coverage['tiers_min']}..{coverage['tiers_max']}"
    )
    return result


# ---------------------------------------------------------------------------
# Extra: probabilistic-baseline comparison
# ---------------------------------------------------------------------------

def baseline_comparison(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """PreciseTracer vs. WAP5-style and Project5-style baselines.

    Not a figure of the paper, but a quantitative version of its Section 6
    argument: probabilistic correlation loses precision as concurrency
    rises, while PreciseTracer stays at 100 %."""
    scale = scale or default_scale()
    result = FigureResult(
        figure_id="baselines",
        title="Path accuracy: PreciseTracer vs. probabilistic baselines",
        columns=["clients", "precisetracer", "wap5_style", "project5_style"],
    )
    wap5 = Wap5Tracer()
    for clients in scale.baseline_clients:
        run = get_run(_base_config(scale, clients=clients), cache)
        activities = run.activities()
        precise = run.trace(window=scale.window).accuracy(run.ground_truth).accuracy
        wap5_accuracy = wap5.path_accuracy(activities, run.ground_truth)
        nesting = nesting_algorithm(activities)
        project5_accuracy = nesting.path_accuracy(run.ground_truth)
        result.rows.append(
            {
                "clients": clients,
                "precisetracer": round(precise, 4),
                "wap5_style": round(wap5_accuracy, 4),
                "project5_style": round(project5_accuracy, 4),
            }
        )
    return result


# ---------------------------------------------------------------------------
# Columnar core -- object list vs ActivityTable memory
# ---------------------------------------------------------------------------

def _count_live_activities() -> int:
    """Number of :class:`Activity` instances currently alive (gc scan)."""
    return sum(1 for obj in gc.get_objects() if isinstance(obj, Activity))


def figure_interning(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Memory of the two activity representations, per client count.

    For each trace the classified activities are held first as a plain
    Python list of :class:`Activity` objects, then packed into a columnar
    :class:`~repro.core.interning.ActivityTable` (the object list is
    released).  ``tracemalloc`` reports the bytes each representation
    retains; the gc scan reports how many ``Activity`` instances stay
    alive -- the table keeps none until a row is materialised at the
    CAG/export boundary, which is the point of the columnar core.
    """
    scale = scale or default_scale()
    result = FigureResult(
        figure_id="interning",
        title="Activity storage: object list vs columnar ActivityTable",
        columns=[
            "clients",
            "activities",
            "object_kb",
            "object_bytes_per_activity",
            "object_live_activities",
            "columnar_kb",
            "columnar_bytes_per_activity",
            "columnar_live_activities",
            "retained_ratio",
        ],
        notes=(
            "tracemalloc retained bytes of each representation built from "
            "the same trace; live counts are Activity instances alive after "
            "the build (gc scan)."
        ),
    )
    for clients in scale.window_clients:
        run = get_run(_base_config(scale, clients=clients), cache)
        # collect first: garbage left over from earlier figures would
        # inflate the baseline and undercount the object list's share
        gc.collect()
        baseline_live = _count_live_activities()
        tracemalloc.start()
        objects = run.activities()
        gc.collect()
        object_bytes, _ = tracemalloc.get_traced_memory()
        object_live = _count_live_activities() - baseline_live
        table = ActivityTable.from_activities(objects)
        count = len(objects)
        del objects
        gc.collect()
        columnar_bytes, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        columnar_live = _count_live_activities() - baseline_live
        result.rows.append(
            {
                "clients": clients,
                "activities": count,
                "object_kb": round(object_bytes / 1024, 1),
                "object_bytes_per_activity": round(object_bytes / count, 1),
                "object_live_activities": object_live,
                "columnar_kb": round(columnar_bytes / 1024, 1),
                "columnar_bytes_per_activity": round(columnar_bytes / count, 1),
                "columnar_live_activities": columnar_live,
                "retained_ratio": round(object_bytes / columnar_bytes, 2),
            }
        )
        del table
    return result


# ---------------------------------------------------------------------------
# Scale-out -- throughput vs shard count vs executor vs schedule
# ---------------------------------------------------------------------------

def _scaling_trace() -> ActivityTable:
    """A deliberately skewed composite trace for the scale-out figure.

    Four library scenarios at distinct seeds, concatenated: their node
    names never overlap, so each contributes its own causally-closed
    component(s), and the mix is heavy-tailed by construction -- the
    fan-out aggregator and the five-tier chain each collapse into one
    giant component, next to small per-scenario ones.  That skew is
    exactly what separates the schedules: round-robin can stack the two
    heavies on one shard while cost-aware packing cannot.

    Scenario defaults (stages, runtime) are used on purpose: scaling the
    runtime or the client counts merges or splinters components and
    destroys the pinned skew shape.
    """
    from ..topology.library import run_scenario

    parts = [
        run_scenario("fanout_aggregator", seed=11, clients=60),
        run_scenario("replicated_lb", seed=7, clients=40),
        run_scenario("five_tier_chain", seed=3, clients=50),
        run_scenario("rubis", seed=6, clients=30),
    ]
    activities: List[Activity] = []
    for part in parts:
        activities.extend(part.activities())
    activities.sort(key=sort_key)
    return ActivityTable.from_activities(activities)


def figure_scaling(
    scale: Optional[ExperimentScale] = None, cache: Optional[RunCache] = None
) -> FigureResult:
    """Scale-out: aggregate throughput vs shards, executor and schedule.

    Each row correlates the same skewed composite trace through
    :class:`~repro.stream.ShardedCorrelator` at one (shards, executor,
    schedule) point.  ``correlation_time_s`` is the *makespan* -- the
    busiest worker slot's self-measured busy time -- which is what the
    wall clock converges to with one core per slot; reporting it (rather
    than this machine's wall clock) keeps the figure meaningful on
    oversubscribed CI runners.  ``wall_s`` records the actual wall clock
    alongside.  The ``case`` column is the composite key the CI gate
    compares against the committed baseline.  ``cache`` is accepted for
    generator-signature uniformity (the composite trace is built fresh).
    """
    scale = scale or default_scale()
    result = FigureResult(
        figure_id="scaling",
        title="Sharded scale-out: throughput vs shards, executor and schedule",
        columns=[
            "case",
            "shards",
            "executor",
            "schedule",
            "activities",
            "components",
            "steals",
            "correlation_time_s",
            "wall_s",
            "throughput_kact_s",
        ],
        notes=(
            "skewed 4-scenario composite trace; correlation_time_s is the "
            "busiest slot's busy time (makespan), throughput is "
            "activities/makespan"
        ),
    )
    import time as _time

    from ..stream import ShardedCorrelator, partition_components

    table = _scaling_trace()
    components = len(partition_components(table.iter_fresh()))
    for shards in scale.scaling_shard_counts:
        for executor in scale.scaling_executors:
            for schedule in scale.scaling_schedules:
                correlator = ShardedCorrelator(
                    window=scale.window,
                    max_shards=shards,
                    executor=executor,
                    schedule=schedule,
                )
                wall_start = _time.perf_counter()
                outcome = correlator.correlate(table.iter_fresh())
                wall = _time.perf_counter() - wall_start
                makespan = max(correlator.last_makespan_s(), 1e-9)
                result.rows.append(
                    {
                        "case": f"{shards}x-{executor}-{schedule}",
                        "shards": shards,
                        "executor": executor,
                        "schedule": schedule,
                        "activities": outcome.total_activities,
                        "components": components,
                        "steals": correlator.last_steals,
                        "correlation_time_s": round(makespan, 4),
                        "wall_s": round(wall, 4),
                        "throughput_kact_s": round(
                            outcome.total_activities / makespan / 1e3, 1
                        ),
                    }
                )
    return result


#: Every generator, keyed by figure id (used by the CLI and the docs).
ALL_FIGURES = {
    "sec5.2": accuracy_table,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "fig11": figure11,
    "fig11s": figure11_streaming,
    "fig12": figure12,
    "fig12s": figure12_streaming,
    "fig13": figure13,
    "fig14": figure14,
    "fig15": figure15,
    "fig16": figure16,
    "fig17": figure17,
    "baselines": baseline_comparison,
    "scenarios": scenario_accuracy,
    "sampling": figure_sampling,
    "fuzz": figure_fuzz,
    "interning": figure_interning,
    "scaling": figure_scaling,
}
