"""Shared run infrastructure for the figure generators.

Several figures reuse the same simulated runs (e.g. Fig. 8 and Fig. 9 both
need the Browse_Only client sweep, Fig. 10 and Fig. 11 both need the
window-sweep runs).  :class:`RunCache` memoises completed runs keyed by
their configuration so a full figure suite performs each distinct
simulation exactly once per process.

:func:`stream_trace` / :func:`sharded_trace` are the streaming and
sharded counterparts of :meth:`RubisRunResult.trace`; since the pipeline
refactor they are thin wrappers over
:class:`~repro.pipeline.BackendSpec` -- kept because the figure
generators read naturally with run-centric helpers, but every knob and
semantics detail lives in the backend spec now.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.tracer import TraceResult
from ..pipeline import BackendSpec
from ..services.rubis.deployment import RubisRunResult, run_rubis
from ..topology.library import ScenarioConfig, run_scenario


def config_key(config) -> str:
    """A stable identity for a run configuration.

    ``RubisConfig`` and ``ScenarioConfig`` are trees of frozen/simple
    dataclasses, so their reprs are deterministic and complete (and the
    class name disambiguates the two); using the repr as the cache key
    avoids writing a bespoke hash for every nested field.
    """
    return f"{type(config).__name__}:{config!r}"


def execute_config(config) -> RubisRunResult:
    """Run whichever simulation the config describes (RUBiS or scenario)."""
    if isinstance(config, ScenarioConfig):
        return run_scenario(config)
    return run_rubis(config)


@dataclass
class RunCache:
    """Memoises simulation runs by configuration."""

    runs: Dict[str, RubisRunResult] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def get(self, config) -> RubisRunResult:
        key = config_key(config)
        cached = self.runs.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = execute_config(config)
        self.runs[key] = result
        return result

    def clear(self) -> None:
        self.runs.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.runs)


#: Cache shared by every figure generator in this process (benchmarks and
#: the CLI both profit from reuse across figures).
SHARED_CACHE = RunCache()


def get_run(config, cache: Optional[RunCache] = None) -> RubisRunResult:
    """Fetch (or execute) the run for ``config`` using the shared cache.

    Accepts a :class:`~repro.services.rubis.deployment.RubisConfig` or a
    :class:`~repro.topology.library.ScenarioConfig`; both cache under
    their repr.
    """
    target = cache if cache is not None else SHARED_CACHE
    return target.get(config)


def trace_run(
    run: RubisRunResult,
    backend: BackendSpec,
    store=None,
    store_run_id: Optional[str] = None,
    scenario: Optional[str] = None,
) -> TraceResult:
    """Trace a completed run through any pipeline backend.

    The run's logs are re-classified into fresh activities (the engine
    mutates byte counters in place, so two passes must never share
    ``Activity`` objects).  Returns the same
    :class:`~repro.core.tracer.TraceResult` as :meth:`RubisRunResult.trace`,
    so every analysis helper (patterns, profiles, accuracy) applies
    unchanged regardless of the driver.

    ``store`` (a path or an open :class:`~repro.store.TraceStore`)
    additionally lands the trace in a persistent store under
    ``store_run_id`` -- how experiment sweeps accumulate a queryable
    history instead of discarding each trace with the process.
    """
    trace = backend.trace(run.activities())
    if store is not None:
        from ..store import record_trace

        record_trace(
            store,
            trace,
            run_id=store_run_id,
            scenario=scenario,
            source=f"experiment run ({run.workload.kind})",
            backend=backend,
        )
    return trace


def stream_trace(
    run: RubisRunResult,
    window: float = 0.010,
    horizon: Optional[float] = None,
    chunk_size: int = 256,
    skew_bound: Optional[float] = None,
) -> TraceResult:
    """Trace a completed run through the *streaming* backend.

    Thin wrapper over ``BackendSpec.streaming``; the default
    ``skew_bound`` is derived from the run's own configured clock skew.
    """
    if skew_bound is None:
        skew_bound = max(run.clock_skew * 2.0, 1e-4)
    return trace_run(
        run,
        BackendSpec.streaming(
            window=window,
            horizon=horizon,
            skew_bound=skew_bound,
            chunk_size=chunk_size,
        ),
    )


def sharded_trace(
    run: RubisRunResult,
    window: float = 0.010,
    max_workers: Optional[int] = None,
    max_shards: Optional[int] = None,
    executor: str = "thread",
) -> TraceResult:
    """Trace a completed run through the sharded parallel backend."""
    return trace_run(
        run,
        BackendSpec.sharded(
            window=window,
            max_workers=max_workers,
            max_shards=max_shards,
            executor=executor,
        ),
    )
