"""Shared run infrastructure for the figure generators.

Several figures reuse the same simulated runs (e.g. Fig. 8 and Fig. 9 both
need the Browse_Only client sweep, Fig. 10 and Fig. 11 both need the
window-sweep runs).  :class:`RunCache` memoises completed runs keyed by
their configuration so a full figure suite performs each distinct
simulation exactly once per process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..services.rubis.deployment import RubisConfig, RubisRunResult, run_rubis


def config_key(config: RubisConfig) -> str:
    """A stable identity for a run configuration.

    ``RubisConfig`` is a tree of frozen/simple dataclasses, so its repr is
    deterministic and complete; using it as the cache key avoids writing a
    bespoke hash for every nested field.
    """
    return repr(config)


@dataclass
class RunCache:
    """Memoises simulation runs by configuration."""

    runs: Dict[str, RubisRunResult] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def get(self, config: RubisConfig) -> RubisRunResult:
        key = config_key(config)
        cached = self.runs.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = run_rubis(config)
        self.runs[key] = result
        return result

    def clear(self) -> None:
        self.runs.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.runs)


#: Cache shared by every figure generator in this process (benchmarks and
#: the CLI both profit from reuse across figures).
SHARED_CACHE = RunCache()


def get_run(config: RubisConfig, cache: Optional[RunCache] = None) -> RubisRunResult:
    """Fetch (or execute) the run for ``config`` using the shared cache."""
    target = cache if cache is not None else SHARED_CACHE
    return target.get(config)
