"""Plain-text rendering of figure results.

The paper's evaluation is a set of plots; in a terminal-only reproduction
the same data is rendered as aligned ASCII tables, one per figure, plus a
combined report used by ``python -m repro.cli report``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .figures import FigureResult


def format_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(result: FigureResult) -> str:
    """Render one figure's rows as an aligned ASCII table."""
    header = list(result.columns)
    body: List[List[str]] = [
        [format_value(row.get(column, "")) for column in header] for row in result.rows
    ]
    widths = [len(column) for column in header]
    for line in body:
        for index, cell in enumerate(line):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = [
        f"[{result.figure_id}] {result.title}",
        render_line(header),
        render_line(["-" * width for width in widths]),
    ]
    lines.extend(render_line(line) for line in body)
    if result.notes:
        lines.append(f"  note: {result.notes}")
    return "\n".join(lines)


def render_report(results: Iterable[FigureResult]) -> str:
    """Render several figures into one report document."""
    sections = [render_table(result) for result in results]
    return "\n\n".join(sections) + "\n"


def write_report(results: Iterable[FigureResult], path: str) -> str:
    """Write the combined report to ``path`` and return the text."""
    text = render_report(results)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text
