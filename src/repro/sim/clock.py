"""Per-node clocks with skew and drift.

PreciseTracer explicitly does not require synchronised clocks: every
activity carries the *local* timestamp of the node it was observed on, and
the algorithm tolerates arbitrary (bounded) skew.  The accuracy
experiments of Section 5.2 vary the skew from 1 ms to 500 ms; this module
provides the knob.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class NodeClock:
    """Maps global simulated time to a node's local wall clock.

    ``local = global + skew + drift * global``.

    ``skew`` is a constant offset in seconds (positive or negative);
    ``drift`` is a dimensionless rate error (e.g. ``50e-6`` for 50 ppm).
    """

    skew: float = 0.0
    drift: float = 0.0

    def local_time(self, global_time: float) -> float:
        """Local reading of this node's clock at ``global_time``."""
        return global_time + self.skew + self.drift * global_time

    def global_time(self, local_time: float) -> float:
        """Inverse mapping (used only by tests)."""
        return (local_time - self.skew) / (1.0 + self.drift)


def spread_skews(node_names, max_skew: float, seed: int = 0):
    """Assign deterministic skews in ``[-max_skew, +max_skew]`` to nodes.

    A convenience for experiments: the first node gets ``0`` (reference
    clock), the others get alternating positive/negative offsets scaled to
    fill the range, so any two nodes can disagree by up to ``2 * max_skew``.
    """
    names = list(node_names)
    clocks = {}
    for index, name in enumerate(names):
        if index == 0 or max_skew == 0:
            clocks[name] = NodeClock(skew=0.0)
            continue
        sign = 1.0 if index % 2 == 1 else -1.0
        magnitude = max_skew * index / max(1, len(names) - 1)
        clocks[name] = NodeClock(skew=sign * magnitude)
    return clocks
