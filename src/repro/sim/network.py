"""Simulated TCP connections, message segmentation and the network fabric.

The network model is intentionally simple -- fixed per-hop latency plus a
bandwidth term -- because the tracing algorithm only cares about *which*
kernel send/receive calls happen in *which* context and in what causal
order.  What the model does reproduce carefully is the aspect Section 4.2
is built around: one logical message may be split into several
``tcp_sendmsg`` calls at the sender and several ``tcp_recvmsg`` calls at
the receiver, with independent boundaries (Fig. 4), and the receiver's
calls happen only when the receiving worker thread actually reads the
data (so thread-pool queueing shows up as interaction latency, which is
what makes the MaxThreads misconfiguration of Section 5.4 visible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from .kernel import Environment, Event, Store
from .node import ExecutionEntity, Node


@dataclass(frozen=True)
class SegmentationPolicy:
    """How logical messages map onto kernel send/receive calls.

    ``sender_max_bytes`` bounds the size of one ``tcp_sendmsg`` call,
    ``receiver_max_bytes`` bounds one ``tcp_recvmsg`` call.  The two are
    independent so sender and receiver part counts differ, exercising the
    byte-count merging of the correlation engine.
    """

    sender_max_bytes: int = 8192
    receiver_max_bytes: int = 6144

    def split(self, size: int, max_bytes: int) -> List[int]:
        if size <= 0:
            return [0]
        if max_bytes <= 0:
            return [size]
        parts: List[int] = []
        remaining = size
        while remaining > 0:
            chunk = min(remaining, max_bytes)
            parts.append(chunk)
            remaining -= chunk
        return parts

    def sender_parts(self, size: int) -> List[int]:
        return self.split(size, self.sender_max_bytes)

    def receiver_parts(self, size: int) -> List[int]:
        return self.split(size, self.receiver_max_bytes)


@dataclass
class NetworkMessage:
    """One logical message in flight or sitting in a socket buffer."""

    size: int
    request_id: Optional[int] = None
    payload: Any = None
    sent_at: float = 0.0
    delivered_at: float = 0.0


class NetworkFabric:
    """Latency/bandwidth model of the cluster interconnect.

    Per-node overrides allow degrading a single machine's NIC, which is
    how the EJB_Network fault of Section 5.4.2 (100 Mbps -> 10 Mbps on the
    JBoss node) is injected.
    """

    def __init__(
        self,
        env: Environment,
        base_latency: float = 200e-6,
        bandwidth_bytes_per_s: float = 100e6 / 8.0,
    ) -> None:
        self.env = env
        self.base_latency = base_latency
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self._node_extra_latency: Dict[str, float] = {}
        self._node_bandwidth: Dict[str, float] = {}

    def degrade_node(
        self,
        hostname: str,
        extra_latency: float = 0.0,
        bandwidth_bytes_per_s: Optional[float] = None,
    ) -> None:
        """Degrade every link touching ``hostname`` (slow NIC, bad cable)."""
        if extra_latency:
            self._node_extra_latency[hostname] = extra_latency
        if bandwidth_bytes_per_s is not None:
            self._node_bandwidth[hostname] = bandwidth_bytes_per_s

    def transfer_delay(self, src: Node, dst: Node, size: int) -> float:
        """End-to-end delay of ``size`` bytes from ``src`` to ``dst``."""
        if src is dst:
            return 5e-6  # loopback
        latency = (
            self.base_latency
            + self._node_extra_latency.get(src.hostname, 0.0)
            + self._node_extra_latency.get(dst.hostname, 0.0)
        )
        bandwidth = min(
            self._node_bandwidth.get(src.hostname, self.bandwidth_bytes_per_s),
            self._node_bandwidth.get(dst.hostname, self.bandwidth_bytes_per_s),
        )
        return latency + size / bandwidth


class Endpoint:
    """One side of a TCP connection."""

    def __init__(
        self,
        connection: "Connection",
        node: Node,
        ip: str,
        port: int,
    ) -> None:
        self.connection = connection
        self.node = node
        self.ip = ip
        self.port = port
        self.inbox: Store = Store(connection.env)
        self.peer: "Endpoint" = None  # type: ignore[assignment]  # wired by Connection

    # -- sending -----------------------------------------------------------------

    def send(
        self,
        entity: Optional[ExecutionEntity],
        size: int,
        request_id: Optional[int] = None,
        payload: Any = None,
    ) -> NetworkMessage:
        """Send one logical message to the peer.

        If the local node carries a TCP_TRACE probe and ``entity`` is
        given, the kernel send calls are logged (possibly split into
        several parts).  Delivery into the peer's socket buffer happens
        after the fabric delay; the peer's *reads* are logged separately
        when it actually consumes the data.
        """
        env = self.connection.env
        fabric = self.connection.fabric
        if entity is not None and self.node.probe is not None:
            for part in self.connection.segmentation.sender_parts(size):
                self.node.probe.log_send(
                    entity,
                    src_ip=self.ip,
                    src_port=self.port,
                    dst_ip=self.peer.ip,
                    dst_port=self.peer.port,
                    size=part,
                    request_id=request_id,
                )
        message = NetworkMessage(
            size=size, request_id=request_id, payload=payload, sent_at=env.now
        )
        delay = fabric.transfer_delay(self.node, self.peer.node, size)

        def deliver(_value: Any) -> None:
            message.delivered_at = env.now
            self.peer.inbox.put(message)

        env.schedule(deliver, delay=delay)
        return message

    # -- receiving ------------------------------------------------------------------

    def wait_data(self) -> Generator[Event, Any, NetworkMessage]:
        """Wait until a message sits in this endpoint's socket buffer.

        No activity is logged here: the bytes are only in the kernel
        buffer.  The logged ``tcp_recvmsg`` calls happen in
        :meth:`read`, in the context of whichever worker thread reads.
        """
        message = yield self.inbox.get()
        return message

    def read(self, entity: ExecutionEntity, message: NetworkMessage) -> NetworkMessage:
        """Consume a buffered message in ``entity``'s context (logs reads)."""
        if self.node.probe is not None:
            for part in self.connection.segmentation.receiver_parts(message.size):
                self.node.probe.log_receive(
                    entity,
                    src_ip=self.peer.ip,
                    src_port=self.peer.port,
                    dst_ip=self.ip,
                    dst_port=self.port,
                    size=part,
                    request_id=message.request_id,
                )
        return message

    def recv(self, entity: ExecutionEntity) -> Generator[Event, Any, NetworkMessage]:
        """Blocking receive: wait for data, then read it in one step."""
        message = yield from self.wait_data()
        return self.read(entity, message)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Endpoint({self.ip}:{self.port}@{self.node.hostname})"


class Connection:
    """A TCP connection between an initiator and an acceptor endpoint."""

    def __init__(
        self,
        env: Environment,
        fabric: NetworkFabric,
        client_node: Node,
        client_ip: str,
        client_port: int,
        server_node: Node,
        server_ip: str,
        server_port: int,
        segmentation: Optional[SegmentationPolicy] = None,
    ) -> None:
        self.env = env
        self.fabric = fabric
        self.segmentation = segmentation or SegmentationPolicy()
        self.client = Endpoint(self, client_node, client_ip, client_port)
        self.server = Endpoint(self, server_node, server_ip, server_port)
        self.client.peer = self.server
        self.server.peer = self.client

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Connection({self.client.ip}:{self.client.port} -> "
            f"{self.server.ip}:{self.server.port})"
        )


@dataclass
class Listener:
    """A listening socket: newly established connections queue here."""

    node: Node
    ip: str
    port: int
    backlog: Store = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.backlog is None:
            self.backlog = Store(self.node.env)

    def accept(self) -> Event:
        """Event delivering the server-side endpoint of the next connection."""
        return self.backlog.get()


class Network:
    """Connection establishment and listener registry for one cluster."""

    def __init__(
        self,
        env: Environment,
        fabric: Optional[NetworkFabric] = None,
        segmentation: Optional[SegmentationPolicy] = None,
    ) -> None:
        self.env = env
        self.fabric = fabric or NetworkFabric(env)
        self.segmentation = segmentation or SegmentationPolicy()
        self._listeners: Dict[Tuple[str, int], Listener] = {}

    def listen(self, node: Node, ip: str, port: int) -> Listener:
        """Register a listening socket on ``node``."""
        key = (ip, port)
        if key in self._listeners:
            raise ValueError(f"address already in use: {ip}:{port}")
        listener = Listener(node=node, ip=ip, port=port)
        self._listeners[key] = listener
        return listener

    def listener_for(self, ip: str, port: int) -> Optional[Listener]:
        return self._listeners.get((ip, port))

    def connect(
        self,
        client_node: Node,
        server_ip: str,
        server_port: int,
        client_ip: Optional[str] = None,
        segmentation: Optional[SegmentationPolicy] = None,
    ) -> Connection:
        """Establish a connection from ``client_node`` to a listening socket.

        The server-side endpoint is pushed onto the listener's backlog so
        the owning tier can start a per-connection handler.  Connection
        establishment itself is not traced (SYN packets carry no payload
        and the paper's probe only hooks send/recv of data).
        """
        listener = self._listeners.get((server_ip, server_port))
        if listener is None:
            raise ConnectionRefusedError(f"nothing listening on {server_ip}:{server_port}")
        connection = Connection(
            env=self.env,
            fabric=self.fabric,
            client_node=client_node,
            client_ip=client_ip or client_node.ip,
            client_port=client_node.allocate_port(),
            server_node=listener.node,
            server_ip=server_ip,
            server_port=server_port,
            segmentation=segmentation or self.segmentation,
        )
        listener.backlog.put(connection.server)
        return connection
