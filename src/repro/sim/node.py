"""Simulated cluster nodes, execution entities and CPU scheduling.

A :class:`Node` models one machine of the testbed: it has a hostname, an
IP address, a small number of CPUs (the paper's nodes are 2-way SMPs), a
local clock with skew, an ephemeral-port allocator and, optionally, an
attached TCP_TRACE probe.

Execution entities (:class:`ExecutionEntity`) are the processes and kernel
threads the tracer identifies contexts by.  Tiers create one entity per
worker process (httpd), per pool thread (the application server) or per
connection thread (the database), which is exactly the granularity the
kernel-level context identifier exposes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Generator, List, Optional

from ..core.activity import ContextId
from .clock import NodeClock
from .kernel import Environment, Event, Resource


@dataclass(frozen=True)
class ExecutionEntity:
    """A process or kernel thread on a node (the tracer's context)."""

    hostname: str
    program: str
    pid: int
    tid: int

    def context(self) -> ContextId:
        return ContextId(self.hostname, self.program, self.pid, self.tid)


class Node:
    """One simulated machine."""

    def __init__(
        self,
        env: Environment,
        hostname: str,
        ip: str,
        cpus: int = 2,
        clock: Optional[NodeClock] = None,
        traced: bool = False,
    ) -> None:
        self.env = env
        self.hostname = hostname
        self.ip = ip
        self.clock = clock or NodeClock()
        self.cpu = Resource(env, cpus)
        self.traced = traced
        self.probe = None  # set by TcpTraceProbe.attach()
        self._pid_counter = itertools.count(1000)
        self._port_counter = itertools.count(32768)
        self._entities: List[ExecutionEntity] = []

    # -- time ----------------------------------------------------------------

    def local_time(self) -> float:
        """The node's own clock reading at the current simulated instant."""
        return self.clock.local_time(self.env.now)

    # -- processes and threads -------------------------------------------------

    def new_process(self, program: str) -> ExecutionEntity:
        """Create a single-threaded process (pid == tid, like httpd prefork)."""
        pid = next(self._pid_counter)
        entity = ExecutionEntity(self.hostname, program, pid, pid)
        self._entities.append(entity)
        return entity

    def new_thread(self, process: ExecutionEntity) -> ExecutionEntity:
        """Create an additional kernel thread inside an existing process."""
        tid = next(self._pid_counter)
        entity = ExecutionEntity(self.hostname, process.program, process.pid, tid)
        self._entities.append(entity)
        return entity

    @property
    def entities(self) -> List[ExecutionEntity]:
        return list(self._entities)

    # -- networking helpers --------------------------------------------------------

    def allocate_port(self) -> int:
        """Allocate an ephemeral port for an outgoing connection."""
        return next(self._port_counter)

    # -- CPU ------------------------------------------------------------------------

    def compute(self, cpu_seconds: float) -> Generator[Event, None, None]:
        """Consume ``cpu_seconds`` of CPU, queueing behind other work.

        The node's CPUs are a counted resource: when every processor is
        busy the caller waits in FIFO order, which is how CPU saturation
        shows up as growing component latencies in the traces.
        """
        if cpu_seconds <= 0:
            return
        grant = yield self.cpu.request()
        try:
            yield self.env.timeout(cpu_seconds)
        finally:
            self.cpu.release(grant)

    def tracing_overhead(self, activities: int = 1) -> float:
        """Extra CPU seconds the kernel probe costs for ``activities`` events.

        Zero when tracing is disabled on this node; used by the overhead
        experiments (Fig. 12 / Fig. 13).
        """
        if self.probe is None:
            return 0.0
        return self.probe.overhead_per_activity * activities

    def cpu_utilisation(self, elapsed: Optional[float] = None) -> float:
        return self.cpu.utilisation(elapsed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node({self.hostname}, ip={self.ip}, traced={self.traced})"
