"""A small discrete-event simulation kernel.

The evaluation of the paper runs against a real three-tier deployment on
an 8-node cluster.  Lacking that testbed, the reproduction drives the
tracer with traces produced by a simulated cluster; this module is the
simulation engine underneath it -- a deliberately small, dependency-free
cousin of SimPy:

* :class:`Environment` owns simulated time and the event heap,
* :class:`Event` is a one-shot signal carrying a value,
* :class:`Process` runs a generator that ``yield``s events,
* :class:`Resource` models a counted resource with a FIFO wait queue
  (CPUs, worker pools, thread pools),
* :class:`Store` is an unbounded FIFO message queue (socket buffers,
  accept queues).

The kernel is deterministic: ties in simulated time are broken by a
monotonically increasing sequence number, so a seeded workload always
produces the identical trace -- a property the accuracy tests rely on.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Environment:
    """Simulated clock plus the pending-callback heap."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: List[Tuple[float, int, Callable[[Any], None], Any]] = []
        self._sequence = itertools.count()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self,
        callback: Callable[[Any], None],
        delay: float = 0.0,
        value: Any = None,
    ) -> None:
        """Run ``callback(value)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        heapq.heappush(
            self._heap, (self._now + delay, next(self._sequence), callback, value)
        )

    def timeout(self, delay: float, value: Any = None) -> "Event":
        """An event that fires after ``delay`` simulated seconds."""
        event = Event(self)
        event._succeed_later(delay, value)
        return event

    def event(self) -> "Event":
        """A bare event, to be succeeded manually."""
        return Event(self)

    def process(self, generator: Generator["Event", Any, Any]) -> "Process":
        """Start a new simulation process from a generator."""
        return Process(self, generator)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap empties or simulated time reaches ``until``."""
        while self._heap:
            at, _, callback, value = self._heap[0]
            if until is not None and at > until:
                self._now = until
                return
            heapq.heappop(self._heap)
            self._now = at
            callback(value)
        if until is not None and until > self._now:
            self._now = until

    def peek(self) -> Optional[float]:
        """Time of the next scheduled callback, or ``None`` when idle."""
        return self._heap[0][0] if self._heap else None

    @property
    def pending(self) -> int:
        return len(self._heap)


class Event:
    """A one-shot signal.

    Processes wait on events by yielding them; arbitrary callbacks can also
    be attached.  An event fires exactly once, with an optional value.
    """

    __slots__ = ("env", "_callbacks", "_pending", "_dispatched", "_value")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._callbacks: List[Callable[["Event"], None]] = []
        self._pending = True
        self._dispatched = False
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return not self._pending

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now (callbacks run at the current time)."""
        if not self._pending:
            raise SimulationError("event already triggered")
        self._pending = False
        self._value = value
        self.env.schedule(self._dispatch)
        return self

    def _succeed_later(self, delay: float, value: Any = None) -> None:
        if not self._pending:
            raise SimulationError("event already triggered")
        self._pending = False
        self._value = value
        self.env.schedule(self._dispatch, delay=delay)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach a callback; it always runs, even if the event already fired."""
        if self._dispatched:
            self.env.schedule(lambda _value: callback(self))
        else:
            self._callbacks.append(callback)

    def _dispatch(self, _value: Any = None) -> None:
        self._dispatched = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class Process:
    """A simulation process driven by a generator of events.

    The generator advances each time the event it yielded fires; the value
    the event carries becomes the result of the ``yield`` expression.  When
    the generator returns, :attr:`completion` fires with its return value.
    """

    def __init__(self, env: Environment, generator: Generator[Event, Any, Any]) -> None:
        self.env = env
        self._generator = generator
        self.completion = Event(env)
        env.schedule(self._bootstrap)

    @property
    def finished(self) -> bool:
        return self.completion.triggered

    def _bootstrap(self, _value: Any) -> None:
        self._advance(None)

    def _advance(self, send_value: Any) -> None:
        try:
            target = self._generator.send(send_value)
        except StopIteration as stop:
            self.completion.succeed(getattr(stop, "value", None))
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"processes must yield Event objects, got {type(target)!r}"
            )
        target.add_callback(lambda event: self._advance(event.value))


class Grant:
    """Token returned by :meth:`Resource.request`; pass it to ``release``."""

    __slots__ = ("resource", "active")

    def __init__(self, resource: "Resource") -> None:
        self.resource = resource
        self.active = True


class Resource:
    """A counted resource with a FIFO wait queue (CPUs, worker pools)."""

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Tuple[Event, Grant]] = deque()
        #: total time-weighted busy integral, for utilisation reporting
        self._busy_integral = 0.0
        self._last_change = env.now

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def utilisation(self, elapsed: Optional[float] = None) -> float:
        """Mean fraction of capacity busy since construction."""
        self._account()
        total = elapsed if elapsed is not None else (self.env.now or 1e-12)
        if total <= 0:
            return 0.0
        return self._busy_integral / (total * self.capacity)

    def request(self) -> Event:
        """Event that fires (with a :class:`Grant`) once a unit is granted."""
        event = Event(self.env)
        grant = Grant(self)
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            event.succeed(grant)
        else:
            self._waiters.append((event, grant))
        return event

    def release(self, grant: Grant) -> None:
        """Return a unit previously granted."""
        if not grant.active:
            raise SimulationError("grant released twice")
        grant.active = False
        if self._waiters:
            event, next_grant = self._waiters.popleft()
            event.succeed(next_grant)  # unit transfers directly to the waiter
        else:
            self._account()
            self._in_use -= 1

    def _account(self) -> None:
        now = self.env.now
        self._busy_integral += self._in_use * (now - self._last_change)
        self._last_change = now


class Store:
    """Unbounded FIFO of items with blocking ``get`` (socket/accept queues)."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
