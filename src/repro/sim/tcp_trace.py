"""The simulated TCP_TRACE probe.

The paper's instrumentation is a SystemTap module that hooks
``tcp_sendmsg`` and ``tcp_recvmsg`` and logs one record per call with the
process context and the connection identifier.  Our cluster is simulated,
so the probe hooks the simulated socket layer instead
(:mod:`repro.sim.network` calls :meth:`TcpTraceProbe.log_send` /
:meth:`log_receive`), but it produces records in the *same* textual format
and with the same semantics:

* the timestamp is the **local** clock of the node, including its skew;
* the context identifier is the process/thread that performed the call;
* the message identifier is the connection 4-tuple plus the byte count of
  this call (which, due to segmentation, may be only part of a logical
  message);
* an optional ``#rid=`` annotation carries the ground-truth request id.
  It is written for the accuracy evaluation only; the tracer never parses
  it into anything the algorithm uses.

The probe also models the instrumentation overhead: each logged record
costs :attr:`overhead_per_activity` seconds of CPU on the observed node,
which the tiers account for when they compute.  This is what the
enable/disable comparison of Fig. 12 and Fig. 13 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.log_format import RawRecord, format_record
from .node import ExecutionEntity, Node

#: Default probe cost per logged activity, in CPU-seconds.  SystemTap
#: probes cost a few microseconds each; we use a slightly conservative
#: value so the overhead is visible but small, matching the <=3.7 %
#: throughput impact the paper reports.
DEFAULT_PROBE_OVERHEAD = 25e-6


@dataclass
class TcpTraceProbe:
    """Per-node activity logger (the TCP_TRACE module)."""

    node: Node
    overhead_per_activity: float = DEFAULT_PROBE_OVERHEAD
    records: List[RawRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.node.probe = self
        self.node.traced = True

    # -- logging hooks -------------------------------------------------------

    def log_send(
        self,
        entity: ExecutionEntity,
        src_ip: str,
        src_port: int,
        dst_ip: str,
        dst_port: int,
        size: int,
        request_id: Optional[int] = None,
    ) -> RawRecord:
        """Record one ``tcp_sendmsg`` call."""
        record = RawRecord(
            timestamp=self.node.local_time(),
            hostname=entity.hostname,
            program=entity.program,
            pid=entity.pid,
            tid=entity.tid,
            direction="SEND",
            src_ip=src_ip,
            src_port=src_port,
            dst_ip=dst_ip,
            dst_port=dst_port,
            size=size,
            request_id=request_id,
        )
        self.records.append(record)
        return record

    def log_receive(
        self,
        entity: ExecutionEntity,
        src_ip: str,
        src_port: int,
        dst_ip: str,
        dst_port: int,
        size: int,
        request_id: Optional[int] = None,
    ) -> RawRecord:
        """Record one ``tcp_recvmsg`` call.

        ``src`` is always the *sender* of the bytes (the remote peer), just
        as in the paper's record format, so SEND and RECEIVE records of the
        same message share one connection 4-tuple.
        """
        record = RawRecord(
            timestamp=self.node.local_time(),
            hostname=entity.hostname,
            program=entity.program,
            pid=entity.pid,
            tid=entity.tid,
            direction="RECEIVE",
            src_ip=src_ip,
            src_port=src_port,
            dst_ip=dst_ip,
            dst_port=dst_port,
            size=size,
            request_id=request_id,
        )
        self.records.append(record)
        return record

    # -- export ----------------------------------------------------------------

    def lines(self) -> List[str]:
        """The node's trace file, one TCP_TRACE line per record."""
        return [format_record(record) for record in self.records]

    def record_count(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()


class TraceCollector:
    """Gathers the per-node probes of one deployment."""

    def __init__(self) -> None:
        self._probes: List[TcpTraceProbe] = []

    def attach(
        self, node: Node, overhead_per_activity: float = DEFAULT_PROBE_OVERHEAD
    ) -> TcpTraceProbe:
        """Install a probe on ``node`` and track it."""
        probe = TcpTraceProbe(node=node, overhead_per_activity=overhead_per_activity)
        self._probes.append(probe)
        return probe

    @property
    def probes(self) -> List[TcpTraceProbe]:
        return list(self._probes)

    def records_by_node(self) -> dict:
        """Mapping hostname -> list of raw records (gathered log files)."""
        return {probe.node.hostname: list(probe.records) for probe in self._probes}

    def lines_by_node(self) -> dict:
        """Mapping hostname -> list of TCP_TRACE text lines."""
        return {probe.node.hostname: probe.lines() for probe in self._probes}

    def all_records(self) -> List[RawRecord]:
        records: List[RawRecord] = []
        for probe in self._probes:
            records.extend(probe.records)
        return records

    def total_records(self) -> int:
        return sum(len(probe.records) for probe in self._probes)
