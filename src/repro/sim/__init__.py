"""Discrete-event simulation substrate.

This package replaces the paper's physical testbed: a small simulation
kernel, simulated nodes with skewed clocks and finite CPUs, a TCP-like
network with message segmentation, and the simulated TCP_TRACE probe that
produces the activity logs the tracer consumes.
"""

from .clock import NodeClock, spread_skews
from .kernel import Environment, Event, Grant, Process, Resource, SimulationError, Store
from .network import (
    Connection,
    Endpoint,
    Listener,
    Network,
    NetworkFabric,
    NetworkMessage,
    SegmentationPolicy,
)
from .node import ExecutionEntity, Node
from .randomness import RandomStreams
from .tcp_trace import DEFAULT_PROBE_OVERHEAD, TcpTraceProbe, TraceCollector

__all__ = [
    "Connection",
    "DEFAULT_PROBE_OVERHEAD",
    "Endpoint",
    "Environment",
    "Event",
    "ExecutionEntity",
    "Grant",
    "Listener",
    "Network",
    "NetworkFabric",
    "NetworkMessage",
    "Node",
    "NodeClock",
    "Process",
    "RandomStreams",
    "Resource",
    "SegmentationPolicy",
    "SimulationError",
    "Store",
    "TcpTraceProbe",
    "TraceCollector",
    "spread_skews",
]
