"""Seeded random streams for the workload and service-time models.

Every stochastic choice in the simulator (think times, service demands,
request-type selection, noise inter-arrival times) draws from a named
stream derived from one experiment seed, so that

* experiments are reproducible run to run, and
* changing one aspect of a scenario (say, enabling noise) does not perturb
  the random numbers consumed by an unrelated aspect (say, client think
  times), which keeps paired comparisons (tracing on vs. off,
  MaxThreads 40 vs. 250) meaningful.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, Sequence, Tuple, TypeVar

T = TypeVar("T")


class RandomStreams:
    """A family of independent named :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use)."""
        generator = self._streams.get(name)
        if generator is None:
            # A stable digest (not ``hash``, which is salted per process)
            # keeps runs reproducible across processes and machines.
            digest = zlib.crc32(f"{self.seed}:{name}".encode("utf-8"))
            generator = random.Random(digest ^ (self.seed << 32))
            self._streams[name] = generator
        return generator

    # -- distribution helpers ------------------------------------------------

    def exponential(self, name: str, mean: float) -> float:
        """Exponentially distributed sample with the given mean."""
        if mean <= 0:
            return 0.0
        return self.stream(name).expovariate(1.0 / mean)

    def uniform(self, name: str, low: float, high: float) -> float:
        return self.stream(name).uniform(low, high)

    def lognormal_like(self, name: str, mean: float, spread: float = 0.35) -> float:
        """A positively skewed service-time sample around ``mean``.

        Service demands in real tiers are not deterministic; a mild
        multiplicative jitter keeps queues realistic without heavy tails
        that would blow up simulated run times.
        """
        if mean <= 0:
            return 0.0
        factor = self.stream(name).lognormvariate(0.0, spread)
        return mean * factor

    def weighted_choice(self, name: str, items: Sequence[Tuple[T, float]]) -> T:
        """Pick an item according to (item, weight) pairs."""
        total = sum(weight for _item, weight in items)
        pick = self.stream(name).uniform(0.0, total)
        accumulated = 0.0
        for item, weight in items:
            accumulated += weight
            if pick <= accumulated:
                return item
        return items[-1][0]

    def randint(self, name: str, low: int, high: int) -> int:
        return self.stream(name).randint(low, high)
