"""Request sampling: trade tracing coverage for overhead, deterministically.

PreciseTracer's pitch is that black-box tracing is *precise*: every
reconstructed path is a real request, exactly.  That precision is what
makes per-request sampling meaningful -- a deterministic subset of the
requests can be traced exactly, instead of all of them approximately --
and sampling is what makes continuous tracing deployable under heavy
production traffic: the analysis cost must be allowed to trail the
offered load.

This package holds the sampling layer shared by every correlation
backend:

:class:`SamplingSpec`
    Frozen value object naming a policy and its knobs -- a uniform
    head-based rate, a fixed per-second budget, or an adaptive feedback
    loop targeting an open-CAG budget.  Carried by
    :class:`repro.pipeline.BackendSpec` (``sampling=...``) and the CLI
    (``--sample-rate`` / ``--sample-budget``).
:class:`RequestSampler`
    The per-engine decision object built from a spec.  Decisions are
    made once per request, at the causal root (the BEGIN activity), by
    deterministic hashing of the root's identity -- so batch, streaming
    and sharded backends sample the **identical** request subset and
    :func:`repro.pipeline.verify_equivalence` extends to sampled runs
    unchanged.
:class:`AdaptiveController`
    The feedback loop of the adaptive policy: observes the engine's
    open-CAG count at a fixed candidate cadence and multiplicatively
    steers the admission rate toward the configured budget.
:func:`precompute_decisions`
    One cheap pre-pass identifying the causal roots of a trace and
    freezing the budget policy's decisions, so the per-second budget is
    a property of the *trace*, not of any backend's processing order.
:func:`compare_sampled_reports`
    Accuracy of a sampled ranked latency report against the full one
    (pattern coverage, latency-percentage drift) -- the measurement
    behind :class:`repro.pipeline.SamplingAccuracyStage` and the
    ``sampling`` figure.
"""

from .accuracy import SamplingAccuracy, compare_sampled_reports
from .sampler import (
    FrozenDecisions,
    RequestSampler,
    SamplerStats,
    precompute_decisions,
    root_key,
    root_position,
)
from .spec import AdaptiveController, SamplingSpec

__all__ = [
    "AdaptiveController",
    "FrozenDecisions",
    "RequestSampler",
    "SamplerStats",
    "SamplingAccuracy",
    "SamplingSpec",
    "compare_sampled_reports",
    "precompute_decisions",
    "root_key",
    "root_position",
]
