"""How faithful is a sampled trace's analysis to the full trace's?

Sampling trades coverage for overhead; this module measures what the
trade costs *analytically*.  The paper's headline artefact is the ranked
latency report -- per-pattern latency percentages, most frequent pattern
first -- so sampled fidelity is defined against it:

* **pattern coverage**: the fraction of the full run's requests whose
  path pattern also appears in the sampled report.  Rare patterns are
  the first casualties of sampling; coverage quantifies exactly that.
* **dominant-profile distance**: mean absolute difference, in
  percentage points, between the latency-percentage profiles of the
  *dominant* pattern of the full run and the same pattern's profile in
  the sampled run.  This is the number a diagnosis workflow (Fig. 17)
  actually consumes, so its drift is the operative accuracy metric.

Every sampled-in CAG is byte-identical to its full-run counterpart (the
sampler only selects, never approximates), so all drift comes from the
statistics of the subset -- which is what makes the metrics meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class SamplingAccuracy:
    """Fidelity of a sampled run's report against the full run's."""

    full_requests: int
    sampled_requests: int
    #: full-run requests whose pattern survived into the sampled report
    covered_requests: int
    #: patterns in the full report / patterns also present when sampled
    full_patterns: int
    sampled_patterns: int
    #: mean |sampled - full| over the dominant pattern's latency
    #: percentages, in percentage points (0.0 = indistinguishable;
    #: ``None`` when the dominant pattern was sampled out entirely)
    dominant_profile_distance: Optional[float]
    #: worst single-segment drift of the dominant profile, in points
    dominant_profile_max_error: Optional[float] = None
    per_pattern: List[Dict[str, object]] = field(default_factory=list)

    @property
    def sample_fraction(self) -> float:
        """Realised sampling fraction (requests kept / requests seen)."""
        if self.full_requests == 0:
            return 1.0
        return self.sampled_requests / self.full_requests

    @property
    def pattern_coverage(self) -> float:
        """Request-weighted fraction of the full report still covered."""
        if self.full_requests == 0:
            return 1.0
        return self.covered_requests / self.full_requests

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary (reports, benchmarks, ``--json``)."""
        return {
            "full_requests": float(self.full_requests),
            "sampled_requests": float(self.sampled_requests),
            "sample_fraction": self.sample_fraction,
            "pattern_coverage": self.pattern_coverage,
            "dominant_profile_distance": (
                -1.0
                if self.dominant_profile_distance is None
                else self.dominant_profile_distance
            ),
        }


def _profiles(cags: Iterable) -> List[Tuple[object, int, Dict[str, float]]]:
    """(signature, request count, latency percentages) per pattern, most
    frequent first -- the rows of the ranked latency report."""
    # Imported lazily: repro.sampling must stay import-light so the core
    # drivers can depend on it without cycles.
    from ..core.patterns import PatternClassifier

    classifier = PatternClassifier()
    classifier.add_all(list(cags))
    return [
        (pattern.signature, pattern.count, pattern.average_path().percentages())
        for pattern in classifier.patterns
    ]


def compare_sampled_reports(full_cags, sampled_cags) -> SamplingAccuracy:
    """Score a sampled run's ranked latency report against the full one."""
    full = _profiles(full_cags)
    sampled = _profiles(sampled_cags)
    sampled_by_signature = {signature: row for signature, *row in sampled}

    covered = 0
    per_pattern: List[Dict[str, object]] = []
    for signature, count, percentages in full:
        hit = sampled_by_signature.get(signature)
        if hit is not None:
            covered += count
        per_pattern.append(
            {
                "full_paths": count,
                "sampled_paths": hit[0] if hit is not None else 0,
                "covered": hit is not None,
            }
        )

    distance = max_error = None
    if full:
        dominant_signature, _count, dominant_profile = full[0]
        hit = sampled_by_signature.get(dominant_signature)
        if hit is not None:
            sampled_profile = hit[1]
            labels = set(dominant_profile) | set(sampled_profile)
            errors = [
                abs(sampled_profile.get(label, 0.0) - dominant_profile.get(label, 0.0))
                for label in labels
            ]
            distance = sum(errors) / len(errors) if errors else 0.0
            max_error = max(errors) if errors else 0.0

    return SamplingAccuracy(
        full_requests=sum(count for _sig, count, _pct in full),
        sampled_requests=sum(count for _sig, count, _pct in sampled),
        covered_requests=covered,
        full_patterns=len(full),
        sampled_patterns=len(sampled),
        dominant_profile_distance=distance,
        dominant_profile_max_error=max_error,
        per_pattern=per_pattern,
    )
