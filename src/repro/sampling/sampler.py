"""The per-engine sampling decision object and the root-hash invariant.

Every request has exactly one *causal root*: the BEGIN activity the
classifier emits for the first frontend read of the request.  The
sampler decides once, at that root, whether the request is traced; the
engine then materialises either a full CAG or a memory-light tombstone
(:class:`repro.core.cag.SampledOutCAG`) that keeps the index maps
consistent but retains no edges and is discarded on completion.

**The determinism invariant.**  The uniform and adaptive policies decide
by hashing the root's identity -- its context identifier, its message
identifier and its timestamp -- with a keyed BLAKE2b digest mapped to a
position in ``[0, 1)``.  The hash consumes nothing about the run but the
root activity itself, so

* re-running the same trace re-samples the same subset,
* batch, streaming and sharded backends (which all see the same BEGIN
  objects) admit the identical requests, and
* lowering the rate shrinks the subset *monotonically*: the requests
  sampled at rate ``r`` are exactly those sampled at any rate ``>= r``.

The budget policy is arrival-order dependent by nature ("the first N
roots of each second"), so its decisions are frozen by
:func:`precompute_decisions` -- a cheap pre-pass that identifies the
roots of a trace and applies the budget in root timestamp order, making
the decision set a property of the trace rather than of any backend's
processing order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from hashlib import blake2b
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

RootKey = Tuple[tuple, tuple, float]

#: ``2 ** 64`` as a float divisor for mapping digests to ``[0, 1)``.
_HASH_SPAN = float(2**64)

#: Alias documenting what a frozen decision set is: the admitted roots.
FrozenDecisions = FrozenSet[RootKey]


def root_key(activity) -> RootKey:
    """Identity of a causal root, as logged: the root's context id, its
    message id (connection 4-tuple) and its local timestamp.

    The timestamp is rounded to nanoseconds -- the same canonical
    precision :func:`repro.pipeline.result_digest` fingerprints with --
    so clones and pickle round trips key identically.

    Deliberately built from the *original* string/tuple identity, not
    the interned ``context_key``/``message_key`` ints: interned ids are
    an artefact of one process's ingest order, and the sampled subset
    must be a property of the trace alone (the determinism invariant in
    the module docstring).
    """
    return (
        activity.context.as_tuple(),
        activity.message.connection_key(),
        round(activity.timestamp, 9),
    )


def root_position(activity, salt: int = 0) -> float:
    """Deterministic hash position of a root in ``[0, 1)``.

    Keyed BLAKE2b over the :func:`root_key` repr (nested tuples of
    strings, ints and a rounded float -- reprs are stable across
    processes and Python versions, the property the golden digests rely
    on).  ``salt`` rotates the subset without changing its statistics.
    """
    digest = blake2b(
        repr(root_key(activity)).encode("utf-8"),
        digest_size=8,
        key=salt.to_bytes(8, "big", signed=True),
    ).digest()
    return int.from_bytes(digest, "big") / _HASH_SPAN


@dataclass
class SamplerStats:
    """Counters describing one sampler's decisions."""

    roots_seen: int = 0
    admitted: int = 0
    rejected: int = 0
    #: adaptive policy only: controller observations and rate extremes
    rate_updates: int = 0
    min_rate_seen: float = math.inf
    max_rate_seen: float = -math.inf


class RequestSampler:
    """Decides, at each causal root, whether the request is traced.

    Built from a :class:`~repro.sampling.spec.SamplingSpec` via
    :meth:`~repro.sampling.spec.SamplingSpec.make_sampler`; one instance
    drives exactly one engine (it is mutable: budget counters, adaptive
    rate).  ``decisions`` freezes the budget policy to a pre-computed
    admitted-root set (see :func:`precompute_decisions`).
    """

    def __init__(self, spec, decisions: Optional[FrozenDecisions] = None) -> None:
        self.spec = spec
        self.stats = SamplerStats()
        self._decisions = decisions
        self._rate = spec.rate
        self._salt = spec.salt
        self._controller = spec.controller
        self._tick_countdown = (
            self._controller.interval if self._controller is not None else 0
        )
        # budget fallback (no frozen decisions): admitted roots per
        # one-second bucket of trace time, in engine delivery order
        self._bucket_counts: Dict[int, int] = {}

    @property
    def is_adaptive(self) -> bool:
        return self._controller is not None

    @property
    def current_rate(self) -> float:
        """The admission rate in force (fixed except for ``adaptive``)."""
        return self._rate

    # -- the decision --------------------------------------------------------

    def admit(self, root) -> bool:
        """Trace this request?  Called once per causal root (BEGIN)."""
        self.stats.roots_seen += 1
        kind = self.spec.kind
        if kind == "budget":
            if self._decisions is not None:
                admitted = root_key(root) in self._decisions
            else:
                bucket = int(math.floor(root.timestamp))
                count = self._bucket_counts.get(bucket, 0)
                admitted = count < self.spec.budget_per_second
                if admitted:
                    self._bucket_counts[bucket] = count + 1
        else:  # uniform / adaptive: hash position against the rate
            admitted = (
                self._rate >= 1.0 or root_position(root, self._salt) < self._rate
            )
        if admitted:
            self.stats.admitted += 1
        else:
            self.stats.rejected += 1
        return admitted

    # -- the adaptive feedback loop ------------------------------------------

    def tick(self, open_cags: int) -> None:
        """One correlated candidate passed: maybe run a controller step.

        Called by the engine once per candidate (only wired up for
        adaptive specs).  The cadence is counted in *candidates*, the
        one clock every sequential driver shares, so batch and
        streaming runs observe the engine at identical points and make
        identical decisions.
        """
        self._tick_countdown -= 1
        if self._tick_countdown > 0:
            return
        controller = self._controller
        self._tick_countdown = controller.interval
        self._rate = controller.update(open_cags, self._rate)
        stats = self.stats
        stats.rate_updates += 1
        if self._rate < stats.min_rate_seen:
            stats.min_rate_seen = self._rate
        if self._rate > stats.max_rate_seen:
            stats.max_rate_seen = self._rate


# ---------------------------------------------------------------------------
# the budget pre-pass: freeze decisions as a property of the trace
# ---------------------------------------------------------------------------


def iter_roots(activities: Iterable) -> List:
    """The causal roots of a trace, in root timestamp order.

    A BEGIN is a *root* unless the engine would merge it into the
    previous BEGIN as a late kernel part of the same request body.  The
    engine merges (see ``CorrelationEngine._handle_begin``) exactly when
    the context's previous activity is a BEGIN with the same message key
    and nothing else has been chained since -- i.e. within an unbroken
    per-context run of BEGINs sharing one message key.  This scan
    replays that rule per context in node-local order (each context
    lives on one node, so local timestamps order it), with one
    deliberate approximation: *any* intervening activity breaks a run
    here, while in the engine an activity that never becomes the
    context's latest (e.g. a RECEIVE ultimately discarded as noise, or
    matched only partially) leaves the merge chain intact -- deciding
    that exactly would mean replaying the whole message-balance state.
    The approximation can only split one request into an extra phantom
    root, never fuse two, so a per-second budget stays a hard cap (a
    phantom may waste a slot in its second); and since every backend
    shares the frozen set, cross-backend equivalence is unaffected.
    """
    by_context: Dict[int, List] = {}
    for activity in activities:
        # BEGIN has Rule-2 priority 0; everything else breaks a run.
        # Grouping by the interned context key is equivalent to grouping
        # by the raw tuple (interning is injective).
        by_context.setdefault(activity.context_key, []).append(activity)

    roots: List = []
    for entries in by_context.values():
        entries.sort(key=lambda a: (a.timestamp, a.priority, a.seq))
        run_key = None  # message key of the open BEGIN run, if any
        for activity in entries:
            if activity.priority == 0:  # BEGIN
                if run_key is None or run_key != activity.message_key:
                    roots.append(activity)
                    run_key = activity.message_key
            else:
                run_key = None
    roots.sort(key=lambda a: (a.timestamp, a.seq))
    return roots


def precompute_decisions(activities: Iterable, spec) -> FrozenDecisions:
    """Freeze a spec's decisions for one trace: the admitted root keys.

    Only the budget policy genuinely needs this (its decisions depend on
    root arrival order); for the uniform policy the frozen set simply
    reproduces what :meth:`RequestSampler.admit` would decide, which can
    be useful for reporting.  Adaptive specs are rejected: their rate is
    steered by the engine at run time, so no decision set exists before
    the run.  The result is a plain frozenset of :func:`root_key` tuples
    -- picklable, so the sharded driver ships it to worker processes.
    """
    if spec.kind == "adaptive":
        raise ValueError(
            "adaptive sampling decisions are made at run time (the rate "
            "follows the engine's state) and cannot be precomputed"
        )
    roots = iter_roots(activities)
    if spec.kind == "budget":
        budget = spec.budget_per_second
        taken: Dict[int, int] = {}
        admitted = []
        for root in roots:
            bucket = int(math.floor(root.timestamp))
            count = taken.get(bucket, 0)
            if count < budget:
                taken[bucket] = count + 1
                admitted.append(root)
        return frozenset(root_key(root) for root in admitted)
    rate = spec.rate
    return frozenset(
        root_key(root)
        for root in roots
        if rate >= 1.0 or root_position(root, spec.salt) < rate
    )
