"""Sampling policies as one frozen value object.

:class:`SamplingSpec` names a request-sampling policy plus its knobs, the
same way :class:`repro.pipeline.BackendSpec` names a correlation driver.
Three policies cover the overhead-control repertoire:

``uniform``
    Head-based rate sampling: each request is admitted iff the hash
    position of its causal root falls below ``rate``.  Deterministic and
    backend-independent by construction; admitted subsets are *nested*
    (everything sampled at rate 0.1 is also sampled at rate 0.5), which
    makes rate sweeps comparable point to point.
``budget``
    A fixed admission budget of ``budget_per_second`` requests per
    second of trace time.  Decided in root-arrival order; the decision
    set is frozen by a pre-pass over the trace
    (:func:`~repro.sampling.sampler.precompute_decisions`) so every
    backend -- including the sharded driver, whose shards each see only
    part of the traffic -- admits the identical subset.
``adaptive``
    A feedback loop (:class:`AdaptiveController`): the admission rate is
    steered at a fixed candidate cadence so the engine's open-CAG count
    tracks ``target_open_cags``.  Because the controller reacts to the
    *engine's* state, its rate trajectory is a property of the driver:
    batch and streaming (eviction disabled) tick identically and stay
    equivalent; the sharded driver runs one engine per shard and
    rejects the policy outright.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

#: The sampling policy kinds, in documentation order.
SAMPLING_KINDS = ("uniform", "budget", "adaptive")


@dataclass(frozen=True)
class AdaptiveController:
    """Multiplicative feedback steering the admission rate to a budget.

    Every ``interval`` correlated candidates the sampler observes the
    engine's open-CAG count and updates the rate::

        rate <- clamp(rate * (target / observed) ** gain, min_rate, max_rate)

    ``gain`` damps the correction (1.0 = jump straight to the
    proportional estimate, small values = smooth trailing).  The
    controller itself is a frozen value; the mutable rate lives in the
    :class:`~repro.sampling.sampler.RequestSampler`.
    """

    target_open_cags: int
    gain: float = 0.5
    min_rate: float = 0.01
    max_rate: float = 1.0
    #: candidates between observations (aligned across drivers so batch
    #: and streaming tick on the identical candidate sequence)
    interval: int = 256

    def __post_init__(self) -> None:
        if self.target_open_cags <= 0:
            raise ValueError("target_open_cags must be positive")
        if not 0.0 < self.gain <= 1.0:
            raise ValueError("gain must be in (0, 1]")
        if not 0.0 < self.min_rate <= self.max_rate <= 1.0:
            raise ValueError("need 0 < min_rate <= max_rate <= 1")
        if self.interval <= 0:
            raise ValueError("interval must be positive")

    def update(self, observed_open_cags: int, rate: float) -> float:
        """One controller step: the new admission rate."""
        observed = max(observed_open_cags, 1)
        proposed = rate * (self.target_open_cags / observed) ** self.gain
        return min(self.max_rate, max(self.min_rate, proposed))


@dataclass(frozen=True)
class SamplingSpec:
    """A sampling policy plus its knobs, as one comparable value.

    Frozen (like :class:`~repro.pipeline.BackendSpec`) so specs can key
    caches, travel across process boundaries to sharded workers, and
    appear in reprs and reports.  Use the classmethod constructors.
    """

    kind: str = "uniform"
    #: uniform admission probability / adaptive initial rate, in (0, 1]
    rate: float = 1.0
    #: budget policy: admitted requests per second of trace time
    budget_per_second: Optional[int] = None
    #: adaptive policy: the feedback loop and its knobs
    controller: Optional[AdaptiveController] = None
    #: hash salt: different salts sample different (equally deterministic)
    #: subsets, e.g. to rotate coverage across deployments
    salt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SAMPLING_KINDS:
            raise ValueError(
                f"unknown sampling kind {self.kind!r}; valid kinds: "
                f"{', '.join(SAMPLING_KINDS)}"
            )
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")
        if self.kind == "budget":
            if self.budget_per_second is None or self.budget_per_second <= 0:
                raise ValueError("budget policy needs a positive budget_per_second")
        elif self.budget_per_second is not None:
            raise ValueError("budget_per_second only applies to the budget policy")
        if self.kind == "adaptive":
            if self.controller is None:
                raise ValueError("adaptive policy needs a controller")
        elif self.controller is not None:
            raise ValueError("controller only applies to the adaptive policy")

    # -- constructors --------------------------------------------------------

    @classmethod
    def uniform(cls, rate: float, salt: int = 0) -> "SamplingSpec":
        """Head-based rate sampling: admit each request with probability
        ``rate``, decided by the root's hash position."""
        return cls(kind="uniform", rate=rate, salt=salt)

    @classmethod
    def budget(cls, per_second: int, salt: int = 0) -> "SamplingSpec":
        """Fixed admission budget: at most ``per_second`` requests per
        second of trace time, first-come in root order."""
        return cls(kind="budget", budget_per_second=per_second, salt=salt)

    @classmethod
    def adaptive(
        cls,
        target_open_cags: int,
        initial_rate: float = 1.0,
        gain: float = 0.5,
        min_rate: float = 0.01,
        max_rate: float = 1.0,
        interval: int = 256,
        salt: int = 0,
    ) -> "SamplingSpec":
        """Feedback sampling: steer the rate to hold the engine's
        open-CAG count near ``target_open_cags``."""
        controller = AdaptiveController(
            target_open_cags=target_open_cags,
            gain=gain,
            min_rate=min_rate,
            max_rate=max_rate,
            interval=interval,
        )
        return cls(
            kind="adaptive", rate=initial_rate, controller=controller, salt=salt
        )

    def with_overrides(self, **kwargs) -> "SamplingSpec":
        """A copy of this spec with some fields replaced."""
        return replace(self, **kwargs)

    # -- derived properties --------------------------------------------------

    @property
    def needs_prepass(self) -> bool:
        """Whether decisions must be frozen by a pre-pass over the trace
        (the budget policy: its decisions depend on root arrival order,
        which only the whole trace defines backend-independently)."""
        return self.kind == "budget"

    def freeze(self, activities):
        """The frozen decision set for one trace, or ``None`` when the
        policy decides purely per root.

        This is the one pre-pass hook every driver calls (batch and
        streaming before their single engine, the sharded driver before
        partitioning), so a future policy that also needs whole-trace
        context changes behaviour everywhere at once.
        """
        if not self.needs_prepass:
            return None
        from .sampler import precompute_decisions

        return precompute_decisions(activities, self)

    def make_sampler(self, decisions=None):
        """Instantiate the per-engine decision object.

        ``decisions`` is an optional frozen decision set from
        :func:`~repro.sampling.sampler.precompute_decisions`; without it
        the budget policy falls back to counting roots in engine
        delivery order (exact for a single sequential engine fed in
        trace order, undefined across shards).
        """
        from .sampler import RequestSampler

        return RequestSampler(self, decisions=decisions)

    def describe(self) -> str:
        """One-line human description (CLI banners, reports)."""
        if self.kind == "uniform":
            detail = f"rate={self.rate:g}"
        elif self.kind == "budget":
            detail = f"budget={self.budget_per_second}/s"
        else:
            controller = self.controller
            detail = (
                f"target_open_cags={controller.target_open_cags}, "
                f"rate0={self.rate:g}, gain={controller.gain:g}"
            )
        if self.salt:
            detail += f", salt={self.salt}"
        return f"{self.kind} ({detail})"
