"""Probabilistic black-box tracing baselines.

The paper positions PreciseTracer against the probabilistic correlation
methods of Project5 and WAP5 (Section 6.1): those infer *likely* causal
paths from message timing alone and accept imprecision.  This package
implements simplified versions of both so the reproduction can quantify
the precision gap on identical traces (the paper argues it qualitatively).
"""

from .project5 import NestingResult, nesting_algorithm
from .wap5 import Wap5Config, Wap5Path, Wap5Tracer

__all__ = [
    "NestingResult",
    "Wap5Config",
    "Wap5Path",
    "Wap5Tracer",
    "nesting_algorithm",
]
