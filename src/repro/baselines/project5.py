"""A Project5-style "nesting" baseline for RPC-like traffic.

Project5 (Aguilera et al., SOSP 2003) offers two offline algorithms over
black-box message traces: the *nesting* algorithm for RPC-style systems
and the *convolution* algorithm for free-form message streams.  This
module implements a simplified nesting algorithm: it pairs call/return
messages on each connection and then infers which child calls are nested
inside which parent calls based purely on timestamp containment and a
scoring heuristic -- no per-request identifiers of any kind.

The output is aggregate (call pairs and nesting scores), matching
Project5's goal of finding *patterns* rather than per-request paths; the
per-request accuracy comparison therefore uses :class:`NestingResult`'s
best-guess parent assignment, which is where the imprecision of
probabilistic approaches shows up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.accuracy import GroundTruthRequest
from ..core.activity import Activity


@dataclass
class CallPair:
    """One matched call/return on a connection (an RPC in Project5 terms)."""

    caller: Tuple[str, str]  # (hostname, program) of the caller
    callee: Tuple[str, str]
    call_send: Activity
    call_receive: Activity
    return_send: Optional[Activity] = None
    return_receive: Optional[Activity] = None
    parent: Optional["CallPair"] = None

    @property
    def start(self) -> float:
        return self.call_send.timestamp

    @property
    def end(self) -> float:
        if self.return_receive is not None:
            return self.return_receive.timestamp
        if self.return_send is not None:
            return self.return_send.timestamp
        return self.call_receive.timestamp

    def request_ids(self) -> Set[int]:
        ids = set()
        for activity in (
            self.call_send,
            self.call_receive,
            self.return_send,
            self.return_receive,
        ):
            if activity is not None and activity.request_id is not None:
                ids.add(activity.request_id)
        return ids


@dataclass
class NestingResult:
    """Call pairs plus the inferred nesting relation."""

    pairs: List[CallPair] = field(default_factory=list)

    def roots(self) -> List[CallPair]:
        return [pair for pair in self.pairs if pair.parent is None]

    def children_of(self, parent: CallPair) -> List[CallPair]:
        return [pair for pair in self.pairs if pair.parent is parent]

    def path_accuracy(self, ground_truth: Dict[int, GroundTruthRequest]) -> float:
        """Fraction of requests whose inferred call tree is pure.

        A request is counted as correctly traced when some root call pair
        carries its id and every call pair attached (transitively) to that
        root carries the same single id.  Mixed ids anywhere in the tree
        disqualify the request -- the same spirit as the paper's
        path-accuracy criterion, adapted to nesting output.
        """
        children: Dict[int, List[CallPair]] = {}
        for pair in self.pairs:
            if pair.parent is not None:
                children.setdefault(id(pair.parent), []).append(pair)

        correct: Set[int] = set()
        for root in self.roots():
            ids = set(root.request_ids())
            pure = len(ids) == 1
            stack = list(children.get(id(root), []))
            nested_count = 0
            while stack and pure:
                node = stack.pop()
                nested_count += 1
                node_ids = node.request_ids()
                if len(node_ids) != 1 or node_ids != ids:
                    pure = False
                    break
                stack.extend(children.get(id(node), []))
            if not pure or len(ids) != 1:
                continue
            request_id = next(iter(ids))
            truth = ground_truth.get(request_id)
            if truth is None:
                continue
            # The tree must cover every tier the oracle saw (no missing
            # sub-calls), otherwise the path is incomplete.
            covered = {ctx for ctx in self._tree_contexts(root, children)}
            if covered != truth.contexts:
                continue
            correct.add(request_id)
        if not ground_truth:
            return 1.0
        return len(correct) / len(ground_truth)

    def _tree_contexts(
        self, root: CallPair, children: Dict[int, List[CallPair]]
    ) -> Set[Tuple[str, str, int, int]]:
        contexts: Set[Tuple[str, str, int, int]] = set()
        stack = [root]
        while stack:
            node = stack.pop()
            for activity in (
                node.call_send,
                node.call_receive,
                node.return_send,
                node.return_receive,
            ):
                if activity is not None:
                    # Raw tuples, not interned keys: the comparison is
                    # against the ground-truth oracle's context sets.
                    contexts.add(activity.context.as_tuple())
            stack.extend(children.get(id(node), []))
        return contexts


def _pair_calls(activities: Sequence[Activity]) -> List[CallPair]:
    """Pair call and return messages per connection, in timestamp order.

    A "call" is traffic in the connection's forward direction; the next
    reverse-direction message on the same connection is its "return".
    BEGIN/END mark the frontend call/return of each client connection.
    """
    ordered = sorted(activities, key=lambda a: (a.timestamp, a.seq))
    # open calls per undirected connection, FIFO
    open_calls: Dict[Tuple, List[CallPair]] = {}
    # remember send halves waiting for their receive, per direction
    pending_send: Dict[Tuple[str, int, str, int], Activity] = {}
    pairs: List[CallPair] = []

    for activity in ordered:
        key = activity.message_key
        undirected = activity.message.undirected_key()
        if activity.type.is_send_like:
            pending_send[key] = activity
            continue
        send = pending_send.pop(key, None)
        if send is None:
            continue
        queue = open_calls.setdefault(undirected, [])
        if queue and queue[-1].return_send is None and _is_reverse(queue[-1], send):
            call = queue.pop()
            call.return_send = send
            call.return_receive = activity
        else:
            pair = CallPair(
                caller=send.component,
                callee=activity.component,
                call_send=send,
                call_receive=activity,
            )
            queue.append(pair)
            pairs.append(pair)
    return pairs


def _is_reverse(call: CallPair, send: Activity) -> bool:
    """Is ``send`` traffic in the opposite direction of ``call``'s request?"""
    return send.message.connection_key() == call.call_send.message.reversed_key()


def nesting_algorithm(activities: Sequence[Activity]) -> NestingResult:
    """Run the simplified nesting inference.

    Each call pair is assigned the *innermost* candidate parent: another
    call pair on the same callee component whose [start, end] interval
    contains it.  Ties are broken by the smallest enclosing interval, the
    same heuristic Project5's scoring favours.  Under concurrency several
    parents may contain a child, and the guess can be wrong -- which is the
    point of the comparison.
    """
    pairs = _pair_calls(activities)
    # index call pairs by the component that *received* the call: nested
    # calls originate from that component.
    by_callee: Dict[Tuple[str, str], List[CallPair]] = {}
    for pair in pairs:
        by_callee.setdefault(pair.callee, []).append(pair)

    for pair in pairs:
        candidates = by_callee.get(pair.caller, [])
        best: Optional[CallPair] = None
        best_span = float("inf")
        for candidate in candidates:
            if candidate is pair:
                continue
            if candidate.start <= pair.start and pair.end <= candidate.end:
                span = candidate.end - candidate.start
                if span < best_span:
                    best_span = span
                    best = candidate
        pair.parent = best
    return NestingResult(pairs=pairs)
