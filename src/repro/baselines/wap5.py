"""A WAP5-style probabilistic message-linking baseline.

WAP5 (Reynolds et al., WWW 2006) reconstructs causal paths from per-process
message traces by *guessing* which incoming message caused each outgoing
message: for every send it links the most recent receive in the same
process within a plausible service-time horizon, weighting shorter gaps as
more likely.  No payload, byte-count or connection bookkeeping is used, so
under concurrency two requests interleaved in one worker can easily be
cross-linked -- precisely the imprecision the paper contrasts itself with.

The implementation here works on the same :class:`repro.core.activity.Activity`
stream PreciseTracer consumes, so both can be scored with the same
ground-truth oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.accuracy import GroundTruthRequest
from ..core.activity import Activity, ActivityType


@dataclass(frozen=True)
class Wap5Config:
    """Tuning knobs of the probabilistic linker."""

    #: Longest believable delay between a cause and the message it triggers.
    max_causal_gap: float = 1.0
    #: Exponential decay constant for the link weight (seconds).
    decay: float = 0.050


@dataclass
class Wap5Path:
    """One inferred causal path (a tree flattened to its activity set)."""

    root: Activity
    activities: List[Activity] = field(default_factory=list)

    @property
    def begin_timestamp(self) -> float:
        return self.root.timestamp

    def request_ids(self) -> Set[int]:
        return {
            activity.request_id
            for activity in self.activities
            if activity.request_id is not None
        }

    def contexts(self) -> Set[Tuple[str, str, int, int]]:
        # Raw tuples, not interned keys: scoring compares against the
        # ground-truth oracle's context sets.
        return {activity.context.as_tuple() for activity in self.activities}


class Wap5Tracer:
    """Infer causal paths by probabilistic message linking."""

    def __init__(self, config: Optional[Wap5Config] = None) -> None:
        self.config = config or Wap5Config()

    # -- inference ----------------------------------------------------------

    def infer_paths(self, activities: Sequence[Activity]) -> List[Wap5Path]:
        """Infer one path per BEGIN activity.

        The linker walks forward in (timestamp-sorted) order:

        * an outgoing message (SEND/END) is attributed to the most recent,
          most plausible receive-like activity in the same *process*
          (pid, not thread -- WAP5 traces at process granularity);
        * a RECEIVE is attributed to the latest unmatched SEND on the same
          connection (it has no payload identifiers, so pipelined or
          segmented messages may be matched to the wrong send).
        """
        ordered = sorted(activities, key=lambda a: (a.timestamp, a.seq))
        # latest receive-like activities per process, newest last
        recent_inputs: Dict[Tuple[str, str, int], List[Activity]] = {}
        # unmatched sends per connection key, newest last
        open_sends: Dict[Tuple[str, int, str, int], List[Activity]] = {}
        parent: Dict[int, Optional[Activity]] = {}

        for activity in ordered:
            process_key = (
                activity.context.hostname,
                activity.context.program,
                activity.context.pid,
            )
            if activity.type.is_receive_like:
                cause = None
                if activity.type is ActivityType.RECEIVE:
                    candidates = open_sends.get(activity.message_key, [])
                    cause = candidates[-1] if candidates else None
                parent[id(activity)] = cause
                recent_inputs.setdefault(process_key, []).append(activity)
            else:
                cause = self._most_plausible_input(
                    recent_inputs.get(process_key, []), activity.timestamp
                )
                parent[id(activity)] = cause
                open_sends.setdefault(activity.message_key, []).append(activity)

        return self._assemble_paths(ordered, parent)

    def _most_plausible_input(
        self, inputs: Sequence[Activity], at: float
    ) -> Optional[Activity]:
        """Pick the input message most likely to have caused an output at ``at``."""
        best: Optional[Activity] = None
        best_weight = 0.0
        for candidate in reversed(inputs):
            gap = at - candidate.timestamp
            if gap < 0:
                continue
            if gap > self.config.max_causal_gap:
                break
            weight = math.exp(-gap / self.config.decay)
            if weight > best_weight:
                best_weight = weight
                best = candidate
        return best

    def _assemble_paths(
        self,
        ordered: Sequence[Activity],
        parent: Dict[int, Optional[Activity]],
    ) -> List[Wap5Path]:
        """Group activities into paths by following parent links to a BEGIN."""
        root_of: Dict[int, Optional[Activity]] = {}

        def find_root(activity: Activity) -> Optional[Activity]:
            chain: List[Activity] = []
            current: Optional[Activity] = activity
            while current is not None and id(current) not in root_of:
                chain.append(current)
                if current.type is ActivityType.BEGIN:
                    root_of[id(current)] = current
                    break
                current = parent.get(id(current))
            root = root_of.get(id(chain[-1])) if chain else None
            if root is None and current is not None:
                root = root_of.get(id(current))
            for visited in chain:
                root_of[id(visited)] = root
            return root

        paths: Dict[int, Wap5Path] = {}
        for activity in ordered:
            root = find_root(activity)
            if root is None:
                continue
            path = paths.get(id(root))
            if path is None:
                path = Wap5Path(root=root)
                paths[id(root)] = path
            path.activities.append(activity)
        return list(paths.values())

    # -- scoring -------------------------------------------------------------

    def path_accuracy(
        self,
        activities: Sequence[Activity],
        ground_truth: Dict[int, GroundTruthRequest],
        time_tolerance: float = 1e-6,
    ) -> float:
        """Score inferred paths with the paper's correctness criterion.

        A path counts as correct when it contains exactly the activities of
        one ground-truth request: a single request id and exactly the
        oracle's execution entities.
        """
        correct = 0
        claimed: Set[int] = set()
        for path in self.infer_paths(activities):
            ids = path.request_ids()
            if len(ids) != 1:
                continue
            request_id = next(iter(ids))
            truth = ground_truth.get(request_id)
            if truth is None or request_id in claimed:
                continue
            if path.contexts() != truth.contexts:
                continue
            if abs(path.begin_timestamp - truth.start_time) > time_tolerance:
                continue
            claimed.add(request_id)
            correct += 1
        if not ground_truth:
            return 1.0
        return correct / len(ground_truth)
