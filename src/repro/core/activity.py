"""Activity model for PreciseTracer.

An *activity* is one interaction event observed in the operating-system
kernel while a component of a multi-tier service handles a request.  The
paper (Section 3.1) defines four activity types:

* ``SEND``    -- a process sent a message on a TCP connection,
* ``RECEIVE`` -- a process received a message on a TCP connection,
* ``BEGIN``   -- the first RECEIVE of a new request at the frontend tier,
* ``END``     -- the SEND of the final response back to the client.

For each activity exactly four attributes are logged: the activity type,
a local timestamp, a *context identifier* (hostname, program name, pid,
tid) and a *message identifier* (sender ip:port, receiver ip:port, size).
This module defines the data structures for those attributes.  Everything
downstream (ranker, engine, CAG) consumes only these objects -- no
application knowledge ever leaks in, which is the paper's core premise.
"""

from __future__ import annotations

import enum
import itertools
import operator
from dataclasses import dataclass, field
from typing import Optional, Tuple


class ActivityType(enum.IntEnum):
    """The four activity types of Section 3.1.

    The integer values encode the candidate-selection priority of the
    ranker's Rule 2 (Section 4.1):

        BEGIN < SEND < END < RECEIVE < MAX

    A *lower* value means the activity should be delivered to the engine
    *earlier* when several queue heads compete.
    """

    BEGIN = 0
    SEND = 1
    END = 2
    RECEIVE = 3
    MAX = 4

    @property
    def is_send_like(self) -> bool:
        """True for activities that put bytes on the wire (SEND, END)."""
        return self in (ActivityType.SEND, ActivityType.END)

    @property
    def is_receive_like(self) -> bool:
        """True for activities that take bytes off the wire (RECEIVE, BEGIN)."""
        return self in (ActivityType.RECEIVE, ActivityType.BEGIN)


#: Rule 2 priority order, exposed for tests and documentation.
RULE2_PRIORITY: Tuple[ActivityType, ...] = (
    ActivityType.BEGIN,
    ActivityType.SEND,
    ActivityType.END,
    ActivityType.RECEIVE,
    ActivityType.MAX,
)


@dataclass(frozen=True, order=True, slots=True)
class ContextId:
    """The execution-entity identifier of an activity.

    The paper uses the tuple (hostname, program name, process id, thread
    id).  Two activities produced by the same process *and* thread share a
    context; the adjacent-context relation is defined within one context.
    """

    hostname: str
    program: str
    pid: int
    tid: int

    def as_tuple(self) -> Tuple[str, str, int, int]:
        """Return the raw 4-tuple used as ``cmap`` key."""
        return (self.hostname, self.program, self.pid, self.tid)

    @property
    def entity(self) -> Tuple[str, str, int, int]:
        """Alias for :meth:`as_tuple` (name used in older call sites)."""
        return self.as_tuple()

    @property
    def component(self) -> Tuple[str, str]:
        """The component identity used for pattern isomorphism.

        Different requests are handled by different worker processes or
        threads of the *same* component, so pattern classification only
        looks at (hostname, program) -- see Section 3.2.
        """
        return (self.hostname, self.program)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.hostname}/{self.program}[{self.pid}:{self.tid}]"


@dataclass(frozen=True, order=True, slots=True)
class MessageId:
    """The message identifier of an activity.

    The paper's tuple is (IP of sender, port of sender, IP of receiver,
    port of receiver, message size).  The size is *not* part of the
    matching key -- segmentation makes sender and receiver sizes differ --
    so :meth:`connection_key` strips it.
    """

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    size: int

    def connection_key(self) -> Tuple[str, int, str, int]:
        """Directional connection 4-tuple, the ``mmap`` key."""
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port)

    def reversed_key(self) -> Tuple[str, int, str, int]:
        """The 4-tuple of the opposite direction on the same connection."""
        return (self.dst_ip, self.dst_port, self.src_ip, self.src_port)

    def undirected_key(self) -> Tuple[Tuple[str, int], Tuple[str, int]]:
        """Connection identity irrespective of direction."""
        ends = sorted([(self.src_ip, self.src_port), (self.dst_ip, self.dst_port)])
        return (ends[0], ends[1])

    def with_size(self, size: int) -> "MessageId":
        """Return a copy carrying a different byte count."""
        return MessageId(self.src_ip, self.src_port, self.dst_ip, self.dst_port, size)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.src_ip}:{self.src_port}-"
            f"{self.dst_ip}:{self.dst_port}({self.size}B)"
        )


_activity_counter = itertools.count()


@dataclass(slots=True)
class Activity:
    """One logged kernel interaction event.

    Attributes
    ----------
    type:
        One of :class:`ActivityType`.
    timestamp:
        Local timestamp, in seconds, read from the clock of the node the
        activity was observed on.  Clock skew between nodes is expected
        and tolerated by the algorithm.
    context:
        The execution-entity identifier.
    message:
        The message identifier.  ``size`` is mutated by the engine while
        it merges segmented SEND/RECEIVE parts, so ``Activity`` keeps its
        own mutable ``size`` field initialised from the message id.
    request_id:
        Optional ground-truth request id.  It is *never* consulted by the
        tracing algorithm; it exists purely so that the accuracy
        evaluation (Section 5.2) can compare reconstructed causal paths
        against an oracle, exactly like the paper's modified RUBiS.

    The identity keys (``context_key``, ``message_key``, ``node_key``,
    ``priority``, ``send_like``) are looked up on every ranker and engine
    step, so they are computed once at construction and stored as plain
    slot attributes instead of being re-derived through properties --
    together with ``__slots__`` this is a large share of the correlation
    hot-path speedup.  Each key is the *interned dense int* assigned by
    :data:`repro.core.interning.INTERNER` for the underlying tuple /
    hostname identity: interning is injective and first-seen ordered, so
    every dict keyed by these attributes behaves exactly as with tuple
    keys, but hashes a machine int instead of a tuple of strings.  Code
    that needs the original identity (digests, sampling, cross-process
    export) resolves it from the immutable ``context`` / ``message``
    identifiers -- never from the ints, which are one process's ingest
    artefact.  All derived keys are excluded from equality.
    """

    type: ActivityType
    timestamp: float
    context: ContextId
    message: MessageId
    request_id: Optional[int] = None
    seq: int = field(default_factory=lambda: next(_activity_counter))

    # Mutable byte counter used by the engine's n-to-n merging.  It starts
    # as the logged message size and is adjusted as parts are merged.
    size: int = field(default=-1)

    #: Interned key used by the ``cmap`` (adjacent-context matching);
    #: resolve the raw 4-tuple via ``context.as_tuple()``.
    context_key: int = field(init=False, repr=False, compare=False)
    #: Interned key used by the ``mmap`` (message matching).  SEND
    #: activities are stored under their own direction; a RECEIVE looks up
    #: the *same* direction (the sender's ip:port still appears first in
    #: the receiver's log record), so both sides share one key.  Resolve
    #: the raw 4-tuple via ``message.connection_key()``.
    message_key: int = field(init=False, repr=False, compare=False)
    #: Interned key of the ranker queue this activity belongs to.  The
    #: paper groups activities "according to the IP addresses of the
    #: context identifiers"; activities observed on one node share one
    #: local clock and therefore one queue.  We intern the hostname, which
    #: identifies the node just as well as its IP.
    node_key: int = field(init=False, repr=False, compare=False)
    #: Rule 2 priority (smaller is delivered earlier).
    priority: int = field(init=False, repr=False, compare=False)
    #: Cached ``type.is_send_like`` (True for SEND and END).
    send_like: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        context = self.context
        message = self.message
        if self.size < 0:
            self.size = message.size
        # Inline fast path: already-interned keys (the overwhelmingly
        # common case past the first few activities) are one dict get;
        # only misses take the interner's lock.
        ckey = _context_ids.get(context.as_tuple())
        self.context_key = ckey if ckey is not None else _intern_context(context)
        mkey = _message_ids.get(message.connection_key())
        self.message_key = (
            mkey if mkey is not None else _intern_message_key(message.connection_key())
        )
        nkey = _node_ids.get(context.hostname)
        self.node_key = nkey if nkey is not None else _intern_node(context.hostname)
        self.priority = int(self.type)
        self.send_like = self.type is ActivityType.SEND or self.type is ActivityType.END

    # -- identity helpers -------------------------------------------------

    @property
    def component(self) -> Tuple[str, str]:
        """(hostname, program) of the observing component."""
        return self.context.component

    def is_noise_candidate(self) -> bool:
        """Whether this activity could possibly be classified as noise.

        Only receive-like activities are ever discarded by ``is_noise``;
        send-like noise is harmless because nothing will ever match it and
        it simply ages out of the mmap.
        """
        return self.type is ActivityType.RECEIVE

    def clone(self) -> "Activity":
        """Deep-ish copy used by tests and the baselines."""
        return Activity(
            type=self.type,
            timestamp=self.timestamp,
            context=self.context,
            message=self.message,
            request_id=self.request_id,
            size=self.size,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Activity({self.type.name}, t={self.timestamp:.6f}, "
            f"ctx={self.context}, msg={self.message})"
        )


#: Stable sort key for activities observed on one node: within one node
#: the local clock orders activities; ties (possible when timestamps are
#: coarse) are broken by type priority and then by the monotone sequence
#: number assigned at creation, which preserves log order.  Implemented
#: with :func:`operator.attrgetter` so per-node sorting (the paper's step
#: 1, run over every activity) extracts the key tuple in C.
sort_key = operator.attrgetter("timestamp", "priority", "seq")


# Interned-key plumbing, imported at the bottom to break the module
# cycle (interning.py materialises ContextId/MessageId lazily from this
# module).  ``__post_init__`` resolves these names as module globals at
# call time, so binding them after the class definitions is safe.  The
# direct dict references save an attribute hop on the hit path; they
# stay valid because ``KeyInterner`` only ever mutates its maps in
# place (append-only), never rebinds them.
from .interning import INTERNER  # noqa: E402

_context_ids = INTERNER._context_ids
_message_ids = INTERNER._message_ids
_node_ids = INTERNER._node_ids
_intern_context = INTERNER.intern_context
_intern_message_key = INTERNER.intern_message_key
_intern_node = INTERNER.intern_node
