"""Performance debugging from latency-percentage changes (Section 5.4).

The paper's debugging workflow is:

1. pick the most frequent causal-path pattern (e.g. ViewItem),
2. compute the average causal path and the latency percentage of every
   component / interaction segment,
3. compare the percentages against a reference profile (a healthy run, or
   a lower concurrency level) and look for segments whose share of the
   end-to-end latency grew dramatically,
4. map the offending segment back to a tier or to an interaction between
   tiers.

This module turns that workflow into a small API: :class:`LatencyProfile`
captures step 1-2, :func:`compare_profiles` captures step 3, and
:class:`Diagnosis` / :func:`diagnose` capture step 4 by ranking segments
and describing them in terms of components and interactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .cag import CAG
from .latency import LatencyBreakdown, average_breakdown
from .patterns import PathPattern, dominant_pattern


@dataclass
class LatencyProfile:
    """Latency percentages of one scenario (one pattern, one load level)."""

    name: str
    breakdown: LatencyBreakdown
    request_count: int = 0

    @property
    def percentages(self) -> Dict[str, float]:
        return self.breakdown.percentages()

    @property
    def average_latency(self) -> float:
        return self.breakdown.total

    def percentage(self, label: str) -> float:
        return self.breakdown.percentage(label)

    @classmethod
    def from_cags(cls, name: str, cags: Sequence[CAG]) -> "LatencyProfile":
        """Profile an explicit CAG collection (already filtered to a pattern)."""
        return cls(name=name, breakdown=average_breakdown(cags), request_count=len(cags))

    @classmethod
    def from_pattern(cls, name: str, pattern: PathPattern) -> "LatencyProfile":
        return cls(name=name, breakdown=pattern.average_path(), request_count=pattern.count)

    @classmethod
    def from_dominant_pattern(cls, name: str, cags: Sequence[CAG]) -> "LatencyProfile":
        """Profile the most frequent pattern of a full trace, the paper's
        default choice (the ViewItem analogue)."""
        pattern = dominant_pattern(cags)
        if pattern is None:
            return cls(name=name, breakdown=LatencyBreakdown(), request_count=0)
        return cls.from_pattern(name, pattern)


@dataclass
class SegmentChange:
    """The change of one segment between a reference and an observed run."""

    label: str
    reference_pct: float
    observed_pct: float

    @property
    def delta(self) -> float:
        """Change in percentage points."""
        return self.observed_pct - self.reference_pct

    @property
    def is_interaction(self) -> bool:
        """True when the segment is an interaction between two components."""
        left, _, right = self.label.partition("2")
        return left != right

    def involved_components(self) -> Tuple[str, ...]:
        left, _, right = self.label.partition("2")
        return (left,) if left == right else (left, right)

    def describe(self) -> str:
        kind = "interaction" if self.is_interaction else "component"
        return (
            f"{self.label} ({kind}): {self.reference_pct:.1f}% -> "
            f"{self.observed_pct:.1f}% ({self.delta:+.1f} points)"
        )


def compare_profiles(
    reference: LatencyProfile, observed: LatencyProfile
) -> List[SegmentChange]:
    """Per-segment percentage changes, largest increase first."""
    labels = sorted(set(reference.percentages) | set(observed.percentages))
    changes = [
        SegmentChange(
            label=label,
            reference_pct=reference.percentages.get(label, 0.0),
            observed_pct=observed.percentages.get(label, 0.0),
        )
        for label in labels
    ]
    changes.sort(key=lambda change: change.delta, reverse=True)
    return changes


@dataclass
class Diagnosis:
    """Outcome of a performance-debugging comparison."""

    reference: LatencyProfile
    observed: LatencyProfile
    changes: List[SegmentChange]
    threshold: float

    @property
    def anomalous_changes(self) -> List[SegmentChange]:
        """Segments whose share grew by at least ``threshold`` points."""
        return [change for change in self.changes if change.delta >= self.threshold]

    @property
    def has_anomaly(self) -> bool:
        return bool(self.anomalous_changes)

    @property
    def primary_suspect(self) -> Optional[SegmentChange]:
        anomalies = self.anomalous_changes
        return anomalies[0] if anomalies else None

    def suspected_components(self) -> List[str]:
        """Components implicated by the anomalous segments, most suspect
        first.  A component gets credit for every anomalous segment it
        participates in, weighted by the segment's percentage-point growth;
        this mirrors the paper's reasoning in Section 5.4 (e.g. for the
        EJB_Network case all segments touching the second tier grow)."""
        scores: Dict[str, float] = {}
        for change in self.anomalous_changes:
            for component in change.involved_components():
                scores[component] = scores.get(component, 0.0) + change.delta
        return [name for name, _ in sorted(scores.items(), key=lambda kv: -kv[1])]

    def report(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"Performance diagnosis: {self.observed.name} vs {self.reference.name}",
            f"  reference requests: {self.reference.request_count}, "
            f"observed requests: {self.observed.request_count}",
            f"  average latency: {self.reference.average_latency * 1000:.1f} ms -> "
            f"{self.observed.average_latency * 1000:.1f} ms",
        ]
        if not self.has_anomaly:
            lines.append("  no segment grew beyond the threshold; behaviour is comparable")
            return "\n".join(lines)
        lines.append("  anomalous segments (share of end-to-end latency):")
        for change in self.anomalous_changes:
            lines.append(f"    - {change.describe()}")
        suspects = self.suspected_components()
        if suspects:
            lines.append(f"  suspected component(s): {', '.join(suspects)}")
        return "\n".join(lines)


def diagnose(
    reference: LatencyProfile,
    observed: LatencyProfile,
    threshold: float = 10.0,
) -> Diagnosis:
    """Compare two profiles and flag segments growing by >= ``threshold``
    percentage points (the paper's examples involve jumps of 10+ points)."""
    changes = compare_profiles(reference, observed)
    return Diagnosis(
        reference=reference,
        observed=observed,
        changes=changes,
        threshold=threshold,
    )


def profile_series(
    runs: Mapping[str, Sequence[CAG]],
    use_dominant_pattern: bool = True,
) -> Dict[str, LatencyProfile]:
    """Build one profile per named run (e.g. per client count or per fault
    scenario), the shape needed for Fig. 15 / Fig. 17 style tables."""
    profiles: Dict[str, LatencyProfile] = {}
    for name, cags in runs.items():
        if use_dominant_pattern:
            profiles[name] = LatencyProfile.from_dominant_pattern(name, cags)
        else:
            profiles[name] = LatencyProfile.from_cags(name, cags)
    return profiles
