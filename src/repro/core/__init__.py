"""Core of the PreciseTracer reproduction.

This package contains the paper's primary contribution: the precise
request-tracing algorithm (ranker + engine), the Component Activity Graph
abstraction, and the analysis layer built on top of it (pattern
classification, latency percentages, performance debugging, accuracy
scoring).
"""

from .accuracy import AccuracyReport, GroundTruthRequest, PathJudgement, path_accuracy
from .activity import Activity, ActivityType, ContextId, MessageId, RULE2_PRIORITY
from .cag import CAG, CAGError, CONTEXT_EDGE, Edge, MESSAGE_EDGE
from .correlator import CorrelationResult, Correlator
from .debugging import (
    Diagnosis,
    LatencyProfile,
    SegmentChange,
    compare_profiles,
    diagnose,
    profile_series,
)
from .engine import CorrelationEngine, EngineStats
from .export import cag_to_dict, cag_to_dot, cag_to_json, trace_summary, trace_summary_json
from .index_maps import ContextMap, MessageMap
from .latency import (
    LatencyBreakdown,
    average_breakdown,
    average_duration,
    breakdown_for_cag,
    percentage_table,
    segment_label,
)
from .log_format import (
    ActivityClassifier,
    FrontendSpec,
    LogFormatError,
    RawRecord,
    format_record,
    load_activities,
    parse_log,
    parse_record,
)
from .patterns import PathPattern, PatternClassifier, cag_signature, classify, dominant_pattern
from .ranker import Ranker, RankerStats
from .tracer import PreciseTracer, TraceResult

__all__ = [
    "AccuracyReport",
    "Activity",
    "ActivityClassifier",
    "ActivityType",
    "CAG",
    "CAGError",
    "CONTEXT_EDGE",
    "ContextId",
    "ContextMap",
    "CorrelationEngine",
    "CorrelationResult",
    "Correlator",
    "Diagnosis",
    "Edge",
    "EngineStats",
    "FrontendSpec",
    "GroundTruthRequest",
    "LatencyBreakdown",
    "LatencyProfile",
    "LogFormatError",
    "MESSAGE_EDGE",
    "MessageId",
    "MessageMap",
    "PathJudgement",
    "PathPattern",
    "PatternClassifier",
    "PreciseTracer",
    "RULE2_PRIORITY",
    "Ranker",
    "RankerStats",
    "RawRecord",
    "SegmentChange",
    "TraceResult",
    "average_breakdown",
    "average_duration",
    "breakdown_for_cag",
    "cag_signature",
    "cag_to_dict",
    "cag_to_dot",
    "cag_to_json",
    "trace_summary",
    "trace_summary_json",
    "classify",
    "compare_profiles",
    "diagnose",
    "dominant_pattern",
    "format_record",
    "load_activities",
    "parse_log",
    "parse_record",
    "path_accuracy",
    "percentage_table",
    "profile_series",
    "segment_label",
]
