"""The ranker: candidate selection for CAG construction (Section 4.1).

The ranker merges the per-node activity streams into one stream of
*candidates* that the engine consumes.  It never relies on synchronised
clocks: activities are kept in per-node queues ordered by each node's own
local clock, and a sliding time window (whose size may be any positive
value) bounds how much of each stream is buffered at once.

Candidate selection follows the paper's two rules:

* **Rule 1** -- if the head of some queue is a RECEIVE whose matching SEND
  has already been delivered to the engine (i.e. it sits in the engine's
  ``mmap``), that RECEIVE is the candidate.
* **Rule 2** -- otherwise the head with the lowest type priority
  (``BEGIN < SEND < END < RECEIVE < MAX``) is the candidate, which
  guarantees that a SEND is always delivered before the RECEIVE it pairs
  with.

Two disturbances are tolerated (Section 4.3):

* **noise activities** -- RECEIVEs for which no matching SEND exists either
  in the ``mmap`` or anywhere in the ranker buffer are discarded
  (``is_noise``); attribute-based filtering happens earlier, in
  :class:`repro.core.log_format.ActivityClassifier`.
* **concurrency disturbance** -- on multi-processor nodes two queues can
  both be headed by RECEIVEs that block each other's matching SENDs; the
  ranker resolves this by moving the blocking SEND in front of its queue
  (the generalisation of the head-swap of Fig. 6).
"""

from __future__ import annotations

import math
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from .activity import Activity, ActivityType, sort_key
from .index_maps import MessageMap


@dataclass
class RankerStats:
    """Counters exposed for evaluation and debugging."""

    delivered: int = 0
    noise_discarded: int = 0
    rule1_selections: int = 0
    rule2_selections: int = 0
    head_swaps: int = 0
    window_refills: int = 0
    max_buffered: int = 0


class ActivitySource:
    """A per-node stream of activities sorted by the node's local clock."""

    def __init__(self, node: str, activities: Sequence[Activity]) -> None:
        self.node = node
        self._activities: List[Activity] = sorted(activities, key=sort_key)
        self._position = 0
        # Message keys of send-like activities not yet fetched, kept as a
        # counter so the noise test stays O(1) per source instead of
        # rescanning the remaining stream for every RECEIVE head.
        self._future_send_keys: Counter = Counter(
            activity.message_key
            for activity in self._activities
            if activity.type.is_send_like
        )

    def __len__(self) -> int:
        return len(self._activities) - self._position

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._activities)

    def peek_timestamp(self) -> Optional[float]:
        if self.exhausted:
            return None
        return self._activities[self._position].timestamp

    def take_until(self, limit: float) -> List[Activity]:
        """Pop and return every remaining activity with timestamp <= limit."""
        taken: List[Activity] = []
        while not self.exhausted and self._activities[self._position].timestamp <= limit:
            taken.append(self._activities[self._position])
            self._position += 1
        for activity in taken:
            self._note_fetched(activity)
        return taken

    def take_one(self) -> Optional[Activity]:
        """Pop a single activity regardless of the window (used to make
        progress when the window is smaller than the inter-activity gap)."""
        if self.exhausted:
            return None
        activity = self._activities[self._position]
        self._position += 1
        self._note_fetched(activity)
        return activity

    def has_future_send(self, key: Tuple[str, int, str, int]) -> bool:
        """Is a send-like activity with ``key`` still awaiting fetch?"""
        return self._future_send_keys.get(key, 0) > 0

    def take_through_send(self, key: Tuple[str, int, str, int]) -> List[Activity]:
        """Pop activities up to and including the next send-like one with ``key``.

        Used to resolve the case where a RECEIVE surfaced at a queue head
        while, because of clock skew larger than the window, its matching
        SEND has not even been fetched from its node's stream yet.  All
        immediately-following parts of the same segmented send are pulled
        along with it, so the byte balance can complete without waiting for
        the window to catch up.
        """
        taken: List[Activity] = []
        if not self.has_future_send(key):
            return taken
        while not self.exhausted:
            activity = self.take_one()
            if activity is None:
                break
            taken.append(activity)
            if activity.type.is_send_like and activity.message_key == key:
                # pull the remaining consecutive parts of this send, if any
                while not self.exhausted:
                    following = self._activities[self._position]
                    if not (following.type.is_send_like and following.message_key == key):
                        break
                    taken.append(self.take_one())
                break
        return taken

    def _note_fetched(self, activity: Activity) -> None:
        if activity.type.is_send_like:
            count = self._future_send_keys.get(activity.message_key, 0)
            if count <= 1:
                self._future_send_keys.pop(activity.message_key, None)
            else:
                self._future_send_keys[activity.message_key] = count - 1


class Ranker:
    """Merge per-node streams into a single candidate stream.

    Parameters
    ----------
    sources:
        Mapping from node name to the node's activity list (any order; the
        ranker sorts by local timestamp, which is the paper's step 1).
    mmap:
        The engine's message map, consulted by Rule 1 and ``is_noise``.
    window:
        Size of the sliding time window in seconds.  Any positive value is
        legal; larger windows buffer more activities (more memory, more
        work per step) but the output is identical -- a property the
        evaluation (Fig. 10/11) explores.
    """

    def __init__(
        self,
        sources: Dict[str, Sequence[Activity]],
        mmap: MessageMap,
        window: float = 0.010,
    ) -> None:
        if window <= 0:
            raise ValueError("the sliding time window must be positive")
        self._window = window
        self._mmap = mmap
        # Delivery ceiling (local-timestamp watermark).  The batch ranker
        # leaves it at +inf, which makes every check below a no-op.  The
        # streaming ranker (repro.stream) lowers it to the highest local
        # timestamp whose candidate-selection decisions can no longer be
        # changed by activities that have not been ingested yet; ``rank()``
        # then returns ``None`` ("stalled") instead of committing a
        # decision it might have to take back.
        self.ceiling: float = math.inf
        self._sources: Dict[str, ActivitySource] = {
            node: ActivitySource(node, activities)
            for node, activities in sources.items()
        }
        self._queues: Dict[str, Deque[Activity]] = {
            node: deque() for node in self._sources
        }
        # Counter of send-like message keys currently sitting in the
        # queues, so the noise test does not rescan every queue.
        self._buffered_send_keys: Counter = Counter()
        self.stats = RankerStats()

    # -- public API ---------------------------------------------------------

    @property
    def window(self) -> float:
        return self._window

    def buffered_count(self) -> int:
        """Number of activities currently buffered in the ranker queues."""
        return sum(len(queue) for queue in self._queues.values())

    def buffered_activities(self) -> Iterable[Activity]:
        for queue in self._queues.values():
            yield from queue

    def exhausted(self) -> bool:
        """True once every source and every queue is empty."""
        return self.buffered_count() == 0 and all(
            source.exhausted for source in self._sources.values()
        )

    def rank(self) -> Optional[Activity]:
        """Return the next candidate activity, or ``None`` when done.

        This is the ``ranker.rank()`` of the correlation pseudo-code.  The
        selection differs from the paper's Rule 2 in one respect needed to
        honour the claim that the window size is independent of clock
        skew: a head RECEIVE whose matching SEND exists but has not been
        delivered yet (it is buffered behind another head, or not even
        fetched because its node's clock runs far ahead) is never selected.
        Instead the ranker either selects another head, pulls the sender's
        stream forward, or -- in the true concurrency-disturbance case of
        Fig. 6 -- promotes the blocking SEND within its queue, which is the
        paper's head swap generalised to arbitrary queue positions.
        """
        streaming = self.ceiling != math.inf
        while True:
            self._refill()
            heads = self._heads()
            if not heads:
                if self.exhausted():
                    return None
                # Window too small to admit any activity: force progress by
                # admitting the globally earliest unfetched activity.  In
                # streaming mode the earliest unfetched activity may sit
                # above the ceiling; then stall instead.
                if not self._force_fetch_one():
                    return None
                continue

            if streaming and all(h.timestamp > self.ceiling for _, h in heads):
                return None  # nothing decidable yet: wait for the watermark

            candidate = self._select_rule1(heads)
            if candidate is not None:
                if candidate[1].timestamp > self.ceiling:
                    return None
                self.stats.rule1_selections += 1
                return self._deliver(candidate)

            discarded = self._discard_noise(heads)
            if discarded:
                continue

            eligible = [
                (node, head)
                for node, head in heads
                if not self._is_blocked_receive(head)
            ]
            if eligible:
                choice = self._select_rule2(eligible)
                if choice[1].timestamp > self.ceiling:
                    return None
                self.stats.rule2_selections += 1
                return self._deliver(choice)

            # Every head is a RECEIVE blocked on an undelivered SEND:
            # resolve the disturbance and try again.  Only heads below the
            # ceiling are acted on in streaming mode -- for newer heads the
            # blocking SEND may not have been ingested yet.
            resolvable = (
                [(n, h) for n, h in heads if h.timestamp <= self.ceiling]
                if streaming
                else heads
            )
            if resolvable and self._resolve_blockage(resolvable):
                continue

            if streaming:
                # The blocking SENDs have not been ingested yet; delivering
                # the RECEIVEs now would misclassify them.  Stall until the
                # sender's stream catches up (or until flush lifts the
                # ceiling and the batch fallback below applies).
                return None

            # Could not make progress (should not happen with well-formed
            # traces); fall back to plain Rule 2 so the ranker never stalls.
            choice = self._select_rule2(heads)
            self.stats.rule2_selections += 1
            return self._deliver(choice)

    # -- window management ----------------------------------------------------

    def _refill(self) -> None:
        """Fetch into the queues every activity within the sliding window.

        The lower edge of the window is the minimal local timestamp among
        the queue heads and the next unfetched activity of every source
        (Section 4.1: after a candidate is popped "the ranker will update
        the new minimal timestamp ... and fetch new qualified activities").
        """
        low = self._window_low()
        if low is None:
            return
        limit = low + self._window
        fetched = False
        for node, source in self._sources.items():
            taken = source.take_until(limit)
            if taken:
                fetched = True
                self._queues[node].extend(taken)
                for activity in taken:
                    if activity.type.is_send_like:
                        self._buffered_send_keys[activity.message_key] += 1
        if fetched:
            self.stats.window_refills += 1
            self.stats.max_buffered = max(self.stats.max_buffered, self.buffered_count())

    def _window_low(self) -> Optional[float]:
        candidates: List[float] = []
        for node, queue in self._queues.items():
            if queue:
                candidates.append(queue[0].timestamp)
            else:
                ts = self._sources[node].peek_timestamp()
                if ts is not None:
                    candidates.append(ts)
        if not candidates:
            return None
        return min(candidates)

    def _force_fetch_one(self) -> bool:
        """Admit the earliest unfetched activity when the window admits none.

        Returns ``False`` when nothing was admitted -- either every source
        is drained, or (streaming mode) the earliest unfetched activity is
        above the delivery ceiling and must wait for the watermark.
        """
        best_node: Optional[str] = None
        best_ts: Optional[float] = None
        for node, source in self._sources.items():
            ts = source.peek_timestamp()
            if ts is None:
                continue
            if best_ts is None or ts < best_ts:
                best_ts = ts
                best_node = node
        if best_node is None or best_ts is None or best_ts > self.ceiling:
            return False
        activity = self._sources[best_node].take_one()
        if activity is not None:
            self._queues[best_node].append(activity)
            if activity.type.is_send_like:
                self._buffered_send_keys[activity.message_key] += 1
            self.stats.max_buffered = max(self.stats.max_buffered, self.buffered_count())
        return True

    # -- candidate selection ----------------------------------------------------

    def _heads(self) -> List[Tuple[str, Activity]]:
        return [(node, queue[0]) for node, queue in self._queues.items() if queue]

    def _select_rule1(
        self, heads: Sequence[Tuple[str, Activity]]
    ) -> Optional[Tuple[str, Activity]]:
        """Rule 1: a head RECEIVE whose SEND already sits in the mmap."""
        best: Optional[Tuple[str, Activity]] = None
        for node, head in heads:
            if head.type is not ActivityType.RECEIVE:
                continue
            if self._mmap.has_match(head.message_key):
                if best is None or head.timestamp < best[1].timestamp:
                    best = (node, head)
        return best

    def _select_rule2(
        self, heads: Sequence[Tuple[str, Activity]]
    ) -> Tuple[str, Activity]:
        """Rule 2: the head with the lowest type priority.

        Ties are broken by the local timestamp so the output is
        deterministic; with correct priorities the result does not depend
        on how ties break (any order of causally-unrelated activities is
        acceptable to the engine).
        """
        return min(heads, key=lambda item: (item[1].priority, item[1].timestamp, item[1].seq))

    def _deliver(self, chosen: Tuple[str, Activity]) -> Activity:
        node, activity = chosen
        queue = self._queues[node]
        if queue and queue[0] is activity:
            queue.popleft()
        else:  # the activity was rotated to the front by the swap logic
            queue.remove(activity)
        self._note_dequeued(activity)
        self.stats.delivered += 1
        return activity

    def _note_dequeued(self, activity: Activity) -> None:
        if activity.type.is_send_like:
            count = self._buffered_send_keys.get(activity.message_key, 0)
            if count <= 1:
                self._buffered_send_keys.pop(activity.message_key, None)
            else:
                self._buffered_send_keys[activity.message_key] = count - 1

    # -- noise handling -----------------------------------------------------------

    def is_noise(self, activity: Activity) -> bool:
        """The ``is_noise`` predicate of Fig. 5.

        A RECEIVE is noise when no matching SEND exists either in the
        engine's mmap or anywhere in the ranker buffer.  BEGIN activities
        are never noise: their senders (external clients) are outside the
        traced perimeter by definition.
        """
        if activity.type is not ActivityType.RECEIVE:
            return False
        if self._mmap.has_match(activity.message_key):
            return False
        return not self._buffer_has_matching_send(activity)

    def _buffer_has_matching_send(self, receive: Activity) -> bool:
        key = receive.message_key
        if self._buffered_send_keys.get(key, 0) > 0:
            return True
        # A matching SEND may also still be outside the window on its own
        # node; consult each source's future-send index so that a small
        # window does not misclassify legitimate traffic as noise.
        for source in self._sources.values():
            if source.has_future_send(key):
                return True
        return False

    def _discard_noise(self, heads: Sequence[Tuple[str, Activity]]) -> bool:
        """Drop every head that is noise.  Returns True if anything was
        discarded (the caller then restarts selection).

        Heads above the delivery ceiling are never discarded: their
        matching SEND may simply not have been ingested yet, so the
        ``is_noise`` verdict is not final until the watermark passes them.
        """
        discarded = False
        for node, head in heads:
            if head.timestamp > self.ceiling:
                continue
            if head.type is ActivityType.RECEIVE and self.is_noise(head):
                self._queues[node].popleft()
                self.stats.noise_discarded += 1
                discarded = True
        return discarded

    # -- concurrency disturbance -----------------------------------------------------

    def _is_blocked_receive(self, activity: Activity) -> bool:
        """A RECEIVE selected by Rule 2 whose matching SEND exists but has
        not been delivered to the engine yet (it is still buffered, or not
        even fetched because the sender's clock runs ahead of the window)
        is *blocked*: delivering it now would fail to correlate."""
        if activity.type is not ActivityType.RECEIVE:
            return False
        if self._mmap.has_match(activity.message_key):
            return False
        if self._find_buffered_send(activity) is not None:
            return True
        return any(
            source.has_future_send(activity.message_key)
            for source in self._sources.values()
        )

    def _find_buffered_send(self, receive: Activity) -> Optional[Tuple[str, Activity]]:
        key = receive.message_key
        for node, queue in self._queues.items():
            for other in queue:
                if other.type.is_send_like and other.message_key == key:
                    return (node, other)
        return None

    def _resolve_blockage(self, heads: Sequence[Tuple[str, Activity]]) -> bool:
        """Make progress when every queue head is a blocked RECEIVE.

        Two mechanisms, tried in order for each blocked head:

        1. If the matching SEND has not been fetched yet (the sender's
           clock runs ahead of the window), pull the sender's stream
           forward up to and including that SEND.  The SEND's own causal
           predecessors are pulled with it and keep their relative order,
           so per-context ordering is preserved.
        2. If the matching SEND is already buffered behind another head
           (the Fig. 6 concurrency disturbance), promote it to the front
           of its queue -- but only when no activity ahead of it belongs
           to the same execution entity, because reordering within one
           context would fabricate a wrong adjacent-context relation.

        Returns True when any queue changed, so the caller re-runs
        candidate selection.
        """
        for _node, head in heads:
            key = head.message_key
            for source_node, source in self._sources.items():
                if not source.has_future_send(key):
                    continue
                taken = source.take_through_send(key)
                if not taken:
                    continue
                self._queues[source_node].extend(taken)
                for activity in taken:
                    if activity.type.is_send_like:
                        self._buffered_send_keys[activity.message_key] += 1
                self.stats.max_buffered = max(
                    self.stats.max_buffered, self.buffered_count()
                )
                return True

        for _node, head in heads:
            found = self._find_buffered_send(head)
            if found is None:
                continue
            queue_node, send = found
            queue = self._queues[queue_node]
            if queue[0] is send:
                continue
            ahead_same_context = False
            for other in queue:
                if other is send:
                    break
                if other.context_key == send.context_key:
                    ahead_same_context = True
                    break
            if ahead_same_context:
                continue
            queue.remove(send)
            queue.appendleft(send)
            self.stats.head_swaps += 1
            return True
        return False
