"""The ranker: candidate selection for CAG construction (Section 4.1).

The ranker merges the per-node activity streams into one stream of
*candidates* that the engine consumes.  It never relies on synchronised
clocks: activities are kept in per-node queues ordered by each node's own
local clock, and a sliding time window (whose size may be any positive
value) bounds how much of each stream is buffered at once.

Candidate selection follows the paper's two rules:

* **Rule 1** -- if the head of some queue is a RECEIVE whose matching SEND
  has already been delivered to the engine (i.e. it sits in the engine's
  ``mmap``), that RECEIVE is the candidate.
* **Rule 2** -- otherwise the head with the lowest type priority
  (``BEGIN < SEND < END < RECEIVE < MAX``) is the candidate, which
  guarantees that a SEND is always delivered before the RECEIVE it pairs
  with.

Two disturbances are tolerated (Section 4.3):

* **noise activities** -- RECEIVEs for which no matching SEND exists either
  in the ``mmap`` or anywhere in the ranker buffer are discarded
  (``is_noise``); attribute-based filtering happens earlier, in
  :class:`repro.core.log_format.ActivityClassifier`.
* **concurrency disturbance** -- on multi-processor nodes two queues can
  both be headed by RECEIVEs that block each other's matching SENDs; the
  ranker resolves this by moving the blocking SEND in front of its queue
  (the generalisation of the head-swap of Fig. 6).

Hot-path data structures
------------------------

Every selection decision used to rescan the per-source / per-queue state;
the ranker now keeps three global indexes so each check is O(1) instead
of O(sources) or O(buffered activities):

* a **global future-send registry** (one counter shared by every source)
  answers "does a matching SEND still await fetch on *any* node?" without
  touching the sources -- this is the hot half of ``is_noise`` and of the
  blocked-RECEIVE test;
* a **buffered-send index** keyed by message key, holding per-node FIFO
  deques of the buffered SENDs in queue order, answers the other half and
  gives blockage resolution the (node, position-in-queue-order) of the
  blocking SEND without walking every queue;
* the **window low edge** is a cached minimum, recomputed (over the head
  of each queue and each source frontier) only after a mutation that can
  move it -- a delivery, a discard, a fetch, a promotion or an ingest --
  instead of on every ``rank()`` call.

All three are pure indexes: they never change which candidate is
selected, a property the batch/streaming equivalence tests pin down.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from .activity import Activity, ActivityType, sort_key
from .index_maps import MessageMap
from .kernel import DISCARD, EMPTY, RULE1, STALL, kernel_info

#: Interned message key (see :mod:`repro.core.interning`).
MessageKey = int


@dataclass
class RankerStats:
    """Counters exposed for evaluation and debugging."""

    delivered: int = 0
    noise_discarded: int = 0
    rule1_selections: int = 0
    rule2_selections: int = 0
    head_swaps: int = 0
    window_refills: int = 0
    max_buffered: int = 0


class ActivitySource:
    """A per-node stream of activities sorted by the node's local clock.

    ``registry`` is the owning ranker's global future-send counter; the
    source keeps it in sync with its own per-source counter so the ranker
    can answer "any source still holds a SEND for this key?" in O(1).

    Internally the stream is shadowed by two struct-like parallel lists
    -- timestamps and (send-like only) interned message keys -- so the
    per-``rank()`` window fetch is a :func:`bisect.bisect_right` over a
    flat float list plus one slice, instead of an attribute-chasing loop
    over activity objects.
    """

    def __init__(
        self,
        node,
        activities: Sequence[Activity],
        registry: Optional[Counter] = None,
    ) -> None:
        self.node = node
        self._activities: List[Activity] = sorted(activities, key=sort_key)
        self._position = 0
        self._registry = registry
        # Columnar shadows of the sorted stream.  ``_ts`` is nondecreasing
        # (the sort key leads with the timestamp), which is what lets
        # ``take_until`` bisect.  ``_send_keys`` holds the interned message
        # key for send-like rows and None otherwise, so the counter
        # bookkeeping below never re-reads the activity objects.
        self._ts: List[float] = [a.timestamp for a in self._activities]
        self._send_keys: List[Optional[int]] = [
            a.message_key if a.send_like else None for a in self._activities
        ]
        # Message keys of send-like activities not yet fetched, kept as a
        # counter so the noise test stays O(1) per source instead of
        # rescanning the remaining stream for every RECEIVE head.
        self._future_send_keys: Counter = Counter(
            key for key in self._send_keys if key is not None
        )
        if registry is not None:
            registry.update(self._future_send_keys)
        #: Local timestamp of the next unfetched activity (None when
        #: exhausted).  A plain attribute so the ranker's refill loop can
        #: read it without a method call.
        self.next_timestamp: Optional[float] = (
            self._ts[0] if self._ts else None
        )

    def __len__(self) -> int:
        return len(self._activities) - self._position

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._activities)

    def peek_timestamp(self) -> Optional[float]:
        return self.next_timestamp

    def take_until(self, limit: float) -> List[Activity]:
        """Pop and return every remaining activity with timestamp <= limit.

        ``_ts`` is nondecreasing, so the scan is one bisect over the flat
        timestamp column followed by a slice -- the window fetch never
        touches the activity objects themselves.
        """
        position = self._position
        end = bisect_right(self._ts, limit, position)
        if end == position:
            return []
        taken = self._activities[position:end]
        self._position = end
        self._discard_fetched_sends(position, end)
        self._sync_next_timestamp()
        return taken

    def take_one(self) -> Optional[Activity]:
        """Pop a single activity regardless of the window (used to make
        progress when the window is smaller than the inter-activity gap)."""
        position = self._position
        if position >= len(self._activities):
            return None
        activity = self._activities[position]
        self._position = position + 1
        key = self._send_keys[position]
        if key is not None:
            self._discard_future_send(key)
        self._sync_next_timestamp()
        return activity

    def has_future_send(self, key: MessageKey) -> bool:
        """Is a send-like activity with ``key`` still awaiting fetch?"""
        return self._future_send_keys.get(key, 0) > 0

    def take_through_send(self, key: MessageKey) -> List[Activity]:
        """Pop activities up to and including the next send-like one with ``key``.

        Used to resolve the case where a RECEIVE surfaced at a queue head
        while, because of clock skew larger than the window, its matching
        SEND has not even been fetched from its node's stream yet.  All
        immediately-following parts of the same segmented send are pulled
        along with it, so the byte balance can complete without waiting for
        the window to catch up.
        """
        if not self.has_future_send(key):
            return []
        # Scan the send-key column for the first matching send, then pull
        # the consecutive same-key parts right behind it.
        send_keys = self._send_keys
        end = len(send_keys)
        position = self._position
        idx = position
        while idx < end and send_keys[idx] != key:
            idx += 1
        if idx == end:  # defensive: counter said one exists
            return []
        idx += 1
        while idx < end and send_keys[idx] == key:
            idx += 1
        taken = self._activities[position:idx]
        self._position = idx
        self._discard_fetched_sends(position, idx)
        self._sync_next_timestamp()
        return taken

    def _sync_next_timestamp(self) -> None:
        position = self._position
        if position >= len(self._ts):
            self.next_timestamp = None
        else:
            self.next_timestamp = self._ts[position]

    def _discard_fetched_sends(self, start: int, end: int) -> None:
        """Counter bookkeeping for every send-like row in ``[start, end)``
        (the inlined batch form of :meth:`_discard_future_send`, preserving
        its pop-at-zero behaviour so counters never accumulate dead keys)."""
        send_keys = self._send_keys
        local = self._future_send_keys
        registry = self._registry
        for i in range(start, end):
            key = send_keys[i]
            if key is None:
                continue
            count = local.get(key, 0)
            if count <= 1:
                local.pop(key, None)
            else:
                local[key] = count - 1
            if registry is not None:
                count = registry.get(key, 0)
                if count <= 1:
                    registry.pop(key, None)
                else:
                    registry[key] = count - 1

    def _discard_future_send(self, key: MessageKey) -> None:
        """One send-like activity with ``key`` left the unfetched region."""
        local = self._future_send_keys
        count = local.get(key, 0)
        if count <= 1:
            local.pop(key, None)
        else:
            local[key] = count - 1
        registry = self._registry
        if registry is not None:
            count = registry.get(key, 0)
            if count <= 1:
                registry.pop(key, None)
            else:
                registry[key] = count - 1


class Ranker:
    """Merge per-node streams into a single candidate stream.

    Parameters
    ----------
    sources:
        Mapping from node key to the node's activity list (any order; the
        ranker sorts by local timestamp, which is the paper's step 1).
        The node key is opaque to the ranker -- any hashable works; the
        correlator passes the interned ``Activity.node_key`` ints.
    mmap:
        The engine's message map, consulted by Rule 1 and ``is_noise``
        (through a direct reference to its pending dict: the probe is the
        most frequent operation of the whole hot path).
    window:
        Size of the sliding time window in seconds.  Any positive value is
        legal; larger windows buffer more activities (more memory, more
        work per step) but the output is identical -- a property the
        evaluation (Fig. 10/11) explores.
    """

    def __init__(
        self,
        sources: Dict[str, Sequence[Activity]],
        mmap: MessageMap,
        window: float = 0.010,
    ) -> None:
        if window <= 0:
            raise ValueError("the sliding time window must be positive")
        self._window = window
        self._mmap = mmap
        # Direct reference to the mmap's pending dict: Rule 1 and the
        # noise test probe it once per RECEIVE head per selection round,
        # so even the bound-method call is worth skipping.  Safe because
        # MessageMap never rebinds ``_pending``.
        self._mmap_pending = mmap._pending
        # Delivery ceiling (local-timestamp watermark).  The batch ranker
        # leaves it at +inf, which makes every check below a no-op.  The
        # streaming ranker (repro.stream) lowers it to the highest local
        # timestamp whose candidate-selection decisions can no longer be
        # changed by activities that have not been ingested yet; ``rank()``
        # then returns ``None`` ("stalled") instead of committing a
        # decision it might have to take back.
        self.ceiling: float = math.inf
        # Global future-send registry: counts, across every source, the
        # send-like message keys still awaiting fetch.  Shared with the
        # sources, which keep it in sync as they are consumed (and, for
        # streaming GrowingSources, extended).
        self._future_send_keys: Counter = Counter()
        self._sources: Dict[str, ActivitySource] = {
            node: ActivitySource(node, activities, registry=self._future_send_keys)
            for node, activities in sources.items()
        }
        self._queues: Dict[str, Deque[Activity]] = {
            node: deque() for node in self._sources
        }
        # Kernel head columns: one *slot* per node, in queue-registration
        # order (= the sweep's scan order; tie-breaks depend on it).
        # See repro.core.kernel.reference for the layout contract.  The
        # columns are refreshed incrementally wherever a queue head can
        # change: deliver, refill into an empty queue, noise discard,
        # head-swap promotion, streaming ingest of a new node.
        self._kernel = kernel_info()
        self._slot_of: Dict[str, int] = {}
        self._slot_nodes: List[str] = []
        # Per-slot queue references (queues are created once per node and
        # never rebound, so the list stays valid): saves the node-keyed
        # dict lookup on every delivery.
        self._slot_queues: List[Deque[Activity]] = []
        # Container types come from the backend: the compiled kernel
        # needs buffer-capable ``array`` columns, the reference kernel
        # is faster on plain lists (see KernelInfo.float_column).
        self._head_ts = self._kernel.float_column()
        self._head_pri = self._kernel.int_column()
        self._head_seq = self._kernel.int_column()
        self._head_keys: List[Optional[int]] = []
        self._blocked_out = self._kernel.int_column()
        self._discard_out = self._kernel.int_column()
        self._select = None
        for node in self._sources:
            self._register_slot(node)
        # Buffered-send index: message key -> node -> FIFO of the SENDs
        # with that key currently buffered in the node's queue, in queue
        # order.  Existence answers the noise / blocked-RECEIVE tests in
        # O(1); the per-node deques give blockage resolution the blocking
        # SEND (and its queue) without walking every queue.
        self._buffered_send_index: Dict[MessageKey, Dict[str, Deque[Activity]]] = {}
        # Cached window low edge; recomputed lazily after any mutation
        # that can move a queue head or a source frontier.  ``_low_node``
        # remembers which node supplied the minimum: removing a head from
        # any *other* node can only raise that node's own contribution, so
        # the cached minimum stays valid and most deliveries invalidate
        # nothing.  (Fetching never moves the low edge at all: it turns a
        # source-frontier contribution into an equal queue-head one.)
        self._low_cache: Optional[float] = None
        self._low_node: Optional[str] = None
        self._low_dirty = True
        # Cached minimum over the source frontiers, invalidated only by
        # fetches (deliveries do not move sources): lets _refill skip the
        # per-source fetch loop when nothing can possibly be in window.
        self._source_low_cache: Optional[float] = None
        self._source_low_dirty = True
        # Incremental count of buffered activities across every queue, so
        # ``buffered_count()`` (polled by the correlator's peak sampler
        # and by ``exhausted()`` every EMPTY verdict) is O(1).
        self._buffered_total = 0
        self.stats = RankerStats()

    # -- kernel head-state plumbing -----------------------------------------

    def _register_slot(self, node: str) -> None:
        """Grow the head columns by one slot (queue-registration order).

        Growing reallocates the column arrays, so any bound selector is
        dropped first -- the native backend exports buffer views into
        them, and an exporting array refuses to resize.  ``rank()``
        re-binds lazily on its next call.
        """
        self._select = None
        self._slot_of[node] = len(self._slot_nodes)
        self._slot_nodes.append(node)
        self._slot_queues.append(self._queues[node])
        self._head_ts.append(math.inf)
        self._head_pri.append(9)
        self._head_seq.append(0)
        self._head_keys.append(None)
        self._blocked_out.append(0)
        self._discard_out.append(0)

    def _rebind_kernel(self):
        """Bind the active kernel's selector over the current columns."""
        select = self._kernel.make_selector(
            self._head_ts,
            self._head_pri,
            self._head_seq,
            self._head_keys,
            self._mmap_pending,
            self._buffered_send_index,
            self._future_send_keys,
            self._blocked_out,
            self._discard_out,
        )
        self._select = select
        return select

    def _refresh_slot(self, slot: int, queue: Deque[Activity]) -> None:
        """Re-derive one slot's head columns after its queue head moved."""
        if queue:
            head = queue[0]
            priority = head.priority
            self._head_ts[slot] = head.timestamp
            self._head_pri[slot] = priority
            self._head_seq[slot] = head.seq
            self._head_keys[slot] = head.message_key if priority == 3 else None
        else:
            self._head_ts[slot] = math.inf

    @property
    def kernel_name(self) -> str:
        """Which kernel backend this ranker's sweeps run on."""
        return self._kernel.name

    def __getstate__(self):
        """Drop the bound selector: closures and the native Selector do
        not pickle (checkpoint/resume pickles the streaming ranker whole);
        the kernel is re-resolved in the restoring process' environment."""
        state = self.__dict__.copy()
        state["_select"] = None
        state["_kernel"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._kernel = kernel_info()
        # The restoring process may resolve a different backend than the
        # checkpointing one (e.g. a checkpoint taken with the compiled
        # kernel restored where no toolchain exists); re-home the head
        # columns in the container type the active backend requires.
        self._head_ts = self._kernel.float_column(self._head_ts)
        self._head_pri = self._kernel.int_column(self._head_pri)
        self._head_seq = self._kernel.int_column(self._head_seq)
        self._blocked_out = self._kernel.int_column(self._blocked_out)
        self._discard_out = self._kernel.int_column(self._discard_out)

    # -- public API ---------------------------------------------------------

    @property
    def window(self) -> float:
        return self._window

    def buffered_count(self) -> int:
        """Number of activities currently buffered in the ranker queues."""
        return self._buffered_total

    def buffered_activities(self) -> Iterable[Activity]:
        for queue in self._queues.values():
            yield from queue

    def exhausted(self) -> bool:
        """True once every source and every queue is empty."""
        return self._buffered_total == 0 and all(
            source.exhausted for source in self._sources.values()
        )

    def rank(self) -> Optional[Activity]:
        """Return the next candidate activity, or ``None`` when done.

        This is the ``ranker.rank()`` of the correlation pseudo-code.  The
        selection differs from the paper's Rule 2 in one respect needed to
        honour the claim that the window size is independent of clock
        skew: a head RECEIVE whose matching SEND exists but has not been
        delivered yet (it is buffered behind another head, or not even
        fetched because its node's clock runs far ahead) is never selected.
        Instead the ranker either selects another head, pulls the sender's
        stream forward, or -- in the true concurrency-disturbance case of
        Fig. 6 -- promotes the blocking SEND within its queue, which is the
        paper's head swap generalised to arbitrary queue positions.
        """
        ceiling = self.ceiling
        queues = self._queues
        nodes = self._slot_nodes
        slot_queues = self._slot_queues
        head_ts = self._head_ts
        head_pri = self._head_pri
        head_seq = self._head_seq
        head_keys = self._head_keys
        stats = self.stats
        window = self._window
        # The fused two-sweep selection lives in the kernel (see
        # repro.core.kernel.reference for the decision contract): flat
        # loops over the head columns, no attribute chasing.  This loop
        # does the state changes the verdict asks for.
        select = self._select
        if select is None:
            select = self._rebind_kernel()
        while True:
            # Refill only when it can do something: either a cached
            # minimum is stale, or some source frontier actually falls
            # inside the current window.  Once every source is drained
            # (clean source cache, no frontier) a refill can never fetch,
            # so the drain tail skips the gate -- and the low-edge cache
            # is allowed to stay dirty, since only refills consume it.
            if self._source_low_dirty:
                self._refill()
            else:
                source_low = self._source_low_cache
                if source_low is not None:
                    if self._low_dirty:
                        self._refill()
                    else:
                        low = self._low_cache
                        if low is not None and source_low <= low + window:
                            self._refill()

            decision = select(ceiling)
            code = decision & 7
            if code < EMPTY:  # RULE1 or RULE2: deliver the winning head
                if code == RULE1:
                    stats.rule1_selections += 1
                else:
                    stats.rule2_selections += 1
                # Inline fast delivery (the mirror of ``_deliver``, minus
                # the identity-removal branch: the kernel's winner is by
                # construction the current head of its slot's queue).
                slot = decision >> 3
                node = nodes[slot]
                queue = slot_queues[slot]
                activity = queue.popleft()
                if activity.send_like:
                    self._note_dequeued(node, activity)
                if node == self._low_node:
                    self._low_dirty = True
                if queue:
                    head = queue[0]
                    ts = head.timestamp
                    priority = head.priority
                    head_ts[slot] = ts
                    head_pri[slot] = priority
                    head_seq[slot] = head.seq
                    head_keys[slot] = (
                        head.message_key if priority == 3 else None
                    )
                    if not self._low_dirty:
                        # Delivering from a promoted prefix can expose a
                        # head *below* the cached minimum even on a
                        # non-low node (see ``_deliver``).
                        low = self._low_cache
                        if low is not None and ts < low:
                            self._low_dirty = True
                else:
                    head_ts[slot] = math.inf
                self._buffered_total -= 1
                stats.delivered += 1
                return activity
            if code == DISCARD:
                # Noise heads: no matching SEND pending, buffered or
                # awaiting fetch anywhere.  Pop them all and reselect.
                count = decision >> 3
                discard_out = self._discard_out
                for position in range(count):
                    slot = discard_out[position]
                    node = nodes[slot]
                    queue = slot_queues[slot]
                    queue.popleft()
                    if node == self._low_node:
                        self._low_dirty = True
                    self._refresh_slot(slot, queue)
                self._buffered_total -= count
                stats.noise_discarded += count
                continue
            if code == EMPTY:
                if self.exhausted():
                    return None
                # Window too small to admit any activity: force progress by
                # admitting the globally earliest unfetched activity.  In
                # streaming mode the earliest unfetched activity may sit
                # above the ceiling; then stall instead.
                if not self._force_fetch_one():
                    return None
                continue
            if code == STALL:
                return None  # nothing decidable yet: wait for the watermark

            # BLOCKED: every selectable head is a RECEIVE blocked on an
            # undelivered SEND; resolve the disturbance and try again.
            # Only heads below the ceiling are acted on in streaming mode
            # -- for newer heads the blocking SEND may not be ingested yet.
            count = decision >> 3
            if count:
                blocked = []
                blocked_out = self._blocked_out
                for position in range(count):
                    node = nodes[blocked_out[position]]
                    blocked.append((node, queues[node][0]))
                if self._resolve_blockage(blocked):
                    continue

            if ceiling != math.inf:
                # Streaming: the blocking SENDs have not been ingested
                # yet; delivering the RECEIVEs now would misclassify them.
                # Stall until the sender's stream catches up (or until
                # flush lifts the ceiling and the batch fallback applies).
                return None

            # Could not make progress (should not happen with well-formed
            # traces); fall back to plain Rule 2 so the ranker never stalls.
            node, choice = self._select_rule2(
                [(node, queue[0]) for node, queue in queues.items() if queue]
            )
            self.stats.rule2_selections += 1
            return self._deliver(node, choice)

    # -- window management ----------------------------------------------------

    def _refill(self) -> None:
        """Fetch into the queues every activity within the sliding window.

        The lower edge of the window is the minimal local timestamp among
        the queue heads and the next unfetched activity of every source
        (Section 4.1: after a candidate is popped "the ranker will update
        the new minimal timestamp ... and fetch new qualified activities").
        """
        low = self._window_low()
        if low is None:
            return
        limit = low + self._window
        source_low = self._source_low()
        if source_low is None or source_low > limit:
            return  # no source holds anything inside the window
        fetched = False
        for node, source in self._sources.items():
            next_ts = source.next_timestamp
            if next_ts is None or next_ts > limit:
                continue
            taken = source.take_until(limit)
            if taken:
                fetched = True
                self._enqueue(node, taken)
        if fetched:
            self.stats.window_refills += 1
            count = self.buffered_count()
            if count > self.stats.max_buffered:
                self.stats.max_buffered = count

    def _window_low(self) -> Optional[float]:
        """The cached low edge of the sliding window.

        The minimum over the queue heads and source frontiers can only
        move when one of them does, so it is recomputed lazily after a
        delivery, discard, fetch, promotion or (streaming) ingest rather
        than on every ``rank()`` call.
        """
        if not self._low_dirty:
            return self._low_cache
        low: Optional[float] = None
        low_node: Optional[str] = None
        sources = self._sources
        for node, queue in self._queues.items():
            if queue:
                ts = queue[0].timestamp
            else:
                ts = sources[node].next_timestamp
                if ts is None:
                    continue
            if low is None or ts < low:
                low = ts
                low_node = node
        self._low_cache = low
        self._low_node = low_node
        self._low_dirty = False
        return low

    def _source_low(self) -> Optional[float]:
        """Cached minimum over the source frontiers (None = all drained)."""
        if not self._source_low_dirty:
            return self._source_low_cache
        low: Optional[float] = None
        for source in self._sources.values():
            ts = source.next_timestamp
            if ts is not None and (low is None or ts < low):
                low = ts
        self._source_low_cache = low
        self._source_low_dirty = False
        return low

    def _force_fetch_one(self) -> bool:
        """Admit the earliest unfetched activity when the window admits none.

        Returns ``False`` when nothing was admitted -- either every source
        is drained, or (streaming mode) the earliest unfetched activity is
        above the delivery ceiling and must wait for the watermark.
        """
        best_node: Optional[str] = None
        best_ts: Optional[float] = None
        for node, source in self._sources.items():
            ts = source.next_timestamp
            if ts is None:
                continue
            if best_ts is None or ts < best_ts:
                best_ts = ts
                best_node = node
        if best_node is None or best_ts is None or best_ts > self.ceiling:
            return False
        activity = self._sources[best_node].take_one()
        if activity is not None:
            self._enqueue(best_node, (activity,))
            count = self.buffered_count()
            if count > self.stats.max_buffered:
                self.stats.max_buffered = count
        return True

    def _enqueue(self, node: str, taken: Sequence[Activity]) -> None:
        """Append fetched activities to a queue and index their sends."""
        queue = self._queues[node]
        was_empty = not queue
        queue.extend(taken)
        self._buffered_total += len(taken)
        if was_empty:
            # Appends only change the head of a previously empty queue.
            self._refresh_slot(self._slot_of[node], queue)
        index = self._buffered_send_index
        for activity in taken:
            if activity.send_like:
                index.setdefault(activity.message_key, {}).setdefault(
                    node, deque()
                ).append(activity)
        # A fetch advances the source frontier but never moves the window
        # low edge: it converts a source-frontier contribution into an
        # equal queue-head one, so only the source minimum goes stale.
        self._source_low_dirty = True

    # -- candidate selection ----------------------------------------------------

    def _select_rule2(
        self, heads: Sequence[Tuple[str, Activity]]
    ) -> Tuple[str, Activity]:
        """Rule 2: the head with the lowest type priority.

        Ties are broken by the local timestamp so the output is
        deterministic; with correct priorities the result does not depend
        on how ties break (any order of causally-unrelated activities is
        acceptable to the engine).
        """
        best = heads[0]
        head = best[1]
        best_key = (head.priority, head.timestamp, head.seq)
        for item in heads[1:]:
            head = item[1]
            key = (head.priority, head.timestamp, head.seq)
            if key < best_key:
                best_key = key
                best = item
        return best

    def _deliver(self, node: str, activity: Activity) -> Activity:
        queue = self._queues[node]
        if queue and queue[0] is activity:
            queue.popleft()
        else:  # the activity was rotated away from the front by the swap
            # logic: remove it by identity, never by equality -- a
            # value-equal sibling activity must not be dequeued in its
            # place (MessageMap bookkeeping is identity-based too).
            for position, other in enumerate(queue):
                if other is activity:
                    del queue[position]
                    break
            else:
                raise ValueError("delivered activity is not buffered in its queue")
        if activity.send_like:
            self._note_dequeued(node, activity)
        if node == self._low_node:
            self._low_dirty = True
        elif not self._low_dirty and queue:
            # Queues are timestamp-sorted except for a prefix of promoted
            # SENDs (the Fig. 6 head swap puts a later SEND in front of an
            # earlier head).  Delivering from that prefix can expose a head
            # *below* the cached minimum even on a non-low node, so check
            # the newly exposed head explicitly.  An emptied queue cannot
            # lower the minimum: the source frontier is >= every fetched
            # timestamp of its node.
            low = self._low_cache
            if low is not None and queue[0].timestamp < low:
                self._low_dirty = True
        self._refresh_slot(self._slot_of[node], queue)
        self._buffered_total -= 1
        self.stats.delivered += 1
        return activity

    def _note_dequeued(self, node: str, activity: Activity) -> None:
        """Drop a dequeued send-like activity from the buffered-send index
        (callers pre-check ``send_like`` to spare the call for receives)."""
        key = activity.message_key
        per_node = self._buffered_send_index.get(key)
        if per_node is None:
            return
        entries = per_node.get(node)
        if entries is None:
            return
        if entries[0] is activity:
            entries.popleft()
        else:
            for position, other in enumerate(entries):
                if other is activity:
                    del entries[position]
                    break
        if not entries:
            del per_node[node]
            if not per_node:
                del self._buffered_send_index[key]

    # -- noise handling -----------------------------------------------------------

    def is_noise(self, activity: Activity) -> bool:
        """The ``is_noise`` predicate of Fig. 5.

        A RECEIVE is noise when no matching SEND exists either in the
        engine's mmap or anywhere in the ranker buffer.  BEGIN activities
        are never noise: their senders (external clients) are outside the
        traced perimeter by definition.
        """
        if activity.type is not ActivityType.RECEIVE:
            return False
        key = activity.message_key
        if self._mmap_pending.get(key):
            return False
        if key in self._buffered_send_index:
            return False
        # A matching SEND may also still be outside the window on its own
        # node; the global future-send registry covers every source, so a
        # small window does not misclassify legitimate traffic as noise.
        return self._future_send_keys.get(key, 0) <= 0

    # -- concurrency disturbance -----------------------------------------------------

    def _find_buffered_send(self, key: MessageKey) -> Optional[Tuple[str, Activity]]:
        """The first buffered SEND with ``key``, via the buffered-send index.

        "First" preserves the pre-index scan order: the earliest in queue
        order on the first node (in queue-registration order) that holds
        one -- with a single holding node (the overwhelmingly common case,
        since a directional connection key identifies the sending host)
        resolved without touching the queues at all.
        """
        per_node = self._buffered_send_index.get(key)
        if not per_node:
            return None
        if len(per_node) == 1:
            node, entries = next(iter(per_node.items()))
            return (node, entries[0])
        for node in self._queues:
            entries = per_node.get(node)
            if entries:
                return (node, entries[0])
        return None

    def _resolve_blockage(self, heads: Sequence[Tuple[str, Activity]]) -> bool:
        """Make progress when every queue head is a blocked RECEIVE.

        Two mechanisms, tried in order for each blocked head:

        1. If the matching SEND has not been fetched yet (the sender's
           clock runs ahead of the window), pull the sender's stream
           forward up to and including that SEND.  The SEND's own causal
           predecessors are pulled with it and keep their relative order,
           so per-context ordering is preserved.
        2. If the matching SEND is already buffered behind another head
           (the Fig. 6 concurrency disturbance), promote it to the front
           of its queue -- but only when no activity ahead of it belongs
           to the same execution entity, because reordering within one
           context would fabricate a wrong adjacent-context relation.

        Returns True when any queue changed, so the caller re-runs
        candidate selection.
        """
        future = self._future_send_keys
        for _node, head in heads:
            key = head.message_key
            if future.get(key, 0) <= 0:
                continue
            for source_node, source in self._sources.items():
                if not source.has_future_send(key):
                    continue
                taken = source.take_through_send(key)
                if not taken:
                    continue
                self._enqueue(source_node, taken)
                count = self.buffered_count()
                if count > self.stats.max_buffered:
                    self.stats.max_buffered = count
                return True

        for _node, head in heads:
            found = self._find_buffered_send(head.message_key)
            if found is None:
                continue
            queue_node, send = found
            queue = self._queues[queue_node]
            if queue[0] is send:
                continue
            ahead_same_context = False
            for other in queue:
                if other is send:
                    break
                if other.context_key == send.context_key:
                    ahead_same_context = True
                    break
            if ahead_same_context:
                continue
            self._promote_send(queue_node, send)
            return True
        return False

    def _promote_send(self, node: str, send: Activity) -> None:
        """The head swap of Fig. 6: rotate a blocking SEND to its queue
        front, keeping the buffered-send index in queue order."""
        queue = self._queues[node]
        for position, other in enumerate(queue):
            if other is send:
                del queue[position]
                break
        queue.appendleft(send)
        entries = self._buffered_send_index[send.message_key][node]
        if entries[0] is not send:
            for position, other in enumerate(entries):
                if other is send:
                    del entries[position]
                    break
            entries.appendleft(send)
        self._refresh_slot(self._slot_of[node], queue)
        self._low_dirty = True
        self.stats.head_swaps += 1
