"""Parsing and classification of raw TCP_TRACE records.

The paper's instrumentation module (TCP_TRACE, built on SystemTap) writes
one line per kernel send/receive:

    timestamp hostname program_name ProcessID ThreadID SEND|RECEIVE \
        sender_ip:port-receiver_ip:port message_size

PreciseTracer then transforms those raw records into typed activities:
SEND and RECEIVE pass through directly, while BEGIN and END are recognised
from the communication channel -- a RECEIVE arriving at a configured
frontend endpoint from an external client marks the start of a request,
and the SEND on the same connection in the opposite direction marks its
end (Section 3.1).

This module provides:

* :class:`RawRecord` -- the parsed raw line,
* :func:`format_record` / :func:`parse_record` -- serialisation round trip,
* :class:`FrontendSpec` + :class:`ActivityClassifier` -- the raw-to-typed
  transformation, configured only with network-level knowledge (the
  frontend ip:port and, optionally, which subnets are internal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Set

from .activity import Activity, ActivityType, ContextId, MessageId


class LogFormatError(ValueError):
    """Raised when a TCP_TRACE line cannot be parsed."""


@dataclass(frozen=True)
class RawRecord:
    """A parsed TCP_TRACE log line, before BEGIN/END classification."""

    timestamp: float
    hostname: str
    program: str
    pid: int
    tid: int
    direction: str  # "SEND" or "RECEIVE"
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    size: int
    request_id: Optional[int] = None

    def context(self) -> ContextId:
        return ContextId(self.hostname, self.program, self.pid, self.tid)

    def message(self) -> MessageId:
        return MessageId(self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.size)


def format_record(record: RawRecord) -> str:
    """Render a record in the original TCP_TRACE textual format."""
    line = (
        f"{record.timestamp:.6f} {record.hostname} {record.program} "
        f"{record.pid} {record.tid} {record.direction} "
        f"{record.src_ip}:{record.src_port}-{record.dst_ip}:{record.dst_port} "
        f"{record.size}"
    )
    if record.request_id is not None:
        # Ground-truth annotation used only by the accuracy evaluation;
        # the tracer itself ignores it (black-box principle).
        line += f" #rid={record.request_id}"
    return line


def parse_record(line: str) -> RawRecord:
    """Parse one TCP_TRACE line into a :class:`RawRecord`.

    Raises :class:`LogFormatError` on malformed input.
    """
    text = line.strip()
    if not text or text.startswith("#"):
        raise LogFormatError(f"not a record: {line!r}")

    request_id: Optional[int] = None
    if " #rid=" in text:
        text, _, rid_text = text.rpartition(" #rid=")
        try:
            request_id = int(rid_text)
        except ValueError as exc:
            raise LogFormatError(f"bad request id in {line!r}") from exc

    parts = text.split()
    if len(parts) != 8:
        raise LogFormatError(f"expected 8 fields, got {len(parts)}: {line!r}")

    (ts_text, hostname, program, pid_text, tid_text, direction, channel, size_text) = parts

    if direction not in ("SEND", "RECEIVE"):
        raise LogFormatError(f"bad direction {direction!r} in {line!r}")

    try:
        timestamp = float(ts_text)
        pid = int(pid_text)
        tid = int(tid_text)
        size = int(size_text)
    except ValueError as exc:
        raise LogFormatError(f"bad numeric field in {line!r}") from exc
    if size < 0:
        raise LogFormatError(f"negative size in {line!r}")

    try:
        src_text, dst_text = channel.split("-", 1)
        src_ip, src_port_text = src_text.rsplit(":", 1)
        dst_ip, dst_port_text = dst_text.rsplit(":", 1)
        src_port = int(src_port_text)
        dst_port = int(dst_port_text)
    except ValueError as exc:
        raise LogFormatError(f"bad channel {channel!r} in {line!r}") from exc

    return RawRecord(
        timestamp=timestamp,
        hostname=hostname,
        program=program,
        pid=pid,
        tid=tid,
        direction=direction,
        src_ip=src_ip,
        src_port=src_port,
        dst_ip=dst_ip,
        dst_port=dst_port,
        size=size,
        request_id=request_id,
    )


def parse_log(lines: Iterable[str]) -> Iterator[RawRecord]:
    """Parse an iterable of lines, skipping blanks and ``#`` comments."""
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield parse_record(stripped)


class LineAssembler:
    """Reassemble complete log lines from arbitrarily-chunked text.

    Online ingestion (tailing a growing TCP_TRACE file, reading from a
    socket) delivers text in chunks whose boundaries do not respect line
    boundaries.  ``feed()`` buffers the trailing partial line and returns
    only the lines that are known to be complete; ``flush()`` releases the
    final unterminated line at end of stream.

    Used by :class:`repro.stream.FileTailSource`.
    """

    def __init__(self) -> None:
        self._tail: str = ""

    def feed(self, chunk: str) -> List[str]:
        """Absorb ``chunk`` and return every newly-completed line."""
        if not chunk:
            return []
        buffered = self._tail + chunk
        lines = buffered.split("\n")
        self._tail = lines.pop()  # "" when the chunk ended on a newline
        return lines

    def flush(self) -> List[str]:
        """Return the buffered partial line, if any (end of stream)."""
        if not self._tail:
            return []
        line, self._tail = self._tail, ""
        return [line]

    @property
    def pending(self) -> str:
        """The currently-buffered partial line (for inspection/tests)."""
        return self._tail


@dataclass(frozen=True)
class FrontendSpec:
    """Network-level description of the service's entry point.

    ``ip``/``port`` identify the frontend listening socket (e.g. the web
    server's port 80).  ``internal_ips`` lists the addresses of the data
    centre's own nodes; peers outside this set are considered external
    clients.  Both pieces are application independent -- they come from
    the deployment, not from the application's protocols.
    """

    ip: str
    port: int
    internal_ips: frozenset = frozenset()

    def is_frontend_endpoint(self, ip: str, port: int) -> bool:
        return ip == self.ip and port == self.port

    def is_external(self, ip: str) -> bool:
        if not self.internal_ips:
            # Without an explicit node list we only rely on the port rule,
            # exactly like the paper's description.
            return True
        return ip not in self.internal_ips


@dataclass
class ActivityClassifier:
    """Transform raw records into typed activities (Section 3.1).

    * a RECEIVE whose destination is a frontend endpoint and whose source
      is an external client becomes ``BEGIN``;
    * a SEND whose *source* is a frontend endpoint and whose destination
      is an external client becomes ``END``;
    * every other record keeps its SEND/RECEIVE type.

    The classifier also implements the attribute-based noise filter of
    Section 4.3: records whose program name, IP or port matches a
    configured deny list are dropped before they ever reach the ranker.
    """

    frontends: Sequence[FrontendSpec] = field(default_factory=list)
    ignore_programs: Set[str] = field(default_factory=set)
    ignore_ports: Set[int] = field(default_factory=set)
    ignore_ips: Set[str] = field(default_factory=set)

    #: number of records dropped by the attribute filter, for reporting
    filtered_count: int = 0

    def classify(self, record: RawRecord) -> Optional[Activity]:
        """Return the typed activity for ``record``, or ``None`` if it is
        filtered out by the attribute-based noise filter."""
        if self._is_filtered(record):
            self.filtered_count += 1
            return None

        activity_type = self._classify_type(record)
        return Activity(
            type=activity_type,
            timestamp=record.timestamp,
            context=record.context(),
            message=record.message(),
            request_id=record.request_id,
        )

    def classify_all(self, records: Iterable[RawRecord]) -> List[Activity]:
        """Classify a batch of records, silently dropping filtered ones."""
        activities: List[Activity] = []
        for record in records:
            activity = self.classify(record)
            if activity is not None:
                activities.append(activity)
        return activities

    # -- internals ---------------------------------------------------------

    def _is_filtered(self, record: RawRecord) -> bool:
        if record.program in self.ignore_programs:
            return True
        if record.src_ip in self.ignore_ips or record.dst_ip in self.ignore_ips:
            return True
        if record.src_port in self.ignore_ports or record.dst_port in self.ignore_ports:
            return True
        return False

    def _classify_type(self, record: RawRecord) -> ActivityType:
        for frontend in self.frontends:
            if (
                record.direction == "RECEIVE"
                and frontend.is_frontend_endpoint(record.dst_ip, record.dst_port)
                and frontend.is_external(record.src_ip)
            ):
                return ActivityType.BEGIN
            if (
                record.direction == "SEND"
                and frontend.is_frontend_endpoint(record.src_ip, record.src_port)
                and frontend.is_external(record.dst_ip)
            ):
                return ActivityType.END
        if record.direction == "SEND":
            return ActivityType.SEND
        return ActivityType.RECEIVE


def load_activities(
    lines: Iterable[str],
    classifier: ActivityClassifier,
) -> List[Activity]:
    """Convenience helper: parse raw lines and classify them in one pass."""
    return classifier.classify_all(parse_log(lines))
