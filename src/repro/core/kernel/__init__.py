"""Swappable rank-kernel: one dispatch seam, two backends.

The candidate-selection sweep is the hottest loop of the whole tracer --
every activity passes through it at least once.  This package provides
it in two interchangeable forms behind a single factory:

* :mod:`repro.core.kernel.reference` -- pure Python, the semantic
  definition.  The golden digest matrices are generated from this
  implementation, always.
* :mod:`repro.core.kernel._native` -- the same decision function as a
  hand-written CPython extension, compiled lazily with the system C
  compiler (the target container has cc but neither Cython nor mypyc).
  Proven byte-identical to the reference on the golden matrices and the
  fuzz harness (``tests/test_kernel.py``).

Selection is driven by ``REPRO_KERNEL``:

* ``auto`` (default) -- use the native kernel when its extension is
  already built, or when a toolchain is present and a quiet build
  succeeds; otherwise fall back to the reference kernel silently.
* ``python`` -- always the reference kernel.
* ``native`` -- require the compiled kernel; raise
  :class:`KernelUnavailableError` with the build error when it cannot
  be produced (never a silent fallback).

The resolved choice is cached per requested mode; :func:`kernel_info`
exposes name + reason for provenance stamping (``repro profile``, the
BENCH_*.json rows and ``BackendSpec.describe`` all report it).
"""

from __future__ import annotations

import os
from array import array
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from . import reference
from .reference import BLOCKED, DISCARD, EMPTY, RULE1, RULE2, STALL

__all__ = [
    "RULE1",
    "RULE2",
    "EMPTY",
    "DISCARD",
    "BLOCKED",
    "STALL",
    "KernelInfo",
    "KernelUnavailableError",
    "kernel_info",
    "kernel_provenance",
    "selector_factory",
]

#: Environment variable controlling kernel selection.
ENV_VAR = "REPRO_KERNEL"
_MODES = ("auto", "python", "native")


class KernelUnavailableError(RuntimeError):
    """``REPRO_KERNEL=native`` was requested but no extension can be built."""


def _float_buffer(values=()):
    """Column container for the compiled backend: C-contiguous doubles."""
    return array("d", values)


def _int_buffer(values=()):
    """Column container for the compiled backend: C-contiguous int64s."""
    return array("q", values)


@dataclass(frozen=True)
class KernelInfo:
    """The resolved kernel backend plus why it was chosen."""

    name: str  #: "python" | "native"
    requested: str  #: the REPRO_KERNEL mode that produced this choice
    reason: str  #: human-readable selection rationale
    make_selector: Callable  #: the backend's selector factory
    #: Column container factories (called with an optional initial
    #: iterable).  The compiled backend takes zero-copy buffer views, so
    #: it needs ``array``-typed columns; the reference kernel is faster
    #: on plain lists (an ``array('d')`` read boxes a fresh float object
    #: on every access, a list read returns the existing one) -- so each
    #: backend declares the storage it wants and the ranker allocates
    #: accordingly.  ``head_keys`` is always a plain list in both.
    float_column: Callable = field(default=list)
    int_column: Callable = field(default=list)

    def provenance(self) -> Dict[str, str]:
        """The provenance columns stamped into BENCH rows and describe()."""
        return {
            "kernel": self.name,
            "kernel_requested": self.requested,
            "kernel_reason": self.reason,
        }


_cache: Dict[str, KernelInfo] = {}


def _resolve(requested: str) -> KernelInfo:
    if requested == "python":
        return KernelInfo(
            name="python",
            requested=requested,
            reason="REPRO_KERNEL=python pins the reference kernel",
            make_selector=reference.make_selector,
        )

    from . import _native

    if requested == "native":
        try:
            module = _native.load(allow_build=True, retry_failed=True)
        except _native.KernelBuildError as error:
            raise KernelUnavailableError(
                "REPRO_KERNEL=native requires the compiled kernel, which is "
                f"unavailable: {error}"
            ) from error
        return KernelInfo(
            name="native",
            requested=requested,
            reason="REPRO_KERNEL=native: compiled kernel required and built",
            make_selector=module.make_selector,
            float_column=_float_buffer,
            int_column=_int_buffer,
        )

    # auto: prefer a built (or quietly buildable) extension, fall back
    # silently -- the documented no-toolchain behaviour.
    try:
        module = _native.load(allow_build=True, retry_failed=False)
    except _native.KernelBuildError as error:
        return KernelInfo(
            name="python",
            requested=requested,
            reason=f"auto fallback to reference kernel ({error})",
            make_selector=reference.make_selector,
        )
    return KernelInfo(
        name="native",
        requested=requested,
        reason="auto selected the compiled kernel (extension available)",
        make_selector=module.make_selector,
        float_column=_float_buffer,
        int_column=_int_buffer,
    )


def kernel_info(requested: Optional[str] = None) -> KernelInfo:
    """Resolve (and cache) the kernel for ``requested`` mode.

    ``None`` reads :data:`ENV_VAR` (default ``auto``).  Unknown modes
    raise ``ValueError`` -- a typo must not silently change semantics.
    """
    if requested is None:
        requested = os.environ.get(ENV_VAR, "auto") or "auto"
    if requested not in _MODES:
        raise ValueError(
            f"unknown {ENV_VAR} mode {requested!r}; expected one of {_MODES}"
        )
    cached = _cache.get(requested)
    if cached is None:
        cached = _resolve(requested)
        _cache[requested] = cached
    return cached


def kernel_provenance(requested: Optional[str] = None) -> Dict[str, str]:
    """Provenance columns of the kernel the current environment selects."""
    return kernel_info(requested).provenance()


def selector_factory(requested: Optional[str] = None) -> Callable:
    """The active backend's ``make_selector`` (see reference.py for the
    binding contract)."""
    return kernel_info(requested).make_selector


def _reset_cache() -> None:
    """Drop resolution results (test hook: re-resolve after env changes)."""
    _cache.clear()
