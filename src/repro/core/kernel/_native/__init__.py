"""Loader for the compiled rank-kernel extension.

``load()`` imports the built ``_kernel`` extension, optionally building
it first (see :mod:`.build`).  The selection policy -- who may build,
who must fall back -- lives in :mod:`repro.core.kernel`; this module
only knows how to produce the extension module object.
"""

from __future__ import annotations

import importlib.util
import sys
from types import ModuleType

from .build import (  # noqa: F401  (re-exported for the kernel package)
    EXTENSION_PATH,
    KernelBuildError,
    SOURCE_PATH,
    build,
    is_built,
)

_MODULE_NAME = __name__ + "._kernel"


def load(allow_build: bool = True, retry_failed: bool = True) -> ModuleType:
    """Import the compiled kernel, building it first when needed.

    Raises :class:`KernelBuildError` when the extension is absent and
    cannot (or may not) be built.
    """
    cached = sys.modules.get(_MODULE_NAME)
    if cached is not None:
        return cached
    if not is_built():
        if not allow_build:
            raise KernelBuildError(
                "the native kernel extension has not been built; run "
                "`python -m repro.core.kernel._native.build`"
            )
        build(retry_failed=retry_failed)
    spec = importlib.util.spec_from_file_location(_MODULE_NAME, EXTENSION_PATH)
    if spec is None or spec.loader is None:
        raise KernelBuildError(f"cannot load extension at {EXTENSION_PATH}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    sys.modules[_MODULE_NAME] = module
    return module
