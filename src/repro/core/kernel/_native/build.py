"""Lazy build of the compiled rank-kernel with the system C compiler.

The container this repo targets ships a C toolchain but no Cython or
mypyc, so the compiled backend is a hand-written CPython extension
(``kernelmod.c``) compiled on demand::

    python -m repro.core.kernel._native.build

The build is a single compiler invocation -- no setuptools, no build
isolation, no network.  Artifacts live next to the source:

* ``_kernel<EXT_SUFFIX>`` -- the built extension, rebuilt whenever the
  C source is newer;
* ``.build_failed`` -- a stamp recording the source mtime of the last
  failed attempt, so ``REPRO_KERNEL=auto`` probes do not re-run the
  compiler on every import in an environment where it always fails.
"""

from __future__ import annotations

import importlib.machinery
import os
import shutil
import subprocess
import sysconfig
from typing import Optional

_HERE = os.path.dirname(os.path.abspath(__file__))
SOURCE_PATH = os.path.join(_HERE, "kernelmod.c")
EXTENSION_PATH = os.path.join(
    _HERE, "_kernel" + importlib.machinery.EXTENSION_SUFFIXES[0]
)
_FAILED_STAMP = os.path.join(_HERE, ".build_failed")


class KernelBuildError(RuntimeError):
    """The compiled kernel could not be built (no toolchain / cc error)."""


def find_compiler() -> Optional[str]:
    """The C compiler to use, or ``None`` when the env has none."""
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def is_built() -> bool:
    """True when a built extension exists and is newer than its source."""
    try:
        return os.path.getmtime(EXTENSION_PATH) >= os.path.getmtime(SOURCE_PATH)
    except OSError:
        return False


def _failed_before() -> bool:
    """True when the last attempt on this exact source already failed."""
    try:
        with open(_FAILED_STAMP, "r", encoding="ascii") as handle:
            return handle.read().strip() == str(os.path.getmtime(SOURCE_PATH))
    except OSError:
        return False


def _record_failure() -> None:
    try:
        with open(_FAILED_STAMP, "w", encoding="ascii") as handle:
            handle.write(str(os.path.getmtime(SOURCE_PATH)))
    except OSError:
        pass  # a read-only tree just retries next time


def build(force: bool = False, retry_failed: bool = True) -> str:
    """Compile the extension; returns its path.

    Raises :class:`KernelBuildError` when no compiler is available or
    compilation fails.  With ``retry_failed=False`` a previously failed
    attempt on the same source short-circuits to the error immediately
    (the cheap path ``REPRO_KERNEL=auto`` takes).
    """
    if not force and is_built():
        return EXTENSION_PATH
    if not retry_failed and _failed_before():
        raise KernelBuildError(
            "a previous build of the native kernel failed for this source; "
            "run `python -m repro.core.kernel._native.build` to retry"
        )
    compiler = find_compiler()
    if compiler is None:
        raise KernelBuildError(
            "no C compiler found (tried $CC, cc, gcc, clang); install a "
            "toolchain or use REPRO_KERNEL=python"
        )
    include_dir = sysconfig.get_paths()["include"]
    command = [
        compiler,
        "-O2",
        "-fPIC",
        "-shared",
        f"-I{include_dir}",
        SOURCE_PATH,
        "-o",
        EXTENSION_PATH,
    ]
    result = subprocess.run(command, capture_output=True, text=True)
    if result.returncode != 0:
        _record_failure()
        raise KernelBuildError(
            "native kernel compilation failed:\n"
            f"  command: {' '.join(command)}\n"
            f"  stderr: {result.stderr.strip()[:2000]}"
        )
    try:
        os.remove(_FAILED_STAMP)
    except OSError:
        pass
    return EXTENSION_PATH


def main() -> int:
    try:
        path = build(force=True)
    except KernelBuildError as error:
        print(f"build failed: {error}")
        return 1
    print(f"built {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI leg
    raise SystemExit(main())
