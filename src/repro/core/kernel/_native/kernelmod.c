/* Compiled rank-kernel: the candidate-selection sweep of
 * repro.core.kernel.reference, re-implemented over the same memory
 * layout (the ranker's parallel head columns) in C.
 *
 * The contract is strict byte-identity with the reference kernel: the
 * packed decision codes, the scan order, every tie-break and every
 * ceiling comparison mirror reference.select() exactly.  The golden
 * digest matrices are generated from the reference implementation;
 * tests/test_kernel.py re-runs them under this backend and asserts the
 * digests match.
 *
 * A Selector object is bound once per ranker (and re-bound when a
 * streaming ingest grows the columns): it holds buffer views into the
 * four array.array columns plus references to the index dicts, so a
 * call is two flat C loops over machine ints with at most one dict
 * probe per RECEIVE head.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <math.h>

/* Decision codes -- must match repro.core.kernel.reference. */
#define K_RULE1 0
#define K_RULE2 1
#define K_EMPTY 2
#define K_DISCARD 3
#define K_BLOCKED 4
#define K_STALL 5

typedef struct {
    PyObject_HEAD
    Py_ssize_t n;      /* slot count, fixed at binding time           */
    Py_buffer ts;      /* array('d'): head timestamps, +inf = empty   */
    Py_buffer pri;     /* array('q'): head priorities (type values)   */
    Py_buffer seq;     /* array('q'): head sequence numbers           */
    Py_buffer blocked; /* array('q'): scratch, blocked slot list      */
    Py_buffer discard; /* array('q'): scratch, noise slot list        */
    PyObject *keys;    /* list: boxed message key per RECEIVE head    */
    PyObject *mmap;    /* dict: message key -> pending-SEND deque     */
    PyObject *buffered;/* dict: message key -> per-node buffered SENDs*/
    PyObject *future;  /* Counter: message key -> unfetched SEND count*/
    int bound;         /* buffers acquired (guards dealloc)           */
} Selector;

static void
Selector_dealloc(Selector *self)
{
    if (self->bound) {
        PyBuffer_Release(&self->ts);
        PyBuffer_Release(&self->pri);
        PyBuffer_Release(&self->seq);
        PyBuffer_Release(&self->blocked);
        PyBuffer_Release(&self->discard);
    }
    Py_XDECREF(self->keys);
    Py_XDECREF(self->mmap);
    Py_XDECREF(self->buffered);
    Py_XDECREF(self->future);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
Selector_call(Selector *self, PyObject *args, PyObject *kwargs)
{
    double ceiling;
    if (kwargs != NULL && PyDict_GET_SIZE(kwargs) != 0) {
        PyErr_SetString(PyExc_TypeError, "selector takes no keyword arguments");
        return NULL;
    }
    if (!PyArg_ParseTuple(args, "d", &ceiling))
        return NULL;
    const Py_ssize_t n = self->n;

    const double *ts = (const double *)self->ts.buf;
    const long long *pri = (const long long *)self->pri.buf;
    const long long *seq = (const long long *)self->seq.buf;
    long long *blocked = (long long *)self->blocked.buf;
    long long *discard = (long long *)self->discard.buf;
    PyObject *keys = self->keys;

    /* Sweep 1: emptiness, earliest head, Rule 1 (earliest RECEIVE head
     * whose matching SEND is pending in the mmap; strict < tie-break =
     * first slot in scan order). */
    int empty = 1;
    double earliest = INFINITY;
    Py_ssize_t cand_slot = -1;
    double cand_ts = INFINITY;
    for (Py_ssize_t slot = 0; slot < n; slot++) {
        double t = ts[slot];
        if (t == INFINITY)
            continue;
        empty = 0;
        if (t < earliest)
            earliest = t;
        if (pri[slot] == 3) {
            PyObject *pending = PyDict_GetItemWithError(
                self->mmap, PyList_GET_ITEM(keys, slot));
            if (pending != NULL) {
                int truth = PyObject_IsTrue(pending);
                if (truth < 0)
                    return NULL;
                if (truth && t < cand_ts) {
                    cand_ts = t;
                    cand_slot = slot;
                }
            }
            else if (PyErr_Occurred())
                return NULL;
        }
    }
    if (empty)
        return PyLong_FromLong(K_EMPTY);
    if (earliest > ceiling)
        return PyLong_FromLong(K_STALL);
    if (cand_slot >= 0) {
        if (cand_ts > ceiling)
            return PyLong_FromLong(K_STALL);
        return PyLong_FromLongLong(K_RULE1 | (long long)cand_slot << 3);
    }

    /* Sweep 2: classify heads (noise / blocked / eligible) and track
     * the Rule-2 minimum (priority, timestamp, seq; strict comparisons,
     * scan-order tie-break). */
    long long n_discard = 0;
    long long n_blocked = 0;
    Py_ssize_t best_slot = -1;
    long long best_pri = 0, best_seq = 0;
    double best_ts = 0.0;
    for (Py_ssize_t slot = 0; slot < n; slot++) {
        double t = ts[slot];
        if (t == INFINITY)
            continue;
        long long p = pri[slot];
        if (p == 3) {
            PyObject *key = PyList_GET_ITEM(keys, slot);
            int has = PyDict_Contains(self->buffered, key);
            if (has < 0)
                return NULL;
            if (!has) {
                PyObject *count = PyDict_GetItemWithError(self->future, key);
                if (count != NULL) {
                    long long value = PyLong_AsLongLong(count);
                    if (value == -1 && PyErr_Occurred())
                        return NULL;
                    has = value > 0;
                }
                else if (PyErr_Occurred())
                    return NULL;
            }
            if (has) {
                if (t <= ceiling)
                    blocked[n_blocked++] = (long long)slot;
                continue;
            }
            if (t <= ceiling) {
                discard[n_discard++] = (long long)slot;
                continue;
            }
            /* above the ceiling: noise verdict not final, stays
             * eligible (and stalls below, never delivers) */
        }
        if (best_slot < 0 || p < best_pri
            || (p == best_pri
                && (t < best_ts || (t == best_ts && seq[slot] < best_seq)))) {
            best_slot = slot;
            best_pri = p;
            best_ts = t;
            best_seq = seq[slot];
        }
    }
    if (n_discard)
        return PyLong_FromLongLong(K_DISCARD | n_discard << 3);
    if (best_slot >= 0) {
        if (best_ts > ceiling)
            return PyLong_FromLong(K_STALL);
        return PyLong_FromLongLong(K_RULE2 | (long long)best_slot << 3);
    }
    return PyLong_FromLongLong(K_BLOCKED | n_blocked << 3);
}

static PyTypeObject SelectorType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.core.kernel._native.Selector",
    .tp_basicsize = sizeof(Selector),
    .tp_dealloc = (destructor)Selector_dealloc,
    .tp_call = (ternaryfunc)Selector_call,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Bound candidate-selection sweep over the ranker's head columns.",
};

static int
acquire_column(PyObject *obj, Py_buffer *view, const char *expect_format,
               const char *name)
{
    if (PyObject_GetBuffer(obj, view, PyBUF_FORMAT | PyBUF_WRITABLE) < 0)
        return -1;
    if (view->format == NULL || strcmp(view->format, expect_format) != 0
        || view->ndim != 1) {
        PyErr_Format(PyExc_TypeError,
                     "%s must be a one-dimensional array('%s')", name,
                     expect_format);
        PyBuffer_Release(view);
        return -1;
    }
    return 0;
}

static PyObject *
make_selector(PyObject *module, PyObject *args)
{
    /* Positional signature is identical to reference.make_selector. */
    PyObject *ts, *pri, *seq, *keys, *mmap, *buffered, *future;
    PyObject *blocked, *discard;
    if (!PyArg_ParseTuple(args, "OOOOOOOOO", &ts, &pri, &seq, &keys, &mmap,
                          &buffered, &future, &blocked, &discard))
        return NULL;
    if (!PyList_Check(keys)) {
        PyErr_SetString(PyExc_TypeError, "head_keys must be a list");
        return NULL;
    }
    /* future is a collections.Counter: a dict subclass whose entries
     * live in the plain dict storage, so raw dict probes see them. */
    if (!PyDict_Check(mmap) || !PyDict_Check(buffered)
        || !PyDict_Check(future)) {
        PyErr_SetString(PyExc_TypeError,
                        "mmap_pending, buffered and future must be dicts");
        return NULL;
    }

    Selector *self = PyObject_New(Selector, &SelectorType);
    if (self == NULL)
        return NULL;
    self->bound = 0;
    self->keys = NULL;
    self->mmap = NULL;
    self->buffered = NULL;
    self->future = NULL;
    memset(&self->ts, 0, sizeof(Py_buffer));
    memset(&self->pri, 0, sizeof(Py_buffer));
    memset(&self->seq, 0, sizeof(Py_buffer));
    memset(&self->blocked, 0, sizeof(Py_buffer));
    memset(&self->discard, 0, sizeof(Py_buffer));

    if (acquire_column(ts, &self->ts, "d", "head_ts") < 0)
        goto fail_ts;
    if (acquire_column(pri, &self->pri, "q", "head_pri") < 0)
        goto fail_pri;
    if (acquire_column(seq, &self->seq, "q", "head_seq") < 0)
        goto fail_seq;
    if (acquire_column(blocked, &self->blocked, "q", "blocked_out") < 0)
        goto fail_blocked;
    if (acquire_column(discard, &self->discard, "q", "discard_out") < 0)
        goto fail_discard;
    self->bound = 1;
    self->n = self->ts.len / (Py_ssize_t)sizeof(double);
    if (PyList_GET_SIZE(keys) < self->n
        || self->pri.len / (Py_ssize_t)sizeof(long long) < self->n
        || self->seq.len / (Py_ssize_t)sizeof(long long) < self->n
        || self->blocked.len / (Py_ssize_t)sizeof(long long) < self->n
        || self->discard.len / (Py_ssize_t)sizeof(long long) < self->n) {
        PyErr_SetString(PyExc_ValueError,
                        "head columns disagree on the slot count");
        Py_DECREF(self);
        return NULL;
    }

    Py_INCREF(keys);
    self->keys = keys;
    Py_INCREF(mmap);
    self->mmap = mmap;
    Py_INCREF(buffered);
    self->buffered = buffered;
    Py_INCREF(future);
    self->future = future;
    return (PyObject *)self;

fail_discard:
    PyBuffer_Release(&self->blocked);
fail_blocked:
    PyBuffer_Release(&self->seq);
fail_seq:
    PyBuffer_Release(&self->pri);
fail_pri:
    PyBuffer_Release(&self->ts);
fail_ts:
    Py_TYPE(self)->tp_free((PyObject *)self);
    return NULL;
}

static PyMethodDef kernel_methods[] = {
    {"make_selector", make_selector, METH_VARARGS,
     "make_selector(head_ts, head_pri, head_seq, head_keys, mmap_pending,\n"
     "              buffered, future, blocked_out, discard_out)\n"
     "Bind a compiled selector over the ranker's head columns."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernelmodule = {
    PyModuleDef_HEAD_INIT,
    "_kernel",
    "Compiled candidate-selection kernel (see kernel/reference.py).",
    -1,
    kernel_methods,
};

PyMODINIT_FUNC
PyInit__kernel(void)
{
    if (PyType_Ready(&SelectorType) < 0)
        return NULL;
    PyObject *module = PyModule_Create(&kernelmodule);
    if (module == NULL)
        return NULL;
    if (PyModule_AddIntConstant(module, "RULE1", K_RULE1) < 0
        || PyModule_AddIntConstant(module, "RULE2", K_RULE2) < 0
        || PyModule_AddIntConstant(module, "EMPTY", K_EMPTY) < 0
        || PyModule_AddIntConstant(module, "DISCARD", K_DISCARD) < 0
        || PyModule_AddIntConstant(module, "BLOCKED", K_BLOCKED) < 0
        || PyModule_AddIntConstant(module, "STALL", K_STALL) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
