"""Reference rank-kernel: the array-driven candidate-selection sweep.

This module is the *semantic definition* of the kernel seam.  The golden
digest matrices are generated with this implementation; the compiled
backend (:mod:`repro.core.kernel._native`) re-implements exactly the same
decision function over exactly the same memory layout and is required to
be byte-identical to it (``tests/test_kernel.py`` proves it on the full
golden matrix and a fuzz smoke).

Layout
------
The ranker maintains one *slot* per node, in queue-registration order
(which is also the sweep's scan order -- tie-breaks depend on it).  Per
slot it keeps four parallel head columns, refreshed incrementally
whenever a queue head changes (deliver, refill into an empty queue,
noise discard, head-swap promotion, streaming ingest of a new node):

* ``head_ts``   -- ``array('d')``: head local timestamp, ``+inf`` when
  the slot's queue is empty (the empty marker; the other columns are
  stale and must not be read then),
* ``head_pri``  -- ``array('q')``: head candidate priority, which for
  activities *is* the :class:`~repro.core.activity.ActivityType` value
  (``RECEIVE == 3`` identifies receive heads),
* ``head_seq``  -- ``array('q')``: head global sequence number (the
  Rule-2 tie-break),
* ``head_keys`` -- plain list: the head's interned message key (a dense
  int) when the head is a RECEIVE, ``None`` otherwise.  Kept as boxed
  ints so both kernels probe the index dicts without re-boxing.

The decision function never mutates ranker state; it returns a packed
``code | (value << 3)`` int and writes slot lists for the two multi-slot
verdicts into the caller-provided ``blocked_out`` / ``discard_out``
scratch arrays.  The Python side performs the actual state changes
(deliver, discard, blockage resolution, refill), so determinism-critical
bookkeeping has exactly one implementation.
"""

from __future__ import annotations

import math

#: Packed decision codes (low 3 bits of the selector's return value).
#: The compiled kernel hardcodes the same values; ``tests/test_kernel``
#: asserts the two tables agree.
RULE1 = 0  #: value = slot of the Rule-1 candidate (deliver its head)
RULE2 = 1  #: value = slot of the Rule-2 minimum (deliver its head)
EMPTY = 2  #: every queue is empty (caller: exhausted / force-fetch)
DISCARD = 3  #: value = count of noise slots written to ``discard_out``
BLOCKED = 4  #: value = count of blocked slots written to ``blocked_out``
STALL = 5  #: nothing decidable below the ceiling (streaming) -- stop

_INF = math.inf


def make_selector(
    head_ts,
    head_pri,
    head_seq,
    head_keys,
    mmap_pending,
    buffered,
    future,
    blocked_out,
    discard_out,
):
    """Bind a selector over the ranker's head columns and index dicts.

    The returned callable ``select(ceiling) -> int`` runs the fused
    two-sweep candidate selection of ``Ranker.rank()`` over every slot.
    The slot count is fixed at binding time: growing the columns (a
    streaming ingest registering a new node) reallocates them, which
    forces a re-bind anyway -- so the per-call argument list is just the
    delivery ceiling.  This is the hottest call in the tracer.
    """
    n = len(head_ts)
    mmap_get = mmap_pending.get
    future_get = future.get

    def select(ceiling):
        # Sweep 1 -- emptiness, the earliest head (for the streaming
        # ceiling check) and Rule 1: the earliest head RECEIVE whose
        # matching SEND sits in the engine's mmap.  Ties break to the
        # first slot in scan order (strict ``<``), exactly as the
        # pre-kernel loop broke them by dict iteration order.
        empty = True
        earliest = _INF
        cand_slot = -1
        cand_ts = _INF
        for slot in range(n):
            ts = head_ts[slot]
            if ts == _INF:
                continue
            empty = False
            if ts < earliest:
                earliest = ts
            if head_pri[slot] == 3 and mmap_get(head_keys[slot]):
                if ts < cand_ts:
                    cand_ts = ts
                    cand_slot = slot
        if empty:
            return EMPTY
        if earliest > ceiling:  # batch ceiling is +inf: never true
            return STALL
        if cand_slot >= 0:
            if cand_ts > ceiling:
                return STALL
            return RULE1 | cand_slot << 3

        # Sweep 2 -- Rule 1 missed, so no RECEIVE head has an mmap
        # match: classify every head as noise (discard), blocked (a
        # matching SEND is buffered or awaits fetch: never selectable)
        # or eligible, and track the Rule-2 minimum among the eligible.
        n_discard = 0
        n_blocked = 0
        best_slot = -1
        best_pri = best_ts = best_seq = 0
        for slot in range(n):
            ts = head_ts[slot]
            if ts == _INF:
                continue
            pri = head_pri[slot]
            if pri == 3:
                key = head_keys[slot]
                if key in buffered or future_get(key, 0) > 0:
                    if ts <= ceiling:
                        blocked_out[n_blocked] = slot
                        n_blocked += 1
                    continue
                if ts <= ceiling:
                    discard_out[n_discard] = slot
                    n_discard += 1
                    continue
                # above the ceiling the noise verdict is not final: the
                # head stays eligible (and stalls below, never delivers)
            if (
                best_slot < 0
                or pri < best_pri
                or (
                    pri == best_pri
                    and (
                        ts < best_ts
                        or (ts == best_ts and head_seq[slot] < best_seq)
                    )
                )
            ):
                best_slot = slot
                best_pri = pri
                best_ts = ts
                best_seq = head_seq[slot]
        if n_discard:
            return DISCARD | n_discard << 3
        if best_slot >= 0:
            if best_ts > ceiling:
                return STALL
            return RULE2 | best_slot << 3
        return BLOCKED | n_blocked << 3

    return select
