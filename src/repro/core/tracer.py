"""PreciseTracer: the top-level public API of the reproduction.

A :class:`PreciseTracer` bundles the whole offline pipeline of Fig. 2:

    raw TCP_TRACE records
        -> attribute noise filter + BEGIN/END classification
        -> ranker (sliding window, Rule 1 / Rule 2, is_noise)
        -> engine (CAG construction)
        -> CAGs
        -> pattern classification, latency percentages, diagnosis

Typical use::

    from repro import PreciseTracer, FrontendSpec

    tracer = PreciseTracer(
        frontends=[FrontendSpec(ip="10.0.0.1", port=80,
                                internal_ips=frozenset({"10.0.0.1", "10.0.0.2"}))],
        window=0.010,
        ignore_programs={"sshd", "rlogind"},
    )
    result = tracer.trace_lines(open("trace.log"))
    for pattern in result.patterns():
        print(pattern.describe())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from .accuracy import AccuracyReport, GroundTruthRequest, path_accuracy
from .activity import Activity
from .cag import CAG
from .correlator import CorrelationResult, Correlator
from .debugging import LatencyProfile
from .latency import LatencyBreakdown, average_breakdown
from .log_format import ActivityClassifier, FrontendSpec, RawRecord, parse_log
from .patterns import PathPattern, PatternClassifier


@dataclass
class TraceResult:
    """Everything PreciseTracer extracted from one trace."""

    correlation: CorrelationResult
    filtered_records: int = 0
    #: memoised pattern classification -- several analysis consumers
    #: (profiles, ranked reports, summaries) all start from the same
    #: classification of the same immutable CAG set, so it is computed
    #: once per trace
    _patterns: Optional[List[PathPattern]] = field(
        default=None, repr=False, compare=False
    )

    # -- CAG access ---------------------------------------------------------

    @property
    def cags(self) -> List[CAG]:
        """Completed causal paths (one per traced request)."""
        return self.correlation.cags

    @property
    def incomplete_cags(self) -> List[CAG]:
        """Causal paths whose END was never observed (in-flight or deformed)."""
        return self.correlation.incomplete_cags

    @property
    def request_count(self) -> int:
        return len(self.cags)

    @property
    def correlation_time(self) -> float:
        """Wall-clock seconds the correlator spent (Fig. 9/10/14 metric)."""
        return self.correlation.correlation_time

    @property
    def peak_memory_bytes(self) -> int:
        """Estimated peak working set of the correlator (Fig. 11 metric)."""
        return self.correlation.peak_memory_bytes

    # -- analysis helpers ----------------------------------------------------

    def patterns(self) -> List[PathPattern]:
        """Causal-path patterns, most frequent first (memoised)."""
        if self._patterns is None:
            classifier = PatternClassifier()
            classifier.add_all(self.cags)
            self._patterns = classifier.patterns
        return self._patterns

    def dominant_pattern(self) -> Optional[PathPattern]:
        patterns = self.patterns()
        return patterns[0] if patterns else None

    def profile(self, name: str, use_dominant_pattern: bool = True) -> LatencyProfile:
        """Latency-percentage profile of this trace (Fig. 15/17 rows)."""
        if use_dominant_pattern:
            pattern = self.dominant_pattern()
            if pattern is None:
                return LatencyProfile(name=name, breakdown=LatencyBreakdown())
            return LatencyProfile.from_pattern(name, pattern)
        return LatencyProfile.from_cags(name, self.cags)

    def average_breakdown(self) -> LatencyBreakdown:
        """Average per-segment latency over every completed path."""
        return average_breakdown(self.cags)

    def accuracy(
        self,
        ground_truth: Mapping[int, GroundTruthRequest],
        time_tolerance: float = 1e-6,
    ) -> AccuracyReport:
        """Score the trace against an oracle (Section 5.2)."""
        return path_accuracy(self.cags, ground_truth, time_tolerance=time_tolerance)

    def summary(self) -> Dict[str, float]:
        data = self.correlation.summary()
        data["filtered_records"] = float(self.filtered_records)
        return data


class PreciseTracer:
    """Facade wiring the classifier, the correlator and the analysis layer.

    Parameters
    ----------
    frontends:
        Network-level description of the service entry points, used to
        recognise BEGIN/END activities.
    window:
        Sliding-time-window size in seconds; any positive value works, the
        choice only trades memory/time (Fig. 10/11).
    ignore_programs / ignore_ports / ignore_ips:
        Attribute-based noise filters (Section 4.3, first mechanism).
    """

    def __init__(
        self,
        frontends: Sequence[FrontendSpec],
        window: float = 0.010,
        ignore_programs: Optional[Set[str]] = None,
        ignore_ports: Optional[Set[int]] = None,
        ignore_ips: Optional[Set[str]] = None,
    ) -> None:
        self.frontends = list(frontends)
        self.window = window
        self.ignore_programs = set(ignore_programs or set())
        self.ignore_ports = set(ignore_ports or set())
        self.ignore_ips = set(ignore_ips or set())

    # -- entry points -----------------------------------------------------------

    def trace_lines(self, lines: Iterable[str]) -> TraceResult:
        """Trace from raw TCP_TRACE text lines (possibly several nodes mixed)."""
        return self.trace_records(parse_log(lines))

    def trace_records(self, records: Iterable[RawRecord]) -> TraceResult:
        """Trace from parsed raw records."""
        classifier = self._make_classifier()
        activities = classifier.classify_all(records)
        result = self._correlate(activities)
        result.filtered_records = classifier.filtered_count
        return result

    def trace_activities(self, activities: Iterable[Activity]) -> TraceResult:
        """Trace from already-classified activities (e.g. from the simulator)."""
        return self._correlate(list(activities))

    def trace_node_logs(self, logs: Mapping[str, Iterable[str]]) -> TraceResult:
        """Trace from per-node log files, the natural shape of gathered logs."""
        classifier = self._make_classifier()
        activities: List[Activity] = []
        for _node, lines in logs.items():
            activities.extend(classifier.classify_all(parse_log(lines)))
        result = self._correlate(activities)
        result.filtered_records = classifier.filtered_count
        return result

    # -- internals ---------------------------------------------------------------

    def _make_classifier(self) -> ActivityClassifier:
        return ActivityClassifier(
            frontends=self.frontends,
            ignore_programs=set(self.ignore_programs),
            ignore_ports=set(self.ignore_ports),
            ignore_ips=set(self.ignore_ips),
        )

    def _correlate(self, activities: Sequence[Activity]) -> TraceResult:
        correlator = Correlator(window=self.window)
        correlation = correlator.correlate(activities)
        return TraceResult(correlation=correlation)
