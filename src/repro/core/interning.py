"""Key interning and columnar activity storage (the hot-path substrate).

The correlation algorithm never inspects the *content* of an identity
key: the ranker's future-send registry, the engine's ``cmap``/``mmap``
and the CAG bookkeeping only ever hash keys and compare them for
equality.  That makes the keys themselves replaceable: this module
interns every distinct context 4-tuple, connection 4-tuple and node
hostname into a dense ``int`` the first time it is seen, and the whole
hot path -- ranker sweeps, index-map lookups, buffered-send indexing,
tombstone purges -- runs on those ints end-to-end.  Interning is
injective and first-seen ordered, so every keyed structure behaves
exactly as it did with tuple keys (same membership, same insertion
order, same iteration order); only the hash and comparison cost drops.

Two deliberate boundaries keep the refactor byte-identical:

* **Digests and sampling hash the original identity.**  Interned ids
  are an artefact of one process's ingest order; anything that leaves
  the process (golden digests, the root-hash sampling decision) must
  resolve back to the string/tuple identity first.  See
  ``repro.sampling.sampler.root_key`` and
  ``repro.pipeline.equivalence._fingerprint``.
* **Process-pool workers rebuild the identical key space.**  A worker
  that receives pickled activities receives their interned ints
  verbatim (slots dataclasses do not re-run ``__post_init__`` on
  unpickle), so the parent ships an interner :meth:`~KeyInterner.
  snapshot` alongside each shard and the worker :meth:`~KeyInterner.
  install`\\ s it before correlating.

:class:`ActivityTable` is the companion columnar store: parallel
arrays of type / timestamp / interned keys / size, with ``Activity``
objects materialised lazily (and cached) only where the object API is
required -- the CAG/export boundary.  The table is iterable, so every
correlator entry point accepts it wherever a plain activity list is
accepted today.
"""

from __future__ import annotations

import threading
from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: Raw context identity: (hostname, program, pid, tid).
ContextTuple = Tuple[str, str, int, int]
#: Raw directional connection identity: (src_ip, src_port, dst_ip, dst_port).
MessageTuple = Tuple[str, int, str, int]


class KeyInterner:
    """Bidirectional dense-int interner for the three identity key kinds.

    Ids are assigned first-seen, per kind, starting at 0.  Lookups on
    the hot path go through the plain dicts (``_context_ids`` etc.)
    without taking the lock -- dict reads are atomic under the GIL and
    the maps are append-only -- while every miss takes the lock, so
    concurrent ingest threads agree on one id per key.
    """

    __slots__ = (
        "_lock",
        "_context_ids",
        "_context_tuples",
        "_contexts",
        "_message_ids",
        "_message_tuples",
        "_node_ids",
        "_nodes",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._context_ids: Dict[ContextTuple, int] = {}
        self._context_tuples: List[ContextTuple] = []
        # Canonical ContextId object per id, materialised lazily when the
        # id was interned from a raw tuple (snapshot install, table load).
        self._contexts: List[object] = []
        self._message_ids: Dict[MessageTuple, int] = {}
        self._message_tuples: List[MessageTuple] = []
        self._node_ids: Dict[str, int] = {}
        self._nodes: List[str] = []

    # -- interning ----------------------------------------------------------

    def intern_context(self, context) -> int:
        """Intern a :class:`~repro.core.activity.ContextId`, keeping it as
        the canonical object for :meth:`resolve_context`."""
        key = context.as_tuple()
        with self._lock:
            cid = self._context_ids.get(key)
            if cid is None:
                cid = len(self._context_tuples)
                self._context_tuples.append(key)
                self._contexts.append(context)
                self._context_ids[key] = cid
            elif self._contexts[cid] is None:
                self._contexts[cid] = context
        return cid

    def intern_context_key(self, key: ContextTuple) -> int:
        """Intern a raw context 4-tuple (no canonical object yet)."""
        with self._lock:
            cid = self._context_ids.get(key)
            if cid is None:
                cid = len(self._context_tuples)
                self._context_tuples.append(key)
                self._contexts.append(None)
                self._context_ids[key] = cid
        return cid

    def intern_message_key(self, key: MessageTuple) -> int:
        """Intern a directional connection 4-tuple."""
        with self._lock:
            mid = self._message_ids.get(key)
            if mid is None:
                mid = len(self._message_tuples)
                self._message_tuples.append(key)
                self._message_ids[key] = mid
        return mid

    def intern_node(self, hostname: str) -> int:
        """Intern a node hostname."""
        with self._lock:
            nid = self._node_ids.get(hostname)
            if nid is None:
                nid = len(self._nodes)
                self._nodes.append(hostname)
                self._node_ids[hostname] = nid
        return nid

    # -- resolving ----------------------------------------------------------

    def resolve_context(self, cid: int):
        """Return the canonical :class:`ContextId` for an interned id."""
        context = self._contexts[cid]
        if context is None:
            from .activity import ContextId

            context = ContextId(*self._context_tuples[cid])
            self._contexts[cid] = context
        return context

    def resolve_context_key(self, cid: int) -> ContextTuple:
        """Return the raw context 4-tuple for an interned id."""
        return self._context_tuples[cid]

    def resolve_message_key(self, mid: int) -> MessageTuple:
        """Return the directional connection 4-tuple for an interned id."""
        return self._message_tuples[mid]

    def resolve_node(self, nid: int) -> str:
        """Return the hostname for an interned node id."""
        return self._nodes[nid]

    # -- introspection --------------------------------------------------------

    def sizes(self) -> Dict[str, int]:
        """Distinct key counts per kind (monitoring / tests)."""
        return {
            "contexts": len(self._context_tuples),
            "messages": len(self._message_tuples),
            "nodes": len(self._nodes),
        }

    # -- cross-process key-space transfer ------------------------------------

    def snapshot(self) -> Dict[str, list]:
        """Picklable copy of the id assignment (raw tuples only).

        Ship this to process-pool workers alongside their shard so
        :meth:`install` can rebuild the identical key space before any
        interned activity is touched.
        """
        with self._lock:
            return {
                "contexts": list(self._context_tuples),
                "messages": list(self._message_tuples),
                "nodes": list(self._nodes),
            }

    def install(self, snapshot: Dict[str, list]) -> None:
        """Adopt a snapshot's id assignment, in place and append-only.

        The existing assignment must be a prefix of the snapshot's (the
        fork-start case, where the child inherits the parent's interner
        wholesale, degenerates to a no-op).  The maps are extended in
        place -- never rebound -- because hot-path modules hold direct
        references to them.
        """
        with self._lock:
            self._install_keys(
                snapshot["contexts"],
                self._context_ids,
                self._context_tuples,
                "context",
                objects=self._contexts,
            )
            self._install_keys(
                snapshot["messages"], self._message_ids, self._message_tuples, "message"
            )
            self._install_keys(snapshot["nodes"], self._node_ids, self._nodes, "node")

    @staticmethod
    def _install_keys(keys, ids, ordered, kind, objects=None):
        have = len(ordered)
        if ordered and ordered[: min(have, len(keys))] != keys[: min(have, len(keys))]:
            raise ValueError(
                f"interner snapshot conflicts with existing {kind} id assignment"
            )
        for key in keys[have:]:
            ids[key] = len(ordered)
            ordered.append(key)
            if objects is not None:
                objects.append(None)


#: Process-wide interner.  ``Activity.__post_init__`` interns through this
#: instance, so every activity constructed in one process shares one key
#: space.  It grows monotonically with the number of *distinct* keys --
#: bounded by deployment size, not trace length.
INTERNER = KeyInterner()


class ActivityTable:
    """Columnar activity storage: struct-packed parallel arrays.

    One row per activity, held as :mod:`array` columns (about 57 bytes a
    row against roughly 480 bytes for the ``Activity`` object graph):

    ========== ===== ==============================================
    column     type  content
    ========== ===== ==============================================
    type       b     :class:`ActivityType` value / Rule 2 priority
    timestamp  d     local timestamp (seconds)
    ckey       q     interned context key
    mkey       q     interned message (connection) key
    nkey       q     interned node key
    size       q     logged / merged byte count
    request_id q     ground-truth request id (-1 = ``None``)
    seq        q     global creation sequence number
    ========== ===== ==============================================

    ``Activity`` objects rematerialise lazily through :meth:`activity`
    (cached per row), which is the CAG/export boundary: the engine
    mutates ``size`` in place while merging segmented parts, so each
    full correlation pass must consume **fresh** rows --
    :meth:`iter_fresh` materialises without touching the cache, exactly
    like ``MemorySource`` re-clones per pass.
    """

    __slots__ = (
        "_types",
        "_timestamps",
        "_ckeys",
        "_mkeys",
        "_nkeys",
        "_sizes",
        "_request_ids",
        "_seqs",
        "_cache",
        "interner",
    )

    def __init__(self, interner: Optional[KeyInterner] = None) -> None:
        self.interner = INTERNER if interner is None else interner
        self._types = array("b")
        self._timestamps = array("d")
        self._ckeys = array("q")
        self._mkeys = array("q")
        self._nkeys = array("q")
        self._sizes = array("q")
        self._request_ids = array("q")
        self._seqs = array("q")
        self._cache: Dict[int, object] = {}

    # -- building -------------------------------------------------------------

    @classmethod
    def from_activities(cls, activities: Iterable, interner=None) -> "ActivityTable":
        """Pack an activity iterable into columns (keys already interned)."""
        table = cls(interner=interner)
        table.extend(activities)
        return table

    def append(self, activity) -> None:
        """Append one activity's row (its interned keys are reused as-is)."""
        self._types.append(int(activity.type))
        self._timestamps.append(activity.timestamp)
        self._ckeys.append(activity.context_key)
        self._mkeys.append(activity.message_key)
        self._nkeys.append(activity.node_key)
        self._sizes.append(activity.size)
        request_id = activity.request_id
        self._request_ids.append(-1 if request_id is None else request_id)
        self._seqs.append(activity.seq)

    def extend(self, activities: Iterable) -> None:
        for activity in activities:
            self.append(activity)

    # -- row access -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._types)

    def timestamp(self, row: int) -> float:
        return self._timestamps[row]

    def context_key(self, row: int) -> int:
        return self._ckeys[row]

    def message_key(self, row: int) -> int:
        return self._mkeys[row]

    def node_key(self, row: int) -> int:
        return self._nkeys[row]

    def activity(self, row: int):
        """Materialise (and cache) the ``Activity`` view of one row."""
        cached = self._cache.get(row)
        if cached is None:
            cached = self._materialise(row)
            self._cache[row] = cached
        return cached

    def _materialise(self, row: int):
        from .activity import Activity, ActivityType, MessageId

        interner = self.interner
        connection = interner.resolve_message_key(self._mkeys[row])
        request_id = self._request_ids[row]
        size = self._sizes[row]
        return Activity(
            type=ActivityType(self._types[row]),
            timestamp=self._timestamps[row],
            context=interner.resolve_context(self._ckeys[row]),
            message=MessageId(*connection, size),
            request_id=None if request_id < 0 else request_id,
            seq=self._seqs[row],
            size=size,
        )

    def __iter__(self) -> Iterator:
        """Iterate cached ``Activity`` views (object-API boundary)."""
        for row in range(len(self._types)):
            yield self.activity(row)

    def iter_fresh(self) -> Iterator:
        """Materialise fresh, uncached rows -- one correlation pass's worth.

        The engine mutates ``size`` during n-to-n merging, so feeding a
        correlator cached rows would poison later passes; sources built
        on a table hand out fresh rows per pass instead.
        """
        for row in range(len(self._types)):
            yield self._materialise(row)

    # -- accounting -----------------------------------------------------------

    def nbytes(self) -> int:
        """Byte size of the packed columns (excludes cache and interner)."""
        return sum(
            column.itemsize * len(column)
            for column in (
                self._types,
                self._timestamps,
                self._ckeys,
                self._mkeys,
                self._nkeys,
                self._sizes,
                self._request_ids,
                self._seqs,
            )
        )
