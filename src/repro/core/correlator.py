"""The Correlator: ranker + engine wired together (Fig. 2).

The Correlator is the offline analysis component of PreciseTracer.  It
takes the activity logs gathered on every node (already transformed into
typed activities), performs the three steps of Section 4:

1. sort each node's activities by its local timestamps,
2. let the *ranker* choose candidate activities through the sliding
   time window,
3. let the *engine* correlate candidates into CAGs,

and reports the resulting CAGs together with runtime statistics
(correlation time, memory consumption, noise counters) that the
evaluation section of the paper measures.

The Correlator is strictly *offline*: it buffers every activity before
the first CAG comes out, and its working set grows with the trace.  For
online analysis of live logs -- CAGs emitted as requests finish, memory
bounded by a watermark horizon, optional shard-parallel execution -- use
the drop-in counterparts in :mod:`repro.stream`
(:class:`~repro.stream.StreamingCorrelator`,
:class:`~repro.stream.IncrementalEngine`,
:class:`~repro.stream.ShardedCorrelator`).  With eviction disabled the
streaming path produces byte-identical CAGs to this one.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from .activity import Activity
from .cag import CAG
from .engine import CorrelationEngine, EngineStats
from .ranker import Ranker, RankerStats

#: Approximate in-memory footprint of one buffered activity, used by the
#: memory accounting below.  Measured once on CPython for the Activity
#: dataclass plus its identifiers; the precise constant does not matter,
#: only proportionality to the number of live objects (Fig. 11).
_ACTIVITY_FOOTPRINT_BYTES = 480


@dataclass
class CorrelationResult:
    """Everything the Correlator produced for one trace."""

    cags: List[CAG]
    incomplete_cags: List[CAG]
    correlation_time: float
    peak_buffered_activities: int
    peak_state_entries: int
    ranker_stats: RankerStats
    engine_stats: EngineStats
    window: float
    total_activities: int
    #: per-shard activity counts when the sharded driver produced this
    #: result (``None`` for the batch and streaming drivers)
    shard_sizes: Optional[List[int]] = None
    #: live bookkeeping entries (index maps, owners, open CAGs) left in
    #: the engine after the drain -- the leak-sanity figure the fuzz
    #: harness compares between sampled and unsampled runs
    final_state_entries: int = 0
    #: sampled-out tombstones still open after the drain; a drained batch
    #: run must satisfy ``sampled_out_roots == sampled_out_finished +
    #: final_open_tombstones`` (nothing leaked, nothing double-counted)
    final_open_tombstones: int = 0

    @property
    def completed_requests(self) -> int:
        return len(self.cags)

    @property
    def peak_memory_bytes(self) -> int:
        """Estimated peak working-set of the Correlator.

        The dominant term is the ranker buffer (it grows with the sliding
        window, which is exactly the effect Fig. 11 demonstrates); the
        engine's index maps and open CAGs contribute the rest.
        """
        live_entries = self.peak_buffered_activities + self.peak_state_entries
        return live_entries * _ACTIVITY_FOOTPRINT_BYTES

    def summary(self) -> Dict[str, float]:
        """Compact dictionary used by reports and benchmarks."""
        return {
            "completed_requests": float(self.completed_requests),
            "incomplete_cags": float(len(self.incomplete_cags)),
            "correlation_time_s": self.correlation_time,
            "peak_memory_bytes": float(self.peak_memory_bytes),
            "total_activities": float(self.total_activities),
            "noise_discarded": float(self.ranker_stats.noise_discarded),
            "window_s": self.window,
        }


class Correlator:
    """Offline correlator over a set of per-node activity streams.

    Entry points: :meth:`correlate` for a flat activity collection (any
    order) and :meth:`correlate_streams` for per-node lists -- the shape
    gathered log files naturally have.  Both return a
    :class:`CorrelationResult`; the streaming counterpart
    (:class:`repro.stream.StreamingCorrelator`) returns the same type, so
    downstream analysis code never needs to know which path produced it.
    """

    def __init__(
        self,
        window: float = 0.010,
        sample_interval: int = 256,
        sampling=None,
        sampling_decisions=None,
    ) -> None:
        """
        Parameters
        ----------
        window:
            Sliding-time-window size in seconds (any positive value).
        sample_interval:
            How often (in delivered candidates) the memory accounting
            samples the live-object counts.  Sampling keeps the overhead
            of bookkeeping negligible for large traces.
        sampling:
            Optional :class:`repro.sampling.SamplingSpec`: trace only a
            deterministic subset of the requests, decided at each causal
            root.  Sampled-out requests cost index-map bookkeeping but
            build no CAG and surface nowhere in the result.
        sampling_decisions:
            Pre-frozen decision set (see
            :func:`repro.sampling.precompute_decisions`); when absent and
            the policy needs one (the per-second budget), the pre-pass
            runs here.  The sharded driver passes shards a shared set so
            every shard agrees with the whole-trace decision order.
        """
        if window <= 0:
            raise ValueError("window must be positive")
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.window = window
        self.sample_interval = sample_interval
        self.sampling = sampling
        self.sampling_decisions = sampling_decisions

    def _make_sampler(self, streams: Dict[str, Sequence[Activity]]):
        if self.sampling is None:
            return None
        decisions = self.sampling_decisions
        if decisions is None:
            decisions = self.sampling.freeze(
                a for stream in streams.values() for a in stream
            )
        return self.sampling.make_sampler(decisions)

    # -- public API --------------------------------------------------------

    def correlate(self, activities: Iterable[Activity]) -> CorrelationResult:
        """Correlate a flat activity collection (any node order)."""
        by_node: Dict[str, List[Activity]] = {}
        total = 0
        for activity in activities:
            by_node.setdefault(activity.node_key, []).append(activity)
            total += 1
        return self.correlate_streams(by_node, total_activities=total)

    def correlate_streams(
        self,
        streams: Dict[str, Sequence[Activity]],
        total_activities: Optional[int] = None,
    ) -> CorrelationResult:
        """Correlate per-node streams (the natural shape of gathered logs)."""
        if total_activities is None:
            total_activities = sum(len(s) for s in streams.values())

        engine = CorrelationEngine(sampler=self._make_sampler(streams))
        ranker = Ranker(streams, mmap=engine.mmap, window=self.window)

        peak_buffered = 0
        peak_state = 0
        processed = 0

        # Hoist the two per-candidate method lookups out of the loop: the
        # loop body runs once per activity, so even attribute resolution
        # shows up on the Fig. 9 benchmark.
        rank = ranker.rank
        process = engine.process
        sample_interval = self.sample_interval
        until_sample = sample_interval
        # The correlation loop runs only internal code and allocates no
        # reference cycles (activities, CAGs and edges form an acyclic
        # object graph that plain reference counting reclaims), so the
        # cycle collector can only add full-heap scan pauses that grow
        # with the trace.  Pause it for the duration of the loop.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        start = time.perf_counter()
        try:
            while True:
                current = rank()
                if current is None:
                    break
                process(current)
                processed += 1
                until_sample -= 1
                if not until_sample:
                    until_sample = sample_interval
                    peak_buffered = max(peak_buffered, ranker.buffered_count())
                    peak_state = max(peak_state, engine.pending_state_size())
        finally:
            if gc_was_enabled:
                gc.enable()
        elapsed = time.perf_counter() - start

        peak_buffered = max(peak_buffered, ranker.stats.max_buffered)
        peak_state = max(peak_state, engine.pending_state_size())

        return CorrelationResult(
            cags=list(engine.finished_cags),
            incomplete_cags=list(engine.open_cags),
            correlation_time=elapsed,
            peak_buffered_activities=peak_buffered,
            peak_state_entries=peak_state,
            ranker_stats=ranker.stats,
            engine_stats=engine.stats,
            window=self.window,
            total_activities=total_activities,
            final_state_entries=engine.pending_state_size(),
            final_open_tombstones=engine.open_tombstone_count,
        )
