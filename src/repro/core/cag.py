"""Component Activity Graph (CAG) abstraction.

A CAG is a directed acyclic graph ``G(V, E)`` whose vertices are the
activities caused by one individual request and whose edges encode the two
happened-before relations of Section 3.2:

* **adjacent context relation** (``x --c--> y``): x happened right before
  y in the *same* execution entity (process or kernel thread);
* **message relation** (``x --m--> y``): x is the SEND of a message and y
  is the RECEIVE of the same message in a different execution entity.

Structural invariant (Section 3.2): every vertex has at most two parents,
and only a RECEIVE vertex may have two -- one context parent and one
message parent.

The CAG is the unit handed to the analysis layer: latency extraction,
pattern classification and performance debugging all operate on CAGs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .activity import Activity, ActivityType

#: Edge kinds.
CONTEXT_EDGE = "context"
MESSAGE_EDGE = "message"

_cag_counter = itertools.count()


def ensure_cag_ids_above(value: int) -> None:
    """Advance the global CAG id counter past ``value``.

    Checkpoint resume unpickles CAGs that carry ids assigned by another
    process; without this bump a freshly created CAG could reuse one of
    those ids and silently replace a live entry in the engine's
    id-keyed ``_open`` map.  Never moves the counter backwards.
    """
    global _cag_counter
    current = next(_cag_counter)
    _cag_counter = itertools.count(max(current, value + 1))


class CAGError(RuntimeError):
    """Raised when an operation would violate the CAG invariants."""


@dataclass(slots=True)
class Edge:
    """A directed edge of a CAG."""

    parent: Activity
    child: Activity
    kind: str  # CONTEXT_EDGE or MESSAGE_EDGE

    def latency(self) -> float:
        """Observed latency across this edge (child local time minus
        parent local time).  For message edges between different nodes
        the value embeds the clock skew, exactly as the paper notes."""
        return self.child.timestamp - self.parent.timestamp

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Edge({self.parent.type.name}->{self.child.type.name}, {self.kind})"


class CAG:
    """The causal path of one individual request.

    Vertices are added in the order the correlation engine discovers them,
    which (by construction of the ranker) is a valid topological order of
    the happened-before relation.
    """

    #: Real CAGs are never sampled out; the engine checks this flag to
    #: tell them apart from :class:`SampledOutCAG` tombstones.
    sampled_out = False

    def __init__(self, root: Activity, cag_id: Optional[int] = None) -> None:
        if not isinstance(root, Activity):
            raise CAGError("CAG root must be an Activity")
        self.cag_id: int = cag_id if cag_id is not None else next(_cag_counter)
        self.root: Activity = root
        self._vertices: List[Activity] = [root]
        self._edges: List[Edge] = []
        # ``_parents`` doubles as the vertex-membership set: every vertex
        # has an entry (the root's is empty), so no separate id set is
        # kept.  The children adjacency is derived: it is only read by
        # analysis (topological order, deformity checks), never by the
        # correlation hot path, so it is rebuilt lazily from ``_edges``
        # on first use and invalidated by every structural mutation.
        self._parents: Dict[int, List[Edge]] = {id(root): []}
        self._children_cache: Optional[Dict[int, List[Edge]]] = None
        self.finished: bool = False
        #: Local timestamp of the newest activity attributed to this CAG,
        #: maintained incrementally so streaming eviction never has to
        #: rescan the vertex list.  ``touch()`` also folds in merged
        #: kernel parts (segmented BEGIN/SEND/END reads and writes), which
        #: grow an existing vertex without adding a new one but still
        #: prove the request is alive.
        self.newest_timestamp: float = root.timestamp

    # -- construction ------------------------------------------------------

    def add_vertex(self, activity: Activity) -> None:
        """Add an activity vertex without connecting it yet."""
        if self.finished:
            raise CAGError("cannot add vertices to a finished CAG")
        vertex_id = id(activity)
        if vertex_id in self._parents:
            raise CAGError("activity already present in CAG")
        self._vertices.append(activity)
        self._parents[vertex_id] = []
        self._children_cache = None
        if activity.timestamp > self.newest_timestamp:
            self.newest_timestamp = activity.timestamp

    def add_edge(self, parent: Activity, child: Activity, kind: str) -> Edge:
        """Add a context or message edge.

        Both endpoints must already be vertices.  The Section 3.2
        invariant (at most two parents, two only for RECEIVE with one
        context and one message parent) is enforced here so that a buggy
        engine fails loudly instead of producing malformed paths.
        """
        if kind not in (CONTEXT_EDGE, MESSAGE_EDGE):
            raise CAGError(f"unknown edge kind {kind!r}")
        parent_id = id(parent)
        child_id = id(child)
        parents = self._parents
        if parent_id not in parents:
            raise CAGError("edge parent is not a vertex of this CAG")
        if child_id not in parents:
            raise CAGError("edge child is not a vertex of this CAG")
        if parent is child:
            raise CAGError("self edges are not allowed")

        existing = parents[child_id]
        if existing:
            if len(existing) >= 2:
                raise CAGError("a vertex may have at most two parents")
            if child.type is not ActivityType.RECEIVE:
                raise CAGError("only RECEIVE vertices may have two parents")
            if existing[0].kind == kind:
                raise CAGError(
                    "the two parents of a RECEIVE must use different relations"
                )

        edge = Edge(parent=parent, child=child, kind=kind)
        self._edges.append(edge)
        existing.append(edge)
        self._children_cache = None
        return edge

    def append(self, activity: Activity, parent: Activity, kind: str) -> Edge:
        """Add a vertex and connect it to ``parent`` in one step.

        This is the engine's per-candidate growth path, so it fuses
        ``add_vertex`` + ``add_edge`` into one call and skips the edge
        checks a brand-new child satisfies by construction (no existing
        parents, not a self edge); everything that can actually go wrong
        -- finished CAG, duplicate vertex, foreign parent, bad kind --
        still fails loudly.
        """
        if self.finished:
            raise CAGError("cannot add vertices to a finished CAG")
        # The engine always passes the module constants, so the identity
        # checks are the hot path; the equality fallback keeps equal
        # strings from other modules working.
        if (
            kind is not CONTEXT_EDGE
            and kind is not MESSAGE_EDGE
            and kind not in (CONTEXT_EDGE, MESSAGE_EDGE)
        ):
            raise CAGError(f"unknown edge kind {kind!r}")
        parents = self._parents
        vertex_id = id(activity)
        if vertex_id in parents:
            raise CAGError("activity already present in CAG")
        if id(parent) not in parents:
            raise CAGError("edge parent is not a vertex of this CAG")
        self._vertices.append(activity)
        edge = Edge(parent=parent, child=activity, kind=kind)
        parents[vertex_id] = [edge]
        self._edges.append(edge)
        self._children_cache = None
        if activity.timestamp > self.newest_timestamp:
            self.newest_timestamp = activity.timestamp
        return edge

    def splice_context_vertex(
        self, before: Activity, after: Activity, vertex: Activity
    ) -> None:
        """Rewire the context chain ``before -> after`` into
        ``before -> vertex -> after``.

        ``vertex`` must already be a vertex of this CAG (typically added
        with its message parent).  Used by the engine when a multi-part
        RECEIVE completes its byte count only after a later same-context
        activity was chained: inserting at the timestamp position keeps
        the context chain independent of the delivery interleaving.
        """
        if id(vertex) not in self._parents:
            raise CAGError("splice vertex is not a vertex of this CAG")
        for edge in self._parents.get(id(vertex), []):
            if edge.kind == CONTEXT_EDGE:
                raise CAGError("splice vertex already has a context parent")
        removed = None
        for edge in self._parents.get(id(after), []):
            if edge.kind == CONTEXT_EDGE and edge.parent is before:
                removed = edge
                break
        if removed is None:
            raise CAGError("no context edge between the given vertices")
        self._edges.remove(removed)
        self._parents[id(after)].remove(removed)
        self._children_cache = None
        self.add_edge(before, vertex, CONTEXT_EDGE)
        self.add_edge(vertex, after, CONTEXT_EDGE)

    def finish(self) -> None:
        """Mark the CAG as complete (an END activity was correlated)."""
        self.finished = True

    def touch(self, timestamp: float) -> None:
        """Record recent activity that did not add a vertex.

        Called by the engine when a kernel part is merged into an existing
        vertex (multi-part BEGIN bodies, segmented SEND/END writes) so the
        eviction recency of an open CAG reflects the merge, not just the
        first part.
        """
        if timestamp > self.newest_timestamp:
            self.newest_timestamp = timestamp

    # -- serialisation -----------------------------------------------------

    def __getstate__(self) -> Dict[str, object]:
        """Pickle support: the parents map is keyed by ``id(vertex)``,
        which does not survive a pickle round trip (unpickled vertices get
        new ids).  Serialise it keyed by vertex *position* instead; the
        process-pool sharded correlator ships CAGs across process
        boundaries and relies on this.  The children adjacency is not
        serialised at all -- it is derived from ``_edges`` on demand."""
        index = {id(vertex): i for i, vertex in enumerate(self._vertices)}
        return {
            "cag_id": self.cag_id,
            "root": self.root,
            "vertices": self._vertices,
            "edges": self._edges,
            "parents": {index[key]: edges for key, edges in self._parents.items()},
            "finished": self.finished,
            "newest_timestamp": self.newest_timestamp,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.cag_id = state["cag_id"]
        self.root = state["root"]
        self._vertices = state["vertices"]
        self._edges = state["edges"]
        self._parents = {
            id(self._vertices[i]): edges for i, edges in state["parents"].items()
        }
        self._children_cache = None
        self.finished = state["finished"]
        self.newest_timestamp = state["newest_timestamp"]

    # -- queries -----------------------------------------------------------

    def __contains__(self, activity: Activity) -> bool:
        return id(activity) in self._parents

    def __len__(self) -> int:
        return len(self._vertices)

    @property
    def vertices(self) -> Sequence[Activity]:
        return tuple(self._vertices)

    @property
    def edges(self) -> Sequence[Edge]:
        return tuple(self._edges)

    def _children_map(self) -> Dict[int, List[Edge]]:
        """The derived children adjacency, rebuilt lazily from the edge
        list (analysis-only; the correlation hot path never reads it)."""
        children = self._children_cache
        if children is None:
            children = {id(vertex): [] for vertex in self._vertices}
            for edge in self._edges:
                children[id(edge.parent)].append(edge)
            self._children_cache = children
        return children

    def parents_of(self, activity: Activity) -> List[Edge]:
        return list(self._parents.get(id(activity), []))

    def children_of(self, activity: Activity) -> List[Edge]:
        return list(self._children_map().get(id(activity), []))

    def context_parent(self, activity: Activity) -> Optional[Activity]:
        for edge in self._parents.get(id(activity), []):
            if edge.kind == CONTEXT_EDGE:
                return edge.parent
        return None

    def message_parent(self, activity: Activity) -> Optional[Activity]:
        for edge in self._parents.get(id(activity), []):
            if edge.kind == MESSAGE_EDGE:
                return edge.parent
        return None

    @property
    def end_activity(self) -> Optional[Activity]:
        """The END vertex, if the request completed."""
        for activity in reversed(self._vertices):
            if activity.type is ActivityType.END:
                return activity
        return None

    @property
    def begin_timestamp(self) -> float:
        return self.root.timestamp

    @property
    def end_timestamp(self) -> Optional[float]:
        end = self.end_activity
        return end.timestamp if end is not None else None

    def duration(self) -> Optional[float]:
        """End-to-end latency of the request as seen at the frontend node.

        BEGIN and END are observed on the same node, so this duration is
        immune to inter-node clock skew.
        """
        end_ts = self.end_timestamp
        if end_ts is None:
            return None
        return end_ts - self.begin_timestamp

    def components(self) -> List[Tuple[str, str]]:
        """Distinct (hostname, program) pairs in first-seen order."""
        seen: List[Tuple[str, str]] = []
        for activity in self._vertices:
            component = activity.component
            if component not in seen:
                seen.append(component)
        return seen

    def contexts(self) -> List[Tuple[str, str, int, int]]:
        """Distinct execution entities (raw 4-tuples) in first-seen order."""
        seen: List[Tuple[str, str, int, int]] = []
        seen_keys: Set[int] = set()
        for activity in self._vertices:
            key = activity.context_key
            if key not in seen_keys:
                seen_keys.add(key)
                seen.append(activity.context.as_tuple())
        return seen

    def request_ids(self) -> Set[int]:
        """Ground-truth request ids attached to the member activities.

        A correctly correlated CAG carries exactly one distinct id; mixed
        ids indicate a mis-correlation.  Used only for evaluation.
        """
        return {
            activity.request_id
            for activity in self._vertices
            if activity.request_id is not None
        }

    # -- causal ordering ---------------------------------------------------

    def topological_order(self, tie_key=None) -> List[Activity]:
        """Vertices in a topological order of the happened-before DAG.

        ``tie_key`` orders vertices that are ready simultaneously
        (concurrent fan-out branches).  The default breaks ties by
        insertion order -- the order the engine discovered the vertices
        in, which depends on the delivery interleaving; pass an explicit
        key (see :func:`repro.core.patterns.cag_signature`) when the
        order must be a function of the graph alone.  The insertion
        index stays as the final fallback so the order is always total.
        """
        indegree: Dict[int, int] = {
            id(vertex): len(self._parents[id(vertex)]) for vertex in self._vertices
        }
        order_index = {id(vertex): i for i, vertex in enumerate(self._vertices)}
        if tie_key is None:
            key = lambda v: order_index[id(v)]  # noqa: E731
        else:
            key = lambda v: (tie_key(v), order_index[id(v)])  # noqa: E731
        children = self._children_map()
        ready = [vertex for vertex in self._vertices if indegree[id(vertex)] == 0]
        ready.sort(key=key)
        result: List[Activity] = []
        while ready:
            vertex = ready.pop(0)
            result.append(vertex)
            for edge in children[id(vertex)]:
                indegree[id(edge.child)] -= 1
                if indegree[id(edge.child)] == 0:
                    ready.append(edge.child)
                    ready.sort(key=key)
        if len(result) != len(self._vertices):
            raise CAGError("CAG contains a cycle")
        return result

    def primary_path(self) -> List[Edge]:
        """The causal chain used for latency accounting.

        Starting from the root, each vertex is reached through exactly one
        *primary* parent: the message parent when it exists (the causally
        immediate predecessor across the network), otherwise the context
        parent.  The resulting edge list covers every vertex exactly once
        and is what Section 3.2 uses to attribute latency to components
        and to interactions.
        """
        primary_edges: List[Edge] = []
        for vertex in self._vertices[1:]:
            parent_edges = self._parents[id(vertex)]
            if not parent_edges:
                # Disconnected vertex (should not happen with a correct
                # engine); skip rather than crash analysis of a deformed CAG.
                continue
            message_edges = [e for e in parent_edges if e.kind == MESSAGE_EDGE]
            primary_edges.append(message_edges[0] if message_edges else parent_edges[0])
        return primary_edges

    def is_deformed(self) -> bool:
        """A deformed CAG misses activities (e.g. the END) or has
        disconnected vertices -- the symptom the paper attributes to lost
        activities under network congestion."""
        if not self.finished:
            return True
        for vertex in self._vertices[1:]:
            if not self._parents[id(vertex)]:
                return True
        return False

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Check all structural invariants; raise :class:`CAGError` if any
        is violated.  Used heavily by the property-based tests."""
        for vertex in self._vertices:
            parent_edges = self._parents[id(vertex)]
            if len(parent_edges) > 2:
                raise CAGError("vertex with more than two parents")
            if len(parent_edges) == 2:
                if vertex.type is not ActivityType.RECEIVE:
                    raise CAGError("non-RECEIVE vertex with two parents")
                kinds = {edge.kind for edge in parent_edges}
                if kinds != {CONTEXT_EDGE, MESSAGE_EDGE}:
                    raise CAGError("two parents must be one context + one message")
            for edge in parent_edges:
                if edge.kind == MESSAGE_EDGE:
                    if not edge.parent.type.is_send_like:
                        raise CAGError("message edge parent must be send-like")
                    if not vertex.type.is_receive_like:
                        raise CAGError("message edge child must be receive-like")
                if edge.kind == CONTEXT_EDGE:
                    if edge.parent.context_key != vertex.context_key:
                        raise CAGError("context edge across different contexts")
        # acyclicity (raises on cycle)
        self.topological_order()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "finished" if self.finished else "open"
        return f"CAG(id={self.cag_id}, vertices={len(self)}, {state})"


class SampledOutCAG:
    """Memory-light tombstone for the CAG of a sampled-out request.

    When the :class:`~repro.sampling.RequestSampler` rejects a request at
    its causal root, the engine still has to keep its index maps exactly
    as the unsampled run would -- pending SENDs must enter the ``mmap``
    (the ranker's noise and Rule-1 decisions consult it), context entries
    must advance -- or the candidate stream itself would change and the
    batch/streaming/sharded equivalence would be lost.  The tombstone
    provides the slice of the CAG interface the engine touches while
    storing only the member-vertex list (needed to release ``mmap`` /
    owner / context-map state on completion or eviction): no edges, no
    adjacency maps, and it is discarded -- never reported, never retained
    -- the moment its END arrives or the eviction horizon passes it.
    """

    sampled_out = True

    __slots__ = ("cag_id", "root", "_vertices", "finished", "newest_timestamp")

    def __init__(self, root: Activity) -> None:
        self.cag_id: int = next(_cag_counter)
        self.root = root
        self._vertices: List[Activity] = [root]
        self.finished = False
        self.newest_timestamp: float = root.timestamp

    def append(self, activity: Activity, parent: Activity, kind: str) -> None:
        """Record a member vertex (no edge is materialised)."""
        self._vertices.append(activity)
        if activity.timestamp > self.newest_timestamp:
            self.newest_timestamp = activity.timestamp
        return None

    def add_edge(self, parent: Activity, child: Activity, kind: str) -> None:
        """Edges of sampled-out requests are dropped."""
        return None

    def parents_of(self, activity: Activity) -> List[Edge]:
        return []

    def touch(self, timestamp: float) -> None:
        if timestamp > self.newest_timestamp:
            self.newest_timestamp = timestamp

    def finish(self) -> None:
        self.finished = True

    @property
    def vertices(self) -> Sequence[Activity]:
        return tuple(self._vertices)

    def __len__(self) -> int:
        return len(self._vertices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SampledOutCAG(id={self.cag_id}, vertices={len(self)})"


def iter_edges_in_causal_order(cag: CAG) -> Iterator[Edge]:
    """Yield the primary-path edges ordered by their child's position."""
    for edge in cag.primary_path():
        yield edge
