"""Index-map data structures used by the correlation engine.

Section 4 describes two index maps that hold the state of all unfinished
CAGs:

* ``mmap`` -- keyed by the *message identifier* of an activity; its value
  is an unmatched SEND activity with the same message identifier.  It is
  consulted both by the engine (to attach RECEIVEs) and by the ranker
  (Rule 1 and the ``is_noise`` test).
* ``cmap`` -- keyed by the *context identifier*; its value is the latest
  activity observed in that execution entity.  It is used to establish
  adjacent-context relations.

Both support the basic searching / inserting / deleting operations the
paper lists.  ``MessageMap`` generalises the paper's single-value map to a
FIFO of pending SENDs per connection so that pipelined messages on one
persistent connection cannot clobber each other.

For online (streaming) correlation both maps additionally support
watermark-based eviction (:meth:`MessageMap.evict_older_than`,
:meth:`ContextMap.evict_older_than`): entries whose activity timestamp
fell behind the stream's watermark by more than the configured horizon
are dropped, which keeps the maps bounded even when traffic contains
flows that never complete (noise, crashed requests, abandoned
connections).  See :class:`repro.stream.IncrementalEngine` for the knob
and its accuracy trade-off.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from .activity import Activity

#: Interned message key: the dense int INTERNER assigned to a directional
#: connection 4-tuple (see :mod:`repro.core.interning`).  Both maps are
#: keyed by the interned ints -- the engine and ranker probe them once
#: per candidate, so the key hash is pure hot-path cost.
MessageKey = int
#: Interned context key (dense int for a context 4-tuple).
ContextKey = int


class MessageMap:
    """``mmap``: pending (not yet fully received) SEND activities.

    Keys are interned directional connection keys (``Activity.
    message_key`` ints); values are FIFO queues of
    SEND activities whose bytes have not all been matched by RECEIVEs yet.
    The engine mutates ``Activity.size`` in place while matching, and pops
    the entry once the byte count reaches zero.
    """

    def __init__(self) -> None:
        self._pending: Dict[MessageKey, Deque[Activity]] = {}

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._pending.values())

    def __contains__(self, key: MessageKey) -> bool:
        return key in self._pending and bool(self._pending[key])

    def insert(self, send: Activity) -> None:
        """Register a SEND whose bytes are awaiting matching RECEIVEs."""
        key = send.message_key
        queue = self._pending.get(key)
        if queue is None:
            queue = self._pending[key] = deque()
        queue.append(send)

    def match(self, key: MessageKey) -> Optional[Activity]:
        """Return (without removing) the oldest pending SEND for ``key``."""
        queue = self._pending.get(key)
        if not queue:
            return None
        return queue[0]

    def has_match(self, key: MessageKey) -> bool:
        """Rule 1 / ``is_noise`` test: is there a pending SEND for ``key``?

        One dict probe -- this is the single most frequently called check
        of the whole correlation hot path (every RECEIVE head consults it
        on every selection round), so it must not build anything.
        """
        queue = self._pending.get(key)
        return queue is not None and bool(queue)

    def is_pending(self, send: Activity) -> bool:
        """Is this exact SEND still awaiting bytes from its receiver?"""
        queue = self._pending.get(send.message_key)
        if not queue:
            return False
        return any(entry is send for entry in queue)

    def remove(self, send: Activity) -> None:
        """Remove a fully-received SEND from the map."""
        key = send.message_key
        queue = self._pending.get(key)
        if not queue:
            return
        try:
            queue.remove(send)
        except ValueError:
            return
        if not queue:
            del self._pending[key]

    def pending_sends(self) -> Iterator[Activity]:
        """Iterate over every pending SEND (used for memory accounting)."""
        for queue in self._pending.values():
            yield from queue

    def evict_older_than(self, before: float) -> List[Activity]:
        """Drop pending SENDs whose timestamp is below ``before``.

        Returns the evicted activities so the engine can clean up its own
        per-SEND bookkeeping (partial receives, owner map).  Used by the
        streaming path to bound memory: a SEND still pending long after
        the watermark passed it will never be matched (its RECEIVE would
        have arrived by now), so keeping it only wastes space and risks
        capturing unrelated traffic on a recycled connection.
        """
        evicted: List[Activity] = []
        for key in list(self._pending):
            queue = self._pending[key]
            if not any(send.timestamp < before for send in queue):
                continue  # common case: nothing stale, no rebuild
            kept = deque(send for send in queue if send.timestamp >= before)
            evicted.extend(send for send in queue if send.timestamp < before)
            if kept:
                self._pending[key] = kept
            else:
                del self._pending[key]
        return evicted

    def clear(self) -> None:
        self._pending.clear()


class ContextMap:
    """``cmap``: latest activity per execution entity.

    Eviction is driven by a per-context *recency* timestamp, not by the
    timestamp of the stored activity: when the engine merges a late
    kernel part into an existing vertex (a request body or response that
    arrived in several reads/writes) the stored activity keeps its first
    part's timestamp, but the context is demonstrably alive -- ``touch``
    refreshes its recency so streaming eviction cannot drop it mid-merge.
    """

    def __init__(self) -> None:
        self._latest: Dict[ContextKey, Activity] = {}
        self._recency: Dict[ContextKey, float] = {}

    def __len__(self) -> int:
        return len(self._latest)

    def __contains__(self, key: ContextKey) -> bool:
        return key in self._latest

    def latest(self, key: ContextKey) -> Optional[Activity]:
        """The most recent activity observed in context ``key``."""
        return self._latest.get(key)

    def update(self, activity: Activity) -> None:
        """Record ``activity`` as the latest one of its context."""
        key = activity.context_key
        self._latest[key] = activity
        self._recency[key] = activity.timestamp

    def touch(self, key: ContextKey, timestamp: float) -> None:
        """Refresh a context's eviction recency without replacing its
        latest activity (used when kernel parts are merged in place)."""
        if key in self._latest and timestamp > self._recency[key]:
            self._recency[key] = timestamp

    def recency(self, key: ContextKey) -> Optional[float]:
        """The eviction recency of ``key`` (None when absent)."""
        return self._recency.get(key)

    def remove(self, key: ContextKey) -> None:
        self._latest.pop(key, None)
        self._recency.pop(key, None)

    def evict_older_than(self, before: float) -> int:
        """Drop entries whose recency is older than ``before``.

        An execution entity silent for longer than the eviction horizon
        either finished its request long ago or died; its ``cmap`` entry
        can only fabricate a wrong adjacent-context relation for a future
        request on a recycled pid/tid.  Returns the eviction count.
        """
        recency = self._recency
        stale = [key for key, ts in recency.items() if ts < before]
        for key in stale:
            del self._latest[key]
            del recency[key]
        return len(stale)

    def items(self) -> Iterator[Tuple[ContextKey, Activity]]:
        return iter(self._latest.items())

    def clear(self) -> None:
        self._latest.clear()
        self._recency.clear()
