"""Latency extraction from CAGs (Section 3.2).

Given a CAG, the time between consecutive activities along the causal
path is attributed either to a *component* (context edge: both activities
happened in the same program on the same node, e.g. ``httpd2httpd``) or to
an *interaction* between two components (message edge, e.g.
``httpd2java``).  Summing per label and normalising by the end-to-end
latency yields the "latency percentages of components" the paper uses for
performance debugging (Fig. 15 and Fig. 17).

Component latencies are exact (one local clock); interaction latencies
embed the clock skew between the two nodes, which the paper explicitly
accepts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from .cag import CAG, Edge


def component_label(program: str) -> str:
    """Short label of a component used in segment names.

    The paper labels segments with the program names of the components
    (``httpd``, ``java`` for the JBoss JVM, ``mysqld``); we simply reuse
    the program name reported in the context identifier.
    """
    return program


def segment_label(edge: Edge) -> str:
    """The segment name of one causal-path edge.

    * context edge inside program P  ->  ``P2P``      (component latency)
    * message edge from P to Q       ->  ``P2Q``      (interaction latency)
    """
    parent_program = component_label(edge.parent.context.program)
    child_program = component_label(edge.child.context.program)
    return f"{parent_program}2{child_program}"


@dataclass
class LatencyBreakdown:
    """Per-segment latency of one causal path (or an average of many)."""

    segments: Dict[str, float] = field(default_factory=dict)

    def add(self, label: str, latency: float) -> None:
        self.segments[label] = self.segments.get(label, 0.0) + latency

    @property
    def total(self) -> float:
        return sum(self.segments.values())

    def percentage(self, label: str) -> float:
        """Latency percentage of one segment (0-100)."""
        total = self.total
        if total <= 0:
            return 0.0
        return 100.0 * self.segments.get(label, 0.0) / total

    def percentages(self) -> Dict[str, float]:
        """All segment percentages, keyed by label."""
        total = self.total
        if total <= 0:
            return {label: 0.0 for label in self.segments}
        return {
            label: 100.0 * value / total for label, value in self.segments.items()
        }

    def labels(self) -> List[str]:
        return sorted(self.segments)

    def merge(self, other: "LatencyBreakdown", weight: float = 1.0) -> None:
        for label, value in other.segments.items():
            self.add(label, value * weight)

    def scaled(self, factor: float) -> "LatencyBreakdown":
        return LatencyBreakdown(
            {label: value * factor for label, value in self.segments.items()}
        )

    def as_dict(self) -> Dict[str, float]:
        return dict(self.segments)

    def __len__(self) -> int:
        return len(self.segments)


def breakdown_for_cag(cag: CAG) -> LatencyBreakdown:
    """Compute the per-segment latency of a single request's CAG.

    The accounting walks the *primary path* (each vertex reached through
    its message parent when one exists, its context parent otherwise), so
    the round-trip time observed by an upstream component is decomposed
    into downstream component and interaction times instead of being
    double counted.
    """
    breakdown = LatencyBreakdown()
    for edge in cag.primary_path():
        latency = edge.latency()
        if latency < 0:
            # A negative value can only come from clock skew on a message
            # edge; clamp at zero so a skewed pair cannot produce negative
            # percentages (the paper accepts this imprecision).
            latency = 0.0
        breakdown.add(segment_label(edge), latency)
    return breakdown


def average_breakdown(cags: Sequence[CAG]) -> LatencyBreakdown:
    """Average per-segment latencies over a set of (isomorphic) CAGs.

    This is the paper's "average causal path" (Section 3.2): aggregate n
    isomorphic CAGs, average each segment, then read off percentages.
    """
    aggregate = LatencyBreakdown()
    if not cags:
        return aggregate
    for cag in cags:
        aggregate.merge(breakdown_for_cag(cag))
    return aggregate.scaled(1.0 / len(cags))


def average_duration(cags: Sequence[CAG]) -> float:
    """Mean end-to-end latency (frontend-observed) of a set of CAGs."""
    durations = [cag.duration() for cag in cags if cag.duration() is not None]
    if not durations:
        return 0.0
    return sum(durations) / len(durations)


def percentage_table(
    breakdowns: Mapping[str, LatencyBreakdown],
    labels: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Build a {series -> {segment -> percentage}} table.

    This is the shape of Fig. 15 (series = client count) and Fig. 17
    (series = fault scenario).  When ``labels`` is omitted the union of
    all segment labels is used, in sorted order.
    """
    if labels is None:
        all_labels = set()
        for breakdown in breakdowns.values():
            all_labels.update(breakdown.segments)
        labels = sorted(all_labels)
    table: Dict[str, Dict[str, float]] = {}
    for series, breakdown in breakdowns.items():
        percentages = breakdown.percentages()
        table[series] = {label: percentages.get(label, 0.0) for label in labels}
    return table
