"""Path-accuracy evaluation against ground truth (Section 5.2).

The paper validates PreciseTracer by modifying RUBiS to tag every request
with a globally-unique id and to log, per tier, the servicing process /
thread and the start and end times.  A reconstructed causal path is
*correct* when all its attributes are consistent with that oracle, and

    path accuracy = correct paths / all logged requests.

Our simulated service plays the same trick: the simulator knows which
request caused every activity (``Activity.request_id``) and records a
:class:`GroundTruthRequest` per request.  The tracer never reads either;
they are only consulted here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .cag import CAG

ContextTuple = Tuple[str, str, int, int]


@dataclass
class GroundTruthRequest:
    """Oracle record for one request, as the instrumented service logs it."""

    request_id: int
    start_time: float
    end_time: float
    #: execution entities (hostname, program, pid, tid) that serviced the
    #: request, one or more per tier.
    contexts: Set[ContextTuple] = field(default_factory=set)
    #: request type name (ViewItem, ...); not used for correctness, only
    #: for reporting.
    request_type: str = ""

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


@dataclass
class PathJudgement:
    """Why one CAG was judged correct or incorrect."""

    cag: CAG
    request_id: Optional[int]
    correct: bool
    reason: str = ""


@dataclass
class AccuracyReport:
    """Outcome of scoring a trace against the oracle."""

    total_requests: int
    correct_paths: int
    false_positives: int
    false_negatives: int
    judgements: List[PathJudgement] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        """correct paths / all logged requests (the paper's metric)."""
        if self.total_requests == 0:
            return 1.0
        return self.correct_paths / self.total_requests

    def summary(self) -> Dict[str, float]:
        return {
            "total_requests": float(self.total_requests),
            "correct_paths": float(self.correct_paths),
            "false_positives": float(self.false_positives),
            "false_negatives": float(self.false_negatives),
            "accuracy": self.accuracy,
        }


def judge_cag(
    cag: CAG,
    ground_truth: Mapping[int, GroundTruthRequest],
    time_tolerance: float,
) -> PathJudgement:
    """Judge a single CAG against the oracle.

    A CAG is correct when:

    * all its activities carry exactly one ground-truth request id,
    * that id exists in the oracle,
    * the execution entities along the path are exactly the entities the
      oracle recorded for that request,
    * its BEGIN/END timestamps match the oracle's start/end times within
      ``time_tolerance`` (both are observed on the frontend node, so no
      clock-skew correction is needed).
    """
    ids = cag.request_ids()
    if len(ids) != 1:
        reason = "mixed request ids" if len(ids) > 1 else "no request id"
        return PathJudgement(cag=cag, request_id=None, correct=False, reason=reason)
    request_id = next(iter(ids))
    truth = ground_truth.get(request_id)
    if truth is None:
        return PathJudgement(
            cag=cag, request_id=request_id, correct=False, reason="unknown request id"
        )

    path_contexts = set(cag.contexts())
    if path_contexts != truth.contexts:
        missing = truth.contexts - path_contexts
        extra = path_contexts - truth.contexts
        return PathJudgement(
            cag=cag,
            request_id=request_id,
            correct=False,
            reason=f"context mismatch (missing={len(missing)}, extra={len(extra)})",
        )

    if abs(cag.begin_timestamp - truth.start_time) > time_tolerance:
        return PathJudgement(
            cag=cag, request_id=request_id, correct=False, reason="start time mismatch"
        )
    end_ts = cag.end_timestamp
    if end_ts is None or abs(end_ts - truth.end_time) > time_tolerance:
        return PathJudgement(
            cag=cag, request_id=request_id, correct=False, reason="end time mismatch"
        )

    return PathJudgement(cag=cag, request_id=request_id, correct=True, reason="ok")


def path_accuracy(
    cags: Sequence[CAG],
    ground_truth: Mapping[int, GroundTruthRequest],
    time_tolerance: float = 1e-6,
) -> AccuracyReport:
    """Score a set of reconstructed CAGs against the oracle.

    * a *correct path* matches its ground-truth request exactly,
    * a *false positive* is a CAG that matches no request or mixes several,
    * a *false negative* is a logged request for which no correct CAG exists.
    """
    judgements = [judge_cag(cag, ground_truth, time_tolerance) for cag in cags]
    matched_ids: Set[int] = set()
    correct = 0
    false_positives = 0
    for judgement in judgements:
        if judgement.correct and judgement.request_id is not None:
            if judgement.request_id in matched_ids:
                # Two CAGs claiming the same request: only one can be real.
                false_positives += 1
                judgement.correct = False
                judgement.reason = "duplicate path for request"
                continue
            matched_ids.add(judgement.request_id)
            correct += 1
        else:
            false_positives += 1
    false_negatives = len(set(ground_truth) - matched_ids)
    return AccuracyReport(
        total_requests=len(ground_truth),
        correct_paths=correct,
        false_positives=false_positives,
        false_negatives=false_negatives,
        judgements=judgements,
    )
