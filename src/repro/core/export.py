"""Exporting CAGs and trace results for inspection and visualisation.

The paper presents causal paths as small graphs (Fig. 1) and latency
views (Fig. 15/17).  This module provides the equivalent artefacts for a
terminal/offline workflow:

* :func:`cag_to_dot` -- Graphviz DOT text for one CAG (context edges
  solid, message edges dashed, as in the paper's figures);
* :func:`cag_to_dict` / :func:`cag_to_json` -- a JSON-friendly structure
  for programmatic consumption;
* :func:`trace_summary` -- a compact dictionary describing a whole
  :class:`~repro.core.tracer.TraceResult` (patterns, percentages,
  correlator statistics), convenient for dashboards or regression files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .cag import CAG, CONTEXT_EDGE
from .latency import breakdown_for_cag, segment_label
from .tracer import TraceResult


def _vertex_id(cag: CAG, index: int) -> str:
    return f"a{index}"


def cag_to_dot(cag: CAG, title: Optional[str] = None) -> str:
    """Render one CAG as Graphviz DOT.

    Context edges are drawn solid (red in the paper's Fig. 1), message
    edges dashed (blue).  Vertex labels carry the activity type, the
    component and the local timestamp.
    """
    order = {id(vertex): index for index, vertex in enumerate(cag.vertices)}
    lines = ["digraph cag {", "  rankdir=LR;", "  node [shape=box, fontsize=10];"]
    if title:
        lines.append(f'  label="{title}";')
    for index, vertex in enumerate(cag.vertices):
        label = (
            f"{vertex.type.name}\\n{vertex.context.hostname}/{vertex.context.program}"
            f"\\nt={vertex.timestamp:.6f}"
        )
        lines.append(f'  {_vertex_id(cag, index)} [label="{label}"];')
    for edge in cag.edges:
        style = "solid" if edge.kind == CONTEXT_EDGE else "dashed"
        color = "red" if edge.kind == CONTEXT_EDGE else "blue"
        lines.append(
            f"  {_vertex_id(cag, order[id(edge.parent)])} -> "
            f"{_vertex_id(cag, order[id(edge.child)])} "
            f'[style={style}, color={color}, label="{edge.latency() * 1000:.2f}ms"];'
        )
    lines.append("}")
    return "\n".join(lines)


def cag_to_dict(cag: CAG) -> Dict[str, Any]:
    """A JSON-friendly representation of one CAG."""
    order = {id(vertex): index for index, vertex in enumerate(cag.vertices)}
    vertices: List[Dict[str, Any]] = []
    for vertex in cag.vertices:
        vertices.append(
            {
                "type": vertex.type.name,
                "timestamp": vertex.timestamp,
                "hostname": vertex.context.hostname,
                "program": vertex.context.program,
                "pid": vertex.context.pid,
                "tid": vertex.context.tid,
                "connection": list(vertex.message.connection_key()),
                "bytes": vertex.message.size,
            }
        )
    edges = [
        {
            "parent": order[id(edge.parent)],
            "child": order[id(edge.child)],
            "kind": edge.kind,
            "latency": edge.latency(),
            "segment": segment_label(edge),
        }
        for edge in cag.edges
    ]
    breakdown = breakdown_for_cag(cag)
    return {
        "cag_id": cag.cag_id,
        "finished": cag.finished,
        "duration": cag.duration(),
        "vertices": vertices,
        "edges": edges,
        "segments": breakdown.as_dict(),
        "segment_percentages": breakdown.percentages(),
    }


def cag_to_json(cag: CAG, indent: int = 2) -> str:
    """JSON text for one CAG."""
    return json.dumps(cag_to_dict(cag), indent=indent, sort_keys=True)


def trace_summary(result: TraceResult, top_patterns: int = 5) -> Dict[str, Any]:
    """A compact, serialisable summary of a whole trace."""
    patterns = []
    for pattern in result.patterns()[:top_patterns]:
        breakdown = pattern.average_path()
        patterns.append(
            {
                "paths": pattern.count,
                "activities_per_path": pattern.length,
                "components": ["/".join(component) for component in pattern.components()],
                "average_latency": pattern.average_latency(),
                "segment_percentages": breakdown.percentages(),
            }
        )
    return {
        "requests": result.request_count,
        "incomplete_paths": len(result.incomplete_cags),
        "correlation_time_s": result.correlation_time,
        "peak_memory_bytes": result.peak_memory_bytes,
        "window_s": result.correlation.window,
        "noise_discarded": result.correlation.ranker_stats.noise_discarded,
        "filtered_records": result.filtered_records,
        "patterns": patterns,
    }


def trace_summary_json(result: TraceResult, indent: int = 2) -> str:
    """JSON text of :func:`trace_summary`."""
    return json.dumps(trace_summary(result), indent=indent, sort_keys=True)
