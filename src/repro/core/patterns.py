"""Causal-path pattern classification (Section 3.2).

CAGs are classified into *causal path patterns*: groups of isomorphic
CAGs whose corresponding vertices are activities of the same type observed
in the same component (hostname + program; process and thread ids are
deliberately ignored because every request may be served by a different
worker).  For each pattern the isomorphic CAGs are aggregated into an
*average causal path*, from which per-component latency percentages are
read.

In a RUBiS-like service different request types (ViewItem, SearchItems,
...) issue different numbers of database round trips and therefore map to
different patterns; the most frequent pattern is the natural target of
performance debugging, mirroring the paper's use of ViewItem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .cag import CAG
from .latency import LatencyBreakdown, average_breakdown, average_duration

#: Vertex fingerprint: (activity type name, hostname, program).
VertexSig = Tuple[str, str, str]
#: Edge fingerprint: (kind, parent position, child position) in topological order.
EdgeSig = Tuple[str, int, int]
#: Full pattern signature.
Signature = Tuple[Tuple[VertexSig, ...], Tuple[EdgeSig, ...]]


def _signature_tie_key(vertex) -> Tuple[str, str, str, float]:
    """Tie-break for concurrently-ready vertices in the signature order.

    The vertex *fingerprint* (type, hostname, program) decides first, so
    two CAGs whose concurrent fan-out branches completed in different
    real-time interleavings -- or were discovered in different orders by
    different correlation backends -- canonicalise to the same vertex
    order whenever the branches are distinguishable by fingerprint, and
    isomorphic requests land in one pattern regardless of scheduling.
    Concurrent vertices sharing a fingerprint fall back to the local
    timestamp (and ultimately to construction order): that keeps the
    order deterministic and backend-independent -- timestamps are data,
    not scheduling -- but it does mean same-fingerprint branches order
    by arrival, so such CAGs canonicalise per interleaving, not per
    abstract graph shape.
    """
    return (
        vertex.type.name,
        vertex.context.hostname,
        vertex.context.program,
        vertex.timestamp,
    )


def cag_signature(cag: CAG) -> Signature:
    """Canonical isomorphism signature of a CAG.

    Vertices are fingerprinted by (type, hostname, program) and ordered
    topologically, with concurrently-ready vertices ordered by
    fingerprint then timestamp (see :func:`_signature_tie_key`) -- both
    are properties of the logged data, never of how the correlator
    scheduled its work, so the signature is identical across the batch,
    streaming and sharded backends; edges are recorded by the positions
    of their endpoints in that order.  Two CAGs with the same signature
    are isomorphic in the paper's sense.
    """
    order = cag.topological_order(tie_key=_signature_tie_key)
    position = {id(vertex): index for index, vertex in enumerate(order)}
    vertex_sigs: Tuple[VertexSig, ...] = tuple(
        (vertex.type.name, vertex.context.hostname, vertex.context.program)
        for vertex in order
    )
    edge_sigs = tuple(
        sorted(
            (edge.kind, position[id(edge.parent)], position[id(edge.child)])
            for edge in cag.edges
        )
    )
    return (vertex_sigs, edge_sigs)


@dataclass
class PathPattern:
    """One causal-path pattern: a set of isomorphic CAGs."""

    signature: Signature
    cags: List[CAG] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.cags)

    @property
    def length(self) -> int:
        """Number of activities per causal path of this pattern."""
        return len(self.signature[0])

    def components(self) -> List[Tuple[str, str]]:
        """Distinct (hostname, program) components along the pattern."""
        seen: List[Tuple[str, str]] = []
        for _type_name, hostname, program in self.signature[0]:
            key = (hostname, program)
            if key not in seen:
                seen.append(key)
        return seen

    def average_path(self) -> LatencyBreakdown:
        """The pattern's average causal path, as a latency breakdown."""
        return average_breakdown(self.cags)

    def average_latency(self) -> float:
        """Mean end-to-end latency of the pattern's requests."""
        return average_duration(self.cags)

    def describe(self) -> str:
        """Human-readable one-line description of the pattern."""
        programs = [program for _, _, program in self.signature[0]]
        hops = "->".join(programs)
        return f"pattern[{self.count} paths, {self.length} activities]: {hops}"


class PatternClassifier:
    """Group CAGs into patterns and expose them sorted by frequency."""

    def __init__(self) -> None:
        self._patterns: Dict[Signature, PathPattern] = {}

    def add(self, cag: CAG) -> PathPattern:
        signature = cag_signature(cag)
        pattern = self._patterns.get(signature)
        if pattern is None:
            pattern = PathPattern(signature=signature)
            self._patterns[signature] = pattern
        pattern.cags.append(cag)
        return pattern

    def add_all(self, cags: Sequence[CAG]) -> None:
        for cag in cags:
            self.add(cag)

    @property
    def patterns(self) -> List[PathPattern]:
        """All patterns, most frequent first.

        The final tie-break is the signature itself (a nested tuple of
        strings and ints, totally ordered): without it, equally frequent
        equal-length patterns fell back to dict insertion order, which
        is the order the backend *emitted* CAGs in -- so the batch and
        sharded drivers could rank tied patterns differently and the
        ranked-report digests diverged (found by ``repro fuzz``,
        seed 17).
        """
        return sorted(
            self._patterns.values(), key=lambda p: (-p.count, p.length, p.signature)
        )

    def most_frequent(self) -> Optional[PathPattern]:
        patterns = self.patterns
        return patterns[0] if patterns else None

    def __len__(self) -> int:
        return len(self._patterns)


def classify(cags: Sequence[CAG]) -> List[PathPattern]:
    """Classify ``cags`` into patterns, most frequent first."""
    classifier = PatternClassifier()
    classifier.add_all(cags)
    return classifier.patterns


def dominant_pattern(cags: Sequence[CAG]) -> Optional[PathPattern]:
    """The most frequent pattern of a CAG collection (ViewItem analogue)."""
    classifier = PatternClassifier()
    classifier.add_all(cags)
    return classifier.most_frequent()
