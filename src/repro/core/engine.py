"""The correlation engine: CAG construction (Section 4.2, Fig. 3).

The engine repeatedly fetches a candidate activity from the ranker and
attaches it to an unfinished CAG, using the two index maps:

* ``cmap`` (context identifier -> latest activity in that execution
  entity) establishes adjacent-context relations,
* ``mmap`` (message identifier -> pending SEND) establishes message
  relations and supports the n-to-n SEND/RECEIVE merging of Fig. 4 by
  tracking the outstanding byte count of each logical message.

The engine also implements the thread-reuse guard of the paper (Fig. 3
lines 29-32): the context edge into a RECEIVE is only added when both
candidate parents already belong to the *same* CAG, which prevents an
activity from being spliced into a previous request's path when worker
threads are recycled from a pool.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from .activity import Activity, ActivityType
from .cag import CAG, CONTEXT_EDGE, MESSAGE_EDGE, SampledOutCAG, ensure_cag_ids_above
from .index_maps import ContextMap, MessageMap


@dataclass
class EngineStats:
    """Counters describing what the engine did with the candidate stream."""

    begins: int = 0
    ends: int = 0
    sends: int = 0
    receives: int = 0
    merged_sends: int = 0
    partial_receives: int = 0
    #: multi-part RECEIVEs whose byte count balanced only after a later
    #: same-context activity was chained (concurrent fan-out gathers);
    #: they are spliced into the context chain at their timestamp
    #: position, keeping the chain delivery-order independent.
    spliced_receives: int = 0
    unmatched_receives: int = 0
    unmatched_sends: int = 0
    unmatched_ends: int = 0
    thread_reuse_blocked: int = 0
    oversized_receives: int = 0
    #: receive parts that straddled a pipelined-message boundary on a
    #: reused connection and were split: the head SEND's byte count was
    #: final, so the part's leading bytes completed it and the remainder
    #: carried over to the next pending SEND.
    split_receives: int = 0
    finished_cags: int = 0
    # Request-sampling counters (a sampler was configured).  Sampled-out
    # requests are tracked as tombstones while in flight and discarded on
    # completion; see :class:`repro.core.cag.SampledOutCAG`.
    sampled_out_roots: int = 0
    sampled_out_finished: int = 0
    #: context-map entries purged because their latest activity belonged
    #: to a closing sampled-out tombstone (see ``_release_vertices``);
    #: every finished tombstone purges at least its END's entry, a
    #: conservation law the fuzz harness checks.
    purged_cmap_entries: int = 0
    # Watermark-based eviction counters (streaming mode only; the batch
    # path never evicts).  See :meth:`CorrelationEngine.evict_stale`.
    evicted_mmap_entries: int = 0
    evicted_cmap_entries: int = 0
    #: backlogged receive parts dropped by watermark eviction (their
    #: matching SEND bytes never arrived within the horizon).
    evicted_backlog_parts: int = 0
    evicted_open_cags: int = 0
    evicted_sampled_out_cags: int = 0


class CorrelationEngine:
    """Build CAGs from the candidate stream produced by the ranker.

    ``sampler`` is an optional :class:`repro.sampling.RequestSampler`:
    it is consulted once per causal root (BEGIN) and decides whether the
    request is materialised as a full CAG or as a discarded-on-completion
    :class:`~repro.core.cag.SampledOutCAG` tombstone.  Sampling never
    changes what enters the index maps -- the ranker's candidate
    selection consults the ``mmap``, so the candidate stream (and with
    it cross-backend equivalence) is independent of the sampling
    decisions; only which requests get edges, analysis and memory is.
    """

    def __init__(self, sampler=None) -> None:
        self.mmap = MessageMap()
        self.cmap = ContextMap()
        self.stats = EngineStats()
        self.sampler = sampler
        # Per-candidate adaptive feedback: only wired up when the
        # sampler actually adapts, so the hot path pays one None check
        # otherwise.
        self._sampler_tick = (
            sampler.tick if sampler is not None and sampler.is_adaptive else None
        )
        self._finished: List[CAG] = []
        self._open: Dict[int, CAG] = {}
        # Map from a vertex (by identity) to the CAG that owns it.  Only
        # vertices of *open* CAGs are tracked; entries are dropped when a
        # CAG finishes, which keeps the map size proportional to the number
        # of in-flight requests.
        self._owner: Dict[int, CAG] = {}
        # Per-connection FIFO of receive parts whose bytes have not been
        # consumed by a pending SEND yet.  Each entry is a mutable list
        # ``[activity, remaining, fed, fed_send]``: the delivered part,
        # how many of its bytes are still unconsumed, how many bytes it
        # has fed into the *current* head SEND, and that SEND (so stale
        # feed counts are detected when a head vanishes without
        # completing).  Byte matching consumes backlog parts against
        # pending SENDs strictly in FIFO order on both sides
        # (:meth:`_settle`), which makes the n-to-n matching insensitive
        # to how part deliveries interleave across nodes -- the property
        # the sharded driver's batch-equivalence rests on when an
        # oversized RECEIVE spans pipelined requests on a reused
        # connection.
        self._recv_backlog: Dict[int, Deque[list]] = {}
        self._backlog_size = 0
        # Sequence number of the last *delivered* activity per context
        # (``cmap`` only advances when a RECEIVE completes, which can
        # happen many candidates after its delivery).  Kernel-part
        # merges (BEGIN/SEND/END) are gated on this: a part may only
        # merge into its program-order predecessor -- if any other
        # activity of the context was delivered in between, the parts
        # are separate logical messages.  Without the gate the merge
        # decision hinges on whether an intervening RECEIVE *completed*
        # in time, which depends on how deliveries interleave across
        # nodes and diverges between backends.
        self._ctx_last_seq: Dict[int, int] = {}
        self._prev_ctx_seq: int = -1
        # CAGs dropped by watermark eviction (streaming mode); kept so the
        # final accounting can still report them as incomplete paths.
        self._evicted: List[CAG] = []
        # Candidate dispatch, indexed by the activity's Rule-2 priority
        # (== its type value): a list index beats an enum-keyed dict
        # lookup, and this runs once per candidate.
        self._dispatch = [
            self._handle_begin,  # BEGIN = 0
            self._handle_send,  # SEND = 1
            self._handle_end,  # END = 2
            self._handle_receive,  # RECEIVE = 3
            None,  # MAX is never instantiated
        ]
        # Direct references into the index maps' backing dicts.  Every
        # candidate performs at least one cmap lookup and update, so the
        # method indirection is measurable on the Fig. 9 benchmark; the
        # maps remain the owning API (eviction, touch, introspection) and
        # both sides only ever mutate these dicts in place, never rebind
        # them.
        self._cmap_latest = self.cmap._latest
        self._cmap_recency = self.cmap._recency
        self._mmap_pending = self.mmap._pending

    # -- pickling (streaming checkpoints) -----------------------------------

    def __getstate__(self):
        """Picklable engine state (the streaming checkpoint payload).

        Three kinds of attribute cannot cross a pickle boundary as-is
        and are reconstructed in :meth:`__setstate__`:

        * the direct index-map dict references and the bound-method
          dispatch table (rebuilt from the unpickled maps/handlers);
        * ``_owner``, keyed by ``id(activity)`` -- object ids do not
          survive unpickling.  It is *derived* state: exactly the
          vertices of the open CAGs, each owned by its CAG (entries are
          added when a vertex joins an open CAG and dropped by
          ``_release_vertices`` when the CAG closes), so it is rebuilt
          from ``_open`` rather than serialised;
        ``_recv_backlog`` needs no translation: its entries reference
        their activities (and the head SEND they fed) directly, and the
        pickle memo keeps those references identical to the objects
        inside the unpickled ``mmap`` deques.
        """
        state = self.__dict__.copy()
        for derived in (
            "_dispatch",
            "_cmap_latest",
            "_cmap_recency",
            "_mmap_pending",
            "_sampler_tick",
            "_owner",
        ):
            state.pop(derived, None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # The revived CAGs carry ids assigned by the checkpointing
        # process; keep the local id counter ahead of them so no new CAG
        # can collide with a live ``_open`` key.
        highest = -1
        for group in (self._open.values(), self._finished, self._evicted):
            for cag in group:
                if cag.cag_id > highest:
                    highest = cag.cag_id
        if highest >= 0:
            ensure_cag_ids_above(highest)
        self._owner = {
            id(vertex): cag
            for cag in self._open.values()
            for vertex in cag.vertices
        }
        sampler = self.sampler
        self._sampler_tick = (
            sampler.tick if sampler is not None and sampler.is_adaptive else None
        )
        self._dispatch = [
            self._handle_begin,
            self._handle_send,
            self._handle_end,
            self._handle_receive,
            None,
        ]
        self._cmap_latest = self.cmap._latest
        self._cmap_recency = self.cmap._recency
        self._mmap_pending = self.mmap._pending

    # -- public API --------------------------------------------------------

    @property
    def finished_cags(self) -> List[CAG]:
        """CAGs whose END activity has been correlated (outputs)."""
        return self._finished

    @property
    def open_cags(self) -> List[CAG]:
        """CAGs still waiting for more activities (in-flight or deformed).

        Sampled-out tombstones are engine state, not output: they count
        toward :meth:`pending_state_size` (and the adaptive sampler's
        open-CAG feedback) but are never reported as open or incomplete.
        """
        return [cag for cag in self._open.values() if not cag.sampled_out]

    @property
    def open_entry_count(self) -> int:
        """Number of in-flight entries, tombstones included (the memory
        figure the adaptive sampler steers against)."""
        return len(self._open)

    @property
    def open_tombstone_count(self) -> int:
        """Sampled-out tombstones still in flight (engine-sanity probe:
        after a drained batch run, roots == finished + this count)."""
        return sum(1 for cag in self._open.values() if cag.sampled_out)

    @property
    def evicted_cags(self) -> List[CAG]:
        """CAGs dropped by :meth:`evict_stale` before their END arrived."""
        return list(self._evicted)

    def pending_state_size(self) -> int:
        """Number of live bookkeeping entries (for memory accounting)."""
        return (
            len(self.mmap)
            + len(self.cmap)
            + len(self._owner)
            + len(self._open)
            + self._backlog_size
        )

    def process(self, current: Activity) -> Optional[CAG]:
        """Handle one candidate activity.

        Returns the CAG completed by this activity when ``current`` is the
        END of a request, ``None`` otherwise.  This is the body of the
        ``while`` loop of Fig. 3.
        """
        if self._sampler_tick is not None:
            self._sampler_tick(len(self._open))
        handler = self._dispatch[current.priority]
        if handler is None:  # pragma: no cover - MAX is never instantiated
            return None
        ctx_key = current.context_key
        self._prev_ctx_seq = self._ctx_last_seq.get(ctx_key, -1)
        self._ctx_last_seq[ctx_key] = current.seq
        return handler(current)

    # -- BEGIN / END ---------------------------------------------------------

    def _handle_begin(self, current: Activity) -> Optional[CAG]:
        self.stats.begins += 1
        previous = self._cmap_latest.get(current.context_key)
        if (
            previous is not None
            and previous.type is ActivityType.BEGIN
            and previous.message_key == current.message_key
            and previous.seq == self._prev_ctx_seq
        ):
            owner = self._owner.get(id(previous))
            if owner is not None and len(owner) == 1:
                # The request body arrived in several kernel reads before
                # the component did anything else: merge the parts into one
                # BEGIN instead of opening a second (bogus) CAG.  The merge
                # grows the vertex in place, so refresh the context's and
                # the CAG's eviction recency -- otherwise a multi-part body
                # straddling the horizon looks idle and streaming eviction
                # drops a *live* request.
                previous.size += current.size
                # The vertex absorbed the part: it stays the context's
                # last-delivered activity, so the next part can merge too.
                self._ctx_last_seq[current.context_key] = previous.seq
                self.cmap.touch(current.context_key, current.timestamp)
                owner.touch(current.timestamp)
                return None

        if self.sampler is not None and not self.sampler.admit(current):
            # Sampled out at the causal root: open a tombstone instead of
            # a CAG.  Index-map bookkeeping proceeds exactly as for a
            # traced request (the ranker's decisions depend on it), but
            # no edges are built and the tombstone is discarded -- and
            # its cmap/mmap state purged -- when its END arrives or the
            # eviction horizon passes it.
            cag = SampledOutCAG(current)
            self.stats.sampled_out_roots += 1
        else:
            cag = CAG(root=current)
        self._open[cag.cag_id] = cag
        self._owner[id(current)] = cag
        key = current.context_key
        self._cmap_latest[key] = current
        self._cmap_recency[key] = current.timestamp
        return None

    def _handle_end(self, current: Activity) -> Optional[CAG]:
        self.stats.ends += 1
        parent = self._cmap_latest.get(current.context_key)
        if parent is None:
            self.stats.unmatched_ends += 1
            return None
        if (
            parent.type is ActivityType.END
            and parent.message_key == current.message_key
            and parent.seq == self._prev_ctx_seq
        ):
            # Response flushed in several kernel writes; the request is
            # already finished, just account the extra bytes -- and keep
            # the context's eviction recency honest while the tail of the
            # response is still being written.
            parent.size += current.size
            self._ctx_last_seq[current.context_key] = parent.seq
            self.cmap.touch(current.context_key, current.timestamp)
            return None
        cag = self._owner.get(id(parent))
        if cag is None:
            self.stats.unmatched_ends += 1
            return None
        cag.append(current, parent, CONTEXT_EDGE)
        key = current.context_key
        self._cmap_latest[key] = current
        self._cmap_recency[key] = current.timestamp
        self._finish(cag, current)
        return None if cag.sampled_out else cag

    # -- SEND ----------------------------------------------------------------

    def _parent_is_pending(self, parent: Activity) -> bool:
        """Identity probe of the pending map (``MessageMap.is_pending``
        without the method indirection and generator allocation -- this
        sits on the per-SEND merge check of the hot loop)."""
        queue = self._mmap_pending.get(parent.message_key)
        if not queue:
            return False
        for entry in queue:
            if entry is parent:
                return True
        return False

    def _handle_send(self, current: Activity) -> Optional[CAG]:
        self.stats.sends += 1
        parent = self._cmap_latest.get(current.context_key)
        cag = self._owner.get(id(parent)) if parent is not None else None
        if parent is None or cag is None:
            # A SEND with no causal predecessor belongs to traffic we do
            # not trace (noise, or a flow whose BEGIN predates the trace).
            self.stats.unmatched_sends += 1
            return None

        if (
            parent.type is ActivityType.SEND
            and parent.message_key == current.message_key
            and parent.seq == self._prev_ctx_seq
            and self._parent_is_pending(parent)
        ):
            # Fig. 3 line 15-16: consecutive kernel writes of one logical
            # message collapse into a single SEND vertex whose byte count
            # grows; the mmap entry is the same object, so the outstanding
            # byte count grows with it.  "Consecutive" is judged against
            # the context's *delivery* history (``_prev_ctx_seq``), not
            # the cmap -- see ``_ctx_last_seq``.  If the previous SEND
            # has already been fully matched (its bytes balanced out
            # before this part was delivered, which interleaved delivery
            # can produce), this part starts a fresh SEND vertex instead
            # so the remaining receiver reads still find a pending entry
            # to match.
            parent.size += current.size
            self.stats.merged_sends += 1
            self._ctx_last_seq[current.context_key] = parent.seq
            # Same recency hazard as the BEGIN/END merges: the vertex grew
            # in place, so the context and its CAG are provably alive.
            self.cmap.touch(current.context_key, current.timestamp)
            cag.touch(current.timestamp)
            # The receiver's reads may already be waiting in the backlog
            # (delivered before this part was merged in); the grown byte
            # count can consume them now -- and complete the match when
            # the books balance.
            backlog = self._recv_backlog.get(current.message_key)
            if backlog:
                self._settle(self._mmap_pending[current.message_key], backlog)
            return None

        cag.append(current, parent, CONTEXT_EDGE)
        self._owner[id(current)] = cag
        key = current.context_key
        self._cmap_latest[key] = current
        self._cmap_recency[key] = current.timestamp
        message_key = current.message_key
        pending = self._mmap_pending.get(message_key)
        if pending is None:
            pending = self._mmap_pending[message_key] = deque()
        pending.append(current)
        # A new SEND vertex behind a balanced-but-parked head finalises
        # the head's byte count (its sender context has moved on), and
        # backlog parts retained from the previous pipelined message can
        # start feeding this one.
        backlog = self._recv_backlog.get(message_key)
        if backlog:
            self._settle(pending, backlog)
        return None

    # -- RECEIVE ---------------------------------------------------------------

    def _handle_receive(self, current: Activity) -> Optional[CAG]:
        self.stats.receives += 1
        key = current.message_key
        pending = self._mmap_pending.get(key)
        if not pending:
            self.stats.unmatched_receives += 1
            return None

        backlog = self._recv_backlog.get(key)
        if not backlog:
            # Fast path for the by-far-common unsegmented cases: nothing
            # backlogged on this connection, the head SEND is live and
            # still has bytes outstanding, and this part does not overrun
            # it.  Equivalent to allocating a backlog entry and running
            # ``_settle`` -- which would consume exactly this part against
            # exactly that head -- minus the allocations.
            send = pending[0]
            cag = self._owner.get(id(send))
            if cag is not None and send.size > 0:
                size = current.size
                if size < send.size:
                    # Partial read: bytes still outstanding, nothing kept.
                    send.size -= size
                    self.stats.partial_receives += 1
                    return None
                if size == send.size:
                    # Exact balance: the match completes immediately.
                    send.size = 0
                    self._complete_receive(send, current, cag)
                    return None
            if backlog is None:
                backlog = self._recv_backlog[key] = deque()
        backlog.append([current, current.size, 0, None])
        self._backlog_size += 1
        if self._settle(pending, backlog) == 0:
            # Only part of the logical message has been matched so far
            # (Fig. 4).
            self.stats.partial_receives += 1
            if backlog and backlog[0][1] > 0:
                # Receive bytes ran ahead of the sender's merged parts:
                # the leftover waits in the backlog instead of driving
                # the pending SEND's balance negative.
                self.stats.oversized_receives += 1
        return None

    def _settle(self, pending: Deque[Activity], backlog: Deque[list]) -> int:
        """Consume backlogged receive parts against pending SENDs.

        Both sides are strict per-connection FIFOs, so the byte matching
        depends only on the per-queue delivery orders (which every
        backend shares), never on how deliveries interleave across
        nodes.  A pending SEND's balance never goes negative: when a
        receive part's bytes run ahead of the sender's merged parts, the
        leftover parks at the head of the backlog until either a later
        kernel write merges in (growing the SEND) or a new SEND vertex
        proves the byte count final.  Returns the number of logical
        messages completed.
        """
        completed = 0
        while pending and backlog:
            send = pending[0]
            cag = self._owner.get(id(send))
            if cag is None:
                # The owning CAG finished or was evicted; drop the ghost
                # so it cannot capture this (unrelated) traffic.
                self.mmap.remove(send)
                self.stats.unmatched_receives += 1
                continue
            entry = backlog[0]
            if entry[3] is not send:
                # First bytes this part feeds into this SEND (or the head
                # it previously fed vanished without completing).
                entry[2] = 0
                entry[3] = send
            if send.size > 0:
                take = entry[1] if entry[1] < send.size else send.size
                send.size -= take
                entry[1] -= take
                entry[2] += take
            if send.size > 0:
                # Part exhausted, message still outstanding: a later part
                # (or a merged send write) continues the match.
                backlog.popleft()
                self._backlog_size -= 1
                continue
            # The byte balance is at zero -- but more kernel writes of
            # this logical message may still be on their way (Fig. 4's
            # n-to-n segmentation, delivered in any interleaving).
            if entry[1] == 0:
                # The receive part ended exactly on the message boundary:
                # the books balance, the match is complete.
                backlog.popleft()
                self._backlog_size -= 1
                self._complete_receive(send, entry[0], cag)
                completed += 1
                continue
            if self._cmap_latest.get(send.context_key) is send:
                # The sender's context is still parked on this SEND, so a
                # later kernel write can still merge in and grow the
                # message: the leftover receive bytes must wait.
                break
            # The sender has moved on -- this SEND's byte count is final.
            # The receive part straddles the message boundary: split it,
            # complete this message with the bytes it consumed, and leave
            # the remainder for the next pipelined message.
            part = entry[0]
            vertex = Activity(
                type=part.type,
                timestamp=part.timestamp,
                context=part.context,
                message=part.message,
                request_id=part.request_id,
                seq=part.seq,
                size=entry[2],
            )
            entry[2] = 0
            entry[3] = None
            self.stats.split_receives += 1
            self._complete_receive(send, vertex, cag)
            completed += 1
        return completed

    def _complete_receive(self, parent_msg: Activity, current: Activity, cag: CAG) -> None:
        """All bytes of a logical message are matched: add the RECEIVE vertex."""
        self.mmap.remove(parent_msg)
        cag.append(current, parent_msg, MESSAGE_EDGE)
        self._owner[id(current)] = cag

        key = current.context_key
        parent_cntx = self._cmap_latest.get(key)
        if parent_cntx is not None and parent_cntx is not current:
            if self._owner.get(id(parent_cntx)) is cag:
                if (current.timestamp, current.seq) < (
                    parent_cntx.timestamp,
                    parent_cntx.seq,
                ):
                    # Late completion: this logical message balanced its
                    # bytes only after a later same-context activity was
                    # already chained (possible when one context gathers
                    # from several connections concurrently, as the exact
                    # interleaving of part deliveries across nodes is
                    # window-population dependent).  Splice the vertex in
                    # at its timestamp position so the context chain is
                    # identical however deliveries interleaved -- the
                    # property the sharded driver's batch-equivalence
                    # rests on.  The newer activity stays the cmap entry.
                    self._splice_in_order(cag, current, parent_cntx)
                    self.stats.spliced_receives += 1
                    return
                cag.add_edge(parent_cntx, current, CONTEXT_EDGE)
            else:
                # Thread-reuse guard: the latest activity of this execution
                # entity belongs to a different request (recycled pool
                # thread); do not splice the paths together.
                self.stats.thread_reuse_blocked += 1
        self._cmap_latest[key] = current
        self._cmap_recency[key] = current.timestamp

    def _splice_in_order(self, cag: CAG, current: Activity, latest: Activity) -> None:
        """Insert ``current`` into the context chain before ``latest``.

        Walk the chain backwards from ``latest`` to the first activity
        not after ``current`` (by (timestamp, seq), the per-node sort
        order) and rewire the chain around ``current``.
        """
        after = latest
        while True:
            edge = None
            for candidate in cag.parents_of(after):
                if candidate.kind == CONTEXT_EDGE:
                    edge = candidate
                    break
            if edge is None:
                # ``current`` precedes every chained activity: it becomes
                # the new chain head in front of ``after``.
                cag.add_edge(current, after, CONTEXT_EDGE)
                return
            before = edge.parent
            if (before.timestamp, before.seq) <= (current.timestamp, current.seq):
                cag.splice_context_vertex(before, after, current)
                return
            after = before

    # -- watermark eviction (streaming mode) --------------------------------------

    def evict_stale(self, before: float) -> int:
        """Drop bookkeeping entries whose activity timestamps fell below
        ``before`` (the stream watermark minus the configured horizon).

        Three kinds of state are reclaimed:

        * pending ``mmap`` SENDs -- their RECEIVE would have arrived by
          now, so they can only capture unrelated traffic on a recycled
          connection;
        * ``cmap`` entries -- contexts idle for longer than the horizon
          (e.g. worker threads of finished requests);
        * open CAGs whose most recent activity is older than ``before`` --
          requests that will never finish (lost END, crashed component).

        The trade-off: a *live* request that stays idle for longer than
        the horizon (e.g. a query stuck behind a lock for minutes) loses
        its state and its remaining activities form a deformed path.
        Choose a horizon comfortably above the service's worst-case
        response time; ``None`` (in :class:`repro.stream.IncrementalEngine`)
        disables eviction entirely and restores the batch path's exact
        behaviour.  Returns the number of entries evicted and counts them
        in :class:`EngineStats`.
        """
        evicted = 0
        for send in self.mmap.evict_older_than(before):
            self.stats.evicted_mmap_entries += 1
            evicted += 1
        for backlog_key in list(self._recv_backlog):
            backlog = self._recv_backlog[backlog_key]
            while backlog and backlog[0][0].timestamp < before:
                backlog.popleft()
                self._backlog_size -= 1
                self.stats.evicted_backlog_parts += 1
                evicted += 1
            if not backlog:
                del self._recv_backlog[backlog_key]
        cmap_evicted = self.cmap.evict_older_than(before)
        self.stats.evicted_cmap_entries += cmap_evicted
        evicted += cmap_evicted
        for cag_id, cag in list(self._open.items()):
            # ``newest_timestamp`` is maintained incrementally (including
            # merged kernel parts via ``CAG.touch``), so the eviction tick
            # is O(open CAGs) instead of O(total buffered vertices).
            if cag.newest_timestamp < before:
                self._open.pop(cag_id, None)
                self._release_vertices(cag)
                if cag.sampled_out:
                    # Evicted, not leaked: a tombstone is dropped outright
                    # -- retaining it in ``_evicted`` would grow memory
                    # with exactly the traffic sampling exists to shed.
                    self.stats.evicted_sampled_out_cags += 1
                else:
                    self._evicted.append(cag)
                    self.stats.evicted_open_cags += 1
                evicted += 1
        return evicted

    # -- internals ----------------------------------------------------------------

    def _owner_of(self, activity: Optional[Activity]) -> Optional[CAG]:
        if activity is None:
            return None
        return self._owner.get(id(activity))

    def _finish(self, cag: CAG, end_activity: Activity) -> None:
        cag.finish()
        self._open.pop(cag.cag_id, None)
        self._release_vertices(cag)
        if cag.sampled_out:
            # A sampled-out request completed: discard the tombstone --
            # it is neither reported nor retained -- and count it.
            self.stats.sampled_out_finished += 1
            return
        self.stats.finished_cags += 1
        self._finished.append(cag)

    def _release_vertices(self, cag: CAG) -> None:
        """Release a closing CAG's per-vertex engine state.

        For every member vertex the ownership entry goes, and any
        still-pending SEND leaves the mmap (with its parked partial
        RECEIVE) so stale entries cannot capture later traffic on a
        reused connection -- and so memory stays bounded.  For
        sampled-out tombstones the context map is purged too: an entry
        whose latest activity belongs to a dropped request can only
        reproduce state the sampler decided not to keep (the
        thread-reuse guard would refuse the edge anyway, since the
        owning tombstone is gone), so dropping it is behaviour-neutral
        and releases the last reference to the dead request's
        activities.  All backends run this identically, which keeps the
        context maps -- and with them the reconstruction -- equivalent.
        """
        purge_cmap = cag.sampled_out
        for vertex in cag.vertices:
            self._owner.pop(id(vertex), None)
            if vertex.type is ActivityType.SEND:
                self.mmap.remove(vertex)
            if purge_cmap:
                key = vertex.context_key
                if self._cmap_latest.get(key) is vertex:
                    del self._cmap_latest[key]
                    self._cmap_recency.pop(key, None)
                    self.stats.purged_cmap_entries += 1
