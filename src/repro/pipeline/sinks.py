"""Pipeline sinks: where trace artefacts are written.

A *sink* persists something about a completed pipeline run -- the
terminal/offline equivalents of the paper's figures.  Sinks are small
named objects with ``write(session) -> List[Path]``; the pipeline runs
each sink after the analysis stages and records the written paths on the
session (``session.artifacts``).

=======================  ==================================================
:class:`SummaryJsonSink` one ``trace_summary`` JSON document for the whole
                         trace (patterns, percentages, correlator stats)
:class:`CagJsonlSink`    the CAG stream as JSON Lines -- one
                         :func:`~repro.core.export.cag_to_dict` object per
                         line, the shape downstream dashboards ingest
:class:`DotSink`         Graphviz DOT files for the first N causal paths
                         (the paper's Fig. 1 view)
=======================  ==================================================
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Union

from ..core.export import cag_to_dict, cag_to_dot, trace_summary


class Sink:
    """Base class (optional -- duck typing suffices) for pipeline sinks."""

    name: str = "sink"

    def write(self, session) -> List[Path]:  # pragma: no cover - interface
        raise NotImplementedError


class SummaryJsonSink(Sink):
    """Write the compact :func:`~repro.core.export.trace_summary` JSON."""

    name = "summary_json"

    def __init__(self, path: Union[str, os.PathLike], top_patterns: int = 5) -> None:
        self.path = Path(path)
        self.top_patterns = top_patterns

    def write(self, session) -> List[Path]:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        summary = trace_summary(session.trace, top_patterns=self.top_patterns)
        summary["backend"] = session.backend.describe()
        summary["source"] = session.source.describe()
        self.path.write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return [self.path]


class CagJsonlSink(Sink):
    """Stream every completed CAG as one JSON object per line."""

    name = "cag_jsonl"

    def __init__(
        self,
        path: Union[str, os.PathLike],
        include_incomplete: bool = False,
        limit: Optional[int] = None,
    ) -> None:
        self.path = Path(path)
        self.include_incomplete = include_incomplete
        self.limit = limit

    def write(self, session) -> List[Path]:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        cags = list(session.trace.cags)
        if self.include_incomplete:
            cags.extend(session.trace.incomplete_cags)
        if self.limit is not None:
            cags = cags[: self.limit]
        with self.path.open("w", encoding="utf-8") as handle:
            for cag in cags:
                handle.write(json.dumps(cag_to_dict(cag), sort_keys=True))
                handle.write("\n")
        return [self.path]


class DotSink(Sink):
    """Write Graphviz DOT files for the first ``limit`` causal paths."""

    name = "dot"

    def __init__(self, directory: Union[str, os.PathLike], limit: int = 5) -> None:
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.directory = Path(directory)
        self.limit = limit

    def write(self, session) -> List[Path]:
        self.directory.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []
        for index, cag in enumerate(session.trace.cags[: self.limit]):
            path = self.directory / f"cag_{index:04d}.dot"
            path.write_text(
                cag_to_dot(cag, title=f"CAG {index} ({cag.cag_id})") + "\n",
                encoding="utf-8",
            )
            written.append(path)
        return written
