"""Pipeline sinks: where trace artefacts are written.

A *sink* persists something about a completed pipeline run -- the
terminal/offline equivalents of the paper's figures.  Sinks are small
named objects with ``write(session) -> List[Path]``; the pipeline runs
each sink after the analysis stages and records the written paths on the
session (``session.artifacts``).

=======================  ==================================================
:class:`SummaryJsonSink` one ``trace_summary`` JSON document for the whole
                         trace (patterns, percentages, correlator stats)
:class:`CagJsonlSink`    the CAG stream as JSON Lines -- one
                         :func:`~repro.core.export.cag_to_dict` object per
                         line, the shape downstream dashboards ingest
:class:`DotSink`         Graphviz DOT files for the first N causal paths
                         (the paper's Fig. 1 view)
:class:`StoreSink`       one run appended to a persistent SQLite
                         :class:`~repro.store.TraceStore` -- the queryable
                         cross-run history behind ``repro query``
=======================  ==================================================

:class:`StoreSink` is also a *live* sink: it exposes ``on_cag`` and the
pipeline feeds it every finished CAG as correlation produces it, so a
streaming run commits request rows incrementally instead of holding the
whole trace until the end.  Ingest is idempotent, so the final
``write()`` pass (which also stamps run metadata) re-offering already
stored CAGs is harmless.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Union

from ..core.export import cag_to_dict, cag_to_dot, trace_summary
from ..store import TraceStore, default_run_id


class Sink:
    """Base class (optional -- duck typing suffices) for pipeline sinks."""

    name: str = "sink"

    def write(self, session) -> List[Path]:  # pragma: no cover - interface
        raise NotImplementedError


class SummaryJsonSink(Sink):
    """Write the compact :func:`~repro.core.export.trace_summary` JSON."""

    name = "summary_json"

    def __init__(self, path: Union[str, os.PathLike], top_patterns: int = 5) -> None:
        self.path = Path(path)
        self.top_patterns = top_patterns

    def write(self, session) -> List[Path]:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        summary = trace_summary(session.trace, top_patterns=self.top_patterns)
        summary["backend"] = session.backend.describe()
        summary["source"] = session.source.describe()
        self.path.write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return [self.path]


class CagJsonlSink(Sink):
    """Stream every completed CAG as one JSON object per line."""

    name = "cag_jsonl"

    def __init__(
        self,
        path: Union[str, os.PathLike],
        include_incomplete: bool = False,
        limit: Optional[int] = None,
    ) -> None:
        self.path = Path(path)
        self.include_incomplete = include_incomplete
        self.limit = limit

    def write(self, session) -> List[Path]:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        cags = list(session.trace.cags)
        if self.include_incomplete:
            cags.extend(session.trace.incomplete_cags)
        if self.limit is not None:
            cags = cags[: self.limit]
        with self.path.open("w", encoding="utf-8") as handle:
            for cag in cags:
                handle.write(json.dumps(cag_to_dict(cag), sort_keys=True))
                handle.write("\n")
        return [self.path]


class StoreSink(Sink):
    """Append the run to a persistent :class:`~repro.store.TraceStore`.

    Parameters
    ----------
    path:
        Store database file; created with the current schema if missing.
    run_id:
        User-visible id the run is stored under; defaults to a
        timestamp/pid id from :func:`~repro.store.default_run_id`.
        Re-using a finalized run's id is refused at ingest time.
    scenario:
        Scenario name recorded on the run row (used by cross-run
        scenario filters); ``None`` for non-library sources.
    commit_every:
        How many live-ingested CAGs to batch per SQLite commit.
    """

    name = "store"

    def __init__(
        self,
        path: Union[str, os.PathLike],
        run_id: Optional[str] = None,
        scenario: Optional[str] = None,
        commit_every: int = 256,
    ) -> None:
        if commit_every <= 0:
            raise ValueError("commit_every must be positive")
        self.path = Path(path)
        self.run_id = run_id or default_run_id()
        self.scenario = scenario
        self.commit_every = commit_every
        self._store: Optional[TraceStore] = None
        self._run_key: Optional[int] = None
        self._pending = 0

    def _ensure_open(self) -> TraceStore:
        if self._store is None:
            self._store = TraceStore(self.path)
            self._run_key = self._store.begin_run(self.run_id, scenario=self.scenario)
        return self._store

    def on_cag(self, cag) -> None:
        """Live ingest hook: store one finished CAG as it is produced."""
        store = self._ensure_open()
        if store.ingest_cag(self._run_key, cag):
            self._pending += 1
            if self._pending >= self.commit_every:
                store.commit()
                self._pending = 0

    def write(self, session) -> List[Path]:
        store = self._ensure_open()
        # Idempotent sweep: batch/sharded backends deliver everything
        # here; for streaming this only catches CAGs on_cag missed.
        store.ingest_cags(self._run_key, session.trace.cags)
        sampling = session.backend.sampling
        store.finalize_run(
            self._run_key,
            scenario=self.scenario,
            source=session.source.describe(),
            backend=session.backend.describe(),
            sampling=sampling.describe() if sampling is not None else None,
            window_s=session.trace.correlation.window,
            incomplete=len(session.trace.incomplete_cags),
            correlation_time_s=session.trace.correlation_time,
        )
        store.close()
        self._store = None
        self._run_key = None
        self._pending = 0
        return [self.path]


class DotSink(Sink):
    """Write Graphviz DOT files for the first ``limit`` causal paths."""

    name = "dot"

    def __init__(self, directory: Union[str, os.PathLike], limit: int = 5) -> None:
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.directory = Path(directory)
        self.limit = limit

    def write(self, session) -> List[Path]:
        self.directory.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []
        for index, cag in enumerate(session.trace.cags[: self.limit]):
            path = self.directory / f"cag_{index:04d}.dot"
            path.write_text(
                cag_to_dot(cag, title=f"CAG {index} ({cag.cag_id})") + "\n",
                encoding="utf-8",
            )
            written.append(path)
        return written
