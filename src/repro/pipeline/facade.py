"""The Pipeline facade: source -> backend -> stages -> sinks, one call.

The paper's conceptual pipeline -- collect interaction activities,
correlate them into CAGs, then analyze -- used to be wired by hand at
every call site (CLI commands, figure generators, examples).
:class:`Pipeline` is that wiring as one composable object::

    from repro.pipeline import (
        AccuracyStage, BackendSpec, Pipeline, RankedLatencyStage,
    )
    from repro import RubisConfig

    pipe = Pipeline(
        source=RubisConfig(clients=150),         # or a run, log files, ...
        backend=BackendSpec.streaming(horizon=5.0),
        stages=[RankedLatencyStage(top=5), AccuracyStage()],
    )
    session = pipe.run()
    print(session.trace.request_count, "causal paths")
    print(session.analyses["accuracy"].accuracy)

A :class:`TraceSession` is one execution of a pipeline: it carries the
resolved source, the backend spec, the :class:`~repro.core.tracer.
TraceResult`, every stage's result (``analyses``) and every sink's
written paths (``artifacts``).  Swapping the backend -- batch to
streaming to sharded -- changes nothing downstream, and
:meth:`Pipeline.verify_equivalence` asserts exactly that on the
pipeline's own source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.cag import CAG
from ..core.tracer import TraceResult
from .backends import BackendSpec
from .equivalence import EquivalenceReport, verify_equivalence
from .sinks import Sink
from .sources import Source, as_source
from .stages import AnalysisStage


@dataclass
class TraceSession:
    """Everything one pipeline execution produced."""

    source: Source
    backend: BackendSpec
    trace: TraceResult
    #: stage results keyed by stage name
    analyses: Dict[str, object] = field(default_factory=dict)
    #: paths written by sinks, keyed by sink name
    artifacts: Dict[str, List[object]] = field(default_factory=dict)

    # -- shortcuts -----------------------------------------------------------

    @property
    def run(self):
        """The underlying simulation run, when the source has one."""
        return self.source.run

    @property
    def cags(self) -> List[CAG]:
        return self.trace.cags

    @property
    def request_count(self) -> int:
        return self.trace.request_count

    def accuracy(self):
        """Accuracy vs. ground truth (cached if an AccuracyStage ran)."""
        if "accuracy" in self.analyses:
            return self.analyses["accuracy"]
        truth = self.source.ground_truth
        if truth is None:
            raise ValueError(
                f"source has no ground truth ({self.source.describe()})"
            )
        return self.trace.accuracy(truth)

    def summary(self) -> Dict[str, float]:
        """The trace's compact numeric summary plus source-side counters."""
        data = self.trace.summary()
        data["malformed_lines"] = float(self.source.malformed_lines)
        return data


class Pipeline:
    """Composable trace pipeline: one source, one backend, any stages/sinks.

    Parameters
    ----------
    source:
        Anything :func:`~repro.pipeline.sources.as_source` accepts: a
        ``RubisConfig`` / ``ScenarioConfig`` (simulated lazily, memoised),
        a completed run result, an activity list, or a
        :class:`~repro.pipeline.sources.Source` instance
        (:class:`~repro.pipeline.sources.LogSource` for log files).
    backend:
        A :class:`BackendSpec`; defaults to the batch driver at the
        paper's 10 ms window.
    stages:
        Analysis stages, run in order; each result lands in
        ``session.analyses[stage.name]``.
    sinks:
        Artefact writers, run after the stages; written paths land in
        ``session.artifacts[sink.name]``.
    """

    def __init__(
        self,
        source,
        backend: Optional[BackendSpec] = None,
        stages: Sequence[AnalysisStage] = (),
        sinks: Sequence[Sink] = (),
    ) -> None:
        self.source: Source = as_source(source)
        self.backend = backend or BackendSpec()
        self.stages = list(stages)
        self.sinks = list(sinks)

    # -- derivation ----------------------------------------------------------

    def with_backend(self, backend: BackendSpec) -> "Pipeline":
        """The same pipeline driven by a different backend."""
        return Pipeline(
            source=self.source,
            backend=backend,
            stages=self.stages,
            sinks=self.sinks,
        )

    # -- execution -----------------------------------------------------------

    def run(self, on_cag: Optional[Callable[[CAG], None]] = None) -> TraceSession:
        """Execute source -> backend -> stages -> sinks.

        ``on_cag`` is forwarded to the backend: on the streaming backend
        it fires per finished CAG *while the stream is consumed* (the
        online monitoring hook); batch/sharded backends fire it after
        correlation.  Sinks that expose an ``on_cag`` hook of their own
        (live sinks, e.g. :class:`~repro.pipeline.sinks.StoreSink`) are
        fanned into the same callback so they ingest incrementally.
        """
        live_hooks = [sink.on_cag for sink in self.sinks if hasattr(sink, "on_cag")]
        if on_cag is not None:
            live_hooks.append(on_cag)
        callback: Optional[Callable[[CAG], None]] = None
        if live_hooks:

            def callback(cag: CAG) -> None:
                for hook in live_hooks:
                    hook(cag)

        trace = self.backend.trace(self.source.activities(), on_cag=callback)
        # Attribute-filtered record count is a property of classification,
        # which happens inside the source; surface it on the trace the
        # same way PreciseTracer.trace_records does.
        trace.filtered_records = self.source.filtered_records
        session = TraceSession(source=self.source, backend=self.backend, trace=trace)
        for stage in self.stages:
            session.analyses[stage.name] = stage.run(session)
        for sink in self.sinks:
            session.artifacts[sink.name] = sink.write(session)
        return session

    def verify_equivalence(
        self, backends: Optional[Sequence[BackendSpec]] = None
    ) -> EquivalenceReport:
        """Check backend equivalence on this pipeline's own source.

        ``backends`` defaults to batch/streaming/sharded at this
        pipeline's window.  Returns the report; chain ``.require()`` to
        turn a mismatch into an exception.
        """
        return verify_equivalence(
            self.source, backends=backends, window=self.backend.window
        )
