"""Backend equivalence as a first-class API.

The repo's central invariant -- batch, streaming and sharded correlation
produce **identical** results (same finished CAGs, same edge multisets,
same ranked latency report) on any trace, as long as streaming eviction
is disabled or generous -- used to live only in test helpers.  This
module makes it a queryable property of the pipeline:

* :func:`canonical_cags` / :func:`ranked_latency_report` -- the
  order-independent fingerprints the equivalence is defined over;
* :func:`result_digest` -- one SHA-256 hex digest of both fingerprints,
  stable across processes and Python versions, suitable for golden-file
  pinning;
* :func:`verify_equivalence` -- run one source through several backends
  and compare: returns an :class:`EquivalenceReport` (per-backend digest
  and CAG counts, mismatch list), which can also :meth:`~
  EquivalenceReport.require` itself into an exception for use as a gate.

Why fingerprints instead of ``==`` on results: the drivers legitimately
differ in wall-clock timing, peak-memory accounting and emission order,
so equivalence is defined over what the paper cares about -- the causal
paths and the ranked report -- not over every bookkeeping counter.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.cag import CAG
from ..core.correlator import CorrelationResult
from ..core.patterns import PatternClassifier
from .backends import BackendSpec, default_backends
from .sources import Source, as_source


def _fingerprint(activity) -> Tuple:
    """Identity of one vertex: everything the paper logs about it.

    Built from the original string/tuple identity (never the interned
    ``context_key`` int, which is a per-process ingest artefact) so the
    golden digests stay byte-identical across runs and refactors.
    """
    return (
        activity.type.name,
        round(activity.timestamp, 9),
        activity.context.as_tuple(),
        activity.message.connection_key(),
        activity.size,
    )


def canonical_cags(cags: Iterable[CAG]) -> List[Tuple]:
    """Order-independent fingerprint: one (root, edge-multiset) per CAG.

    Two CAG collections are *the same reconstruction* exactly when their
    canonical forms are equal -- regardless of driver, emission order or
    vertex object identity.
    """
    shapes = []
    for cag in cags:
        edges = sorted(
            (edge.kind, _fingerprint(edge.parent), _fingerprint(edge.child))
            for edge in cag.edges
        )
        shapes.append((_fingerprint(cag.root), tuple(edges)))
    return sorted(shapes)


def ranked_latency_report(cags: Iterable[CAG]) -> List[Tuple]:
    """(pattern signature, count, rounded percentages) rows, most frequent
    first -- the paper's ranked latency-percentage report."""
    classifier = PatternClassifier()
    classifier.add_all(list(cags))
    report = []
    for pattern in classifier.patterns:
        percentages = tuple(
            (label, round(value, 6))
            for label, value in sorted(pattern.average_path().percentages().items())
        )
        report.append((pattern.signature, pattern.count, percentages))
    return report


def result_digest(result: CorrelationResult) -> str:
    """SHA-256 hex digest of a result's canonical CAGs + ranked report.

    Built from ``repr`` of the canonical structures: every element is a
    nested tuple of strings, ints and round()-ed floats, whose reprs are
    deterministic on every supported Python, so the digest is stable
    across processes, platforms and versions -- the property the golden
    pinning in ``tests/golden_pipeline_digests.json`` relies on.
    """
    payload = (
        canonical_cags(result.cags),
        canonical_cags(result.incomplete_cags),
        ranked_latency_report(result.cags),
    )
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


@dataclass
class BackendOutcome:
    """What one backend produced for the equivalence check."""

    backend: BackendSpec
    digest: str
    cag_count: int
    incomplete_count: int
    correlation_time: float
    #: the full result, retained only when ``verify_equivalence`` is
    #: called with ``keep_results=True`` (the fuzz harness inspects the
    #: engine counters of every backend, not just the digest)
    result: Optional[CorrelationResult] = None

    @property
    def kind(self) -> str:
        return self.backend.kind


class EquivalenceError(AssertionError):
    """Raised by :meth:`EquivalenceReport.require` on a mismatch."""


@dataclass
class EquivalenceReport:
    """Outcome of one :func:`verify_equivalence` run."""

    source: str
    outcomes: List[BackendOutcome] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return len({outcome.digest for outcome in self.outcomes}) <= 1

    @property
    def digest(self) -> Optional[str]:
        """The shared digest (``None`` when the backends disagree)."""
        digests = {outcome.digest for outcome in self.outcomes}
        return digests.pop() if len(digests) == 1 else None

    def mismatches(self) -> List[BackendOutcome]:
        """Backends that diverge from the first (reference) backend."""
        if not self.outcomes:
            return []
        reference = self.outcomes[0].digest
        return [o for o in self.outcomes if o.digest != reference]

    def require(self) -> "EquivalenceReport":
        """Raise :class:`EquivalenceError` unless every backend agreed."""
        if not self.equivalent:
            raise EquivalenceError(self.describe())
        return self

    def describe(self) -> str:
        lines = [
            f"backend equivalence on {self.source}: "
            + ("IDENTICAL" if self.equivalent else "MISMATCH")
        ]
        for outcome in self.outcomes:
            lines.append(
                f"  {outcome.backend.describe():50s} "
                f"cags={outcome.cag_count} "
                f"incomplete={outcome.incomplete_count} "
                f"digest={outcome.digest[:16]}"
            )
        return "\n".join(lines)


def verify_equivalence(
    source,
    backends: Optional[Sequence[BackendSpec]] = None,
    window: float = 0.010,
    skew_bound: float = 0.005,
    sampling=None,
    keep_results: bool = False,
) -> EquivalenceReport:
    """Run one source through several backends and compare the results.

    ``source`` is anything :func:`~repro.pipeline.sources.as_source`
    accepts; each backend receives its own fresh activities (the engine
    mutates byte counters in place).  ``backends`` defaults to one spec
    per kind -- batch, streaming (eviction disabled, so equivalence is
    exact by construction), sharded -- at the shared ``window``.
    ``sampling`` (a :class:`~repro.sampling.SamplingSpec`) extends the
    default matrix to sampled runs: the sampler decides at the causal
    root by deterministic hashing, so every backend admits the identical
    request subset and the digests still match.  ``keep_results=True``
    retains each backend's full :class:`CorrelationResult` on its
    outcome, so callers (the fuzz harness) can check engine-state
    conservation laws on top of the digests.

    Returns the report; chain ``.require()`` to use it as a hard gate::

        verify_equivalence(run, window=0.010).require()
    """
    resolved: Source = as_source(source)
    if backends is None:
        backends = default_backends(
            window=window, skew_bound=skew_bound, sampling=sampling
        )
    report = EquivalenceReport(source=resolved.describe())
    for spec in backends:
        result = spec.correlate(resolved.activities())
        report.outcomes.append(
            BackendOutcome(
                backend=spec,
                digest=result_digest(result),
                cag_count=len(result.cags),
                incomplete_count=len(result.incomplete_cags),
                correlation_time=result.correlation_time,
                result=result if keep_results else None,
            )
        )
    return report
