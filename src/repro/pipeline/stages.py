"""Pluggable analysis stages: what a pipeline computes from a trace.

Once a backend has turned activities into a
:class:`~repro.core.tracer.TraceResult`, any number of *stages* run over
it.  A stage is a small named object with ``run(session) -> result``; the
session exposes the trace and the source (for ground truth), and collects
every stage's result under its name (``session.analyses["accuracy"]``).

The built-in stages cover the paper's analysis repertoire:

=======================  ==================================================
:class:`RankedLatencyStage`  the ranked latency report -- per-pattern
                         latency percentages, most frequent pattern first
                         (Fig. 15/17 rows)
:class:`PatternStage`    causal-path pattern mining (Section 3.2)
:class:`BreakdownStage`  average per-segment :class:`LatencyBreakdown`
                         over every completed path
:class:`AccuracyStage`   accuracy vs. the source's ground truth
                         (Section 5.2; needs a simulation source)
:class:`DiagnosisStage`  latency-percentage comparison against a
                         reference profile (Section 5.4 fault diagnosis)
:class:`SamplingAccuracyStage`  fidelity of a *sampled* run's ranked
                         latency report against the full (unsampled)
                         report on the same source
=======================  ==================================================

Custom stages are plain objects: anything with ``name`` and
``run(session)`` participates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..core.accuracy import AccuracyReport
from ..core.debugging import Diagnosis, LatencyProfile, diagnose
from ..core.latency import LatencyBreakdown
from ..core.patterns import PathPattern
from ..sampling import SamplingAccuracy, compare_sampled_reports


class AnalysisStage:
    """Base class (optional -- duck typing suffices) for analysis stages."""

    #: key under which the result lands in ``session.analyses``
    name: str = "stage"

    def run(self, session):  # pragma: no cover - interface
        raise NotImplementedError


class RankedLatencyStage(AnalysisStage):
    """The paper's ranked latency report: per-pattern percentage rows,
    most frequent pattern first."""

    name = "ranked_latency"

    def __init__(self, top: Optional[int] = None) -> None:
        self.top = top

    def run(self, session) -> List[Dict[str, object]]:
        patterns = session.trace.patterns()
        if self.top is not None:
            patterns = patterns[: self.top]
        rows: List[Dict[str, object]] = []
        for rank, pattern in enumerate(patterns, start=1):
            breakdown = pattern.average_path()
            rows.append(
                {
                    "rank": rank,
                    "paths": pattern.count,
                    "activities_per_path": pattern.length,
                    "components": [
                        "/".join(component) for component in pattern.components()
                    ],
                    "average_latency_s": pattern.average_latency(),
                    "percentages": breakdown.percentages(),
                }
            )
        return rows


class PatternStage(AnalysisStage):
    """Causal-path pattern mining: the classified patterns themselves."""

    name = "patterns"

    def __init__(self, top: Optional[int] = None) -> None:
        self.top = top

    def run(self, session) -> List[PathPattern]:
        patterns = session.trace.patterns()
        return patterns if self.top is None else patterns[: self.top]


class BreakdownStage(AnalysisStage):
    """Average per-segment latency breakdown over every completed path."""

    name = "breakdown"

    def run(self, session) -> LatencyBreakdown:
        return session.trace.average_breakdown()


class AccuracyStage(AnalysisStage):
    """Score the trace against the source's ground truth (Section 5.2)."""

    name = "accuracy"

    def __init__(self, time_tolerance: float = 1e-6) -> None:
        self.time_tolerance = time_tolerance

    def run(self, session) -> AccuracyReport:
        truth = session.source.ground_truth
        if truth is None:
            raise ValueError(
                "AccuracyStage needs a source with ground truth "
                f"(got {session.source.describe()}); use a simulation "
                "source or pass ground_truth to MemorySource"
            )
        return session.trace.accuracy(truth, time_tolerance=self.time_tolerance)


class ProfileStage(AnalysisStage):
    """Latency-percentage profile of the dominant pattern (Fig. 15/17)."""

    name = "profile"

    def __init__(self, label: str = "trace", use_dominant_pattern: bool = True) -> None:
        self.label = label
        self.use_dominant_pattern = use_dominant_pattern

    def run(self, session) -> LatencyProfile:
        return session.trace.profile(
            self.label, use_dominant_pattern=self.use_dominant_pattern
        )


class DiagnosisStage(AnalysisStage):
    """Compare this trace's profile to a healthy reference and rank the
    suspected components (Section 5.4's fault-diagnosis workflow).

    ``reference`` is a :class:`LatencyProfile` or a completed
    :class:`~repro.pipeline.TraceSession` that ran a :class:`ProfileStage`
    (its profile is reused).
    """

    name = "diagnosis"

    def __init__(
        self,
        reference: Union[LatencyProfile, "object"],
        threshold: float = 5.0,
        label: str = "observed",
    ) -> None:
        self.reference = reference
        self.threshold = threshold
        self.label = label

    def _reference_profile(self) -> LatencyProfile:
        if isinstance(self.reference, LatencyProfile):
            return self.reference
        analyses = getattr(self.reference, "analyses", None)
        if analyses and ProfileStage.name in analyses:
            return analyses[ProfileStage.name]
        trace = getattr(self.reference, "trace", None)
        if trace is not None:
            return trace.profile("reference")
        raise TypeError(
            "DiagnosisStage reference must be a LatencyProfile or a "
            "TraceSession (with or without a ProfileStage result)"
        )

    def run(self, session) -> Diagnosis:
        # Reuse the session's own ProfileStage result when one ran; the
        # profile of a trace is label-independent apart from its name.
        observed = session.analyses.get(ProfileStage.name)
        if observed is None:
            observed = session.trace.profile(self.label)
        return diagnose(
            self._reference_profile(), observed, threshold=self.threshold
        )


class SamplingAccuracyStage(AnalysisStage):
    """How faithful is this sampled trace's report to the full one?

    Re-correlates the session's own source through the same backend with
    sampling disabled (the reference run) and scores the session's
    ranked latency report against it: pattern coverage and the
    dominant-profile drift -- see
    :func:`repro.sampling.compare_sampled_reports`.

    The stage deliberately pays for one full correlation pass; it is an
    evaluation tool (the ``sampling`` figure is built on it), not
    something to leave in a production pipeline.  On a session whose
    backend has no sampling configured it degenerates to comparing a
    report against itself (coverage 1.0, distance 0.0).
    """

    name = "sampling_accuracy"

    def run(self, session) -> SamplingAccuracy:
        reference_backend = session.backend.with_overrides(sampling=None)
        full = reference_backend.correlate(session.source.activities())
        return compare_sampled_reports(full.cags, session.trace.cags)


#: The default stage set: pattern mining plus the ranked latency report.
def default_stages() -> List[AnalysisStage]:
    return [PatternStage(), RankedLatencyStage(), BreakdownStage()]
