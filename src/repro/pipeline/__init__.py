"""Unified correlation pipeline: one backend-agnostic API, source to analysis.

The paper's contribution is a single conceptual pipeline -- collect
interaction activities, correlate them into Component Activity Graphs,
then analyze (ranked latencies, breakdowns, fault diagnosis).  This
package is that pipeline as a composable facade over the repo's layers:

    source  ->  backend  ->  stages  ->  sinks
    (simulation run,   (batch |      (ranked latency,  (summary JSON,
     log files,         streaming |   patterns,         CAG JSONL,
     raw activities)    sharded)      accuracy, ...)    DOT export)

Entry points
------------
:class:`Pipeline` / :class:`TraceSession`
    Compose and execute: ``Pipeline(source, backend, stages, sinks).run()``.
:class:`BackendSpec`
    Declarative driver selection (``batch`` | ``streaming`` | ``sharded``)
    carrying window/horizon/skew-bound/chunk-size/shard/executor knobs.
:mod:`sources <repro.pipeline.sources>`
    :class:`RunSource` (simulations, memoised), :class:`LogSource`
    (chunked log-file readers), :class:`MemorySource` (raw activities).
:mod:`stages <repro.pipeline.stages>`
    :class:`RankedLatencyStage`, :class:`PatternStage`,
    :class:`BreakdownStage`, :class:`AccuracyStage`, :class:`ProfileStage`,
    :class:`DiagnosisStage`.
:mod:`sinks <repro.pipeline.sinks>`
    :class:`SummaryJsonSink`, :class:`CagJsonlSink`, :class:`DotSink`,
    :class:`StoreSink` (persistent SQLite trace store).
:func:`verify_equivalence`
    Backend equivalence as an API: identical CAGs and ranked reports
    across backends, checkable (and goldenly pinnable) on any source.
"""

from ..sampling import SamplingAccuracy, SamplingSpec
from .backends import BACKEND_KINDS, BackendSpec, default_backends
from .equivalence import (
    BackendOutcome,
    EquivalenceError,
    EquivalenceReport,
    canonical_cags,
    ranked_latency_report,
    result_digest,
    verify_equivalence,
)
from .facade import Pipeline, TraceSession
from .sinks import CagJsonlSink, DotSink, Sink, StoreSink, SummaryJsonSink
from .sources import LogSource, MemorySource, RunSource, Source, as_source
from .stages import (
    AccuracyStage,
    AnalysisStage,
    BreakdownStage,
    DiagnosisStage,
    PatternStage,
    ProfileStage,
    RankedLatencyStage,
    SamplingAccuracyStage,
    default_stages,
)

__all__ = [
    "AccuracyStage",
    "AnalysisStage",
    "BACKEND_KINDS",
    "BackendOutcome",
    "BackendSpec",
    "BreakdownStage",
    "CagJsonlSink",
    "DiagnosisStage",
    "DotSink",
    "EquivalenceError",
    "EquivalenceReport",
    "LogSource",
    "MemorySource",
    "PatternStage",
    "Pipeline",
    "ProfileStage",
    "RankedLatencyStage",
    "RunSource",
    "SamplingAccuracy",
    "SamplingAccuracyStage",
    "SamplingSpec",
    "Sink",
    "Source",
    "StoreSink",
    "SummaryJsonSink",
    "TraceSession",
    "as_source",
    "canonical_cags",
    "default_backends",
    "default_stages",
    "ranked_latency_report",
    "result_digest",
    "verify_equivalence",
]
