"""Correlation backends behind one declarative spec.

The repo grew three correlation drivers -- the offline batch
:class:`~repro.core.correlator.Correlator`, the online
:class:`~repro.stream.StreamingCorrelator` and the parallel
:class:`~repro.stream.ShardedCorrelator` -- each with its own knobs.
:class:`BackendSpec` is the one value object that names a driver and
carries its knobs, so callers (CLI, experiments, examples, tests) select
a backend declaratively instead of wiring a correlator by hand::

    spec = BackendSpec.streaming(horizon=5.0)
    result = spec.correlate(activities)          # CorrelationResult
    trace = spec.trace(activities)               # TraceResult

All three backends produce the same
:class:`~repro.core.correlator.CorrelationResult` type, and -- with
eviction disabled -- the same finished CAGs (the equivalence asserted by
:func:`repro.pipeline.verify_equivalence`).  Which knobs apply:

============  =========================================================
``batch``     ``window`` only
``streaming`` ``window``, ``horizon``, ``skew_bound``, ``chunk_size``,
              ``checkpoint_path``, ``checkpoint_every``, ``resume_from``
``sharded``   ``window``, ``max_shards``, ``max_workers``, ``executor``,
              ``schedule``
============  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, List, Optional

from ..core.activity import Activity
from ..core.cag import CAG
from ..core.correlator import CorrelationResult, Correlator
from ..core.interning import ActivityTable
from ..core.tracer import TraceResult
from ..sampling import SamplingSpec
from ..stream import ShardedCorrelator, StreamingCorrelator
from ..stream.scheduler import SCHEDULE_KINDS
from ..stream.sharded import EXECUTOR_KINDS

#: The three backend kinds, in canonical (equivalence-matrix) order.
BACKEND_KINDS = ("batch", "streaming", "sharded")


@dataclass(frozen=True)
class BackendSpec:
    """A correlation driver plus its knobs, as one comparable value.

    Frozen so specs can key caches and appear in reprs/reports; use
    :meth:`with_overrides` (or :func:`dataclasses.replace`) to derive
    variants.
    """

    kind: str = "batch"
    #: sliding-time-window size in seconds (all backends)
    window: float = 0.010
    #: streaming eviction horizon in seconds (``None`` = never evict)
    horizon: Optional[float] = None
    #: streaming reorder slack: upper bound on node clock skew, seconds
    skew_bound: float = 0.005
    #: streaming ingestion chunk size, activities
    chunk_size: int = 256
    #: sharded: upper bound on shard count (``None`` = one per component)
    max_shards: Optional[int] = None
    #: sharded: worker-pool size (``None`` = executor heuristic)
    max_workers: Optional[int] = None
    #: sharded: ``"thread"`` (GIL-bounded, zero copy) or ``"process"``
    #: (true parallelism, shards pickled across the boundary)
    executor: str = "thread"
    #: sharded: component-to-shard assignment policy -- ``"static"``
    #: (historical round-robin), ``"balanced"`` (LPT cost packing) or
    #: ``"stealing"`` (LPT plus run-time work stealing)
    schedule: str = "static"
    #: streaming: checkpoint file path (requires ``checkpoint_every``)
    checkpoint_path: Optional[str] = None
    #: streaming: checkpoint cadence in ingested activities
    checkpoint_every: Optional[int] = None
    #: streaming: resume from this checkpoint file instead of starting
    #: from the head of the trace
    resume_from: Optional[str] = None
    #: request sampling policy (``None`` = trace every request).  The
    #: decision is made at each causal root by deterministic hashing, so
    #: every backend kind samples the identical request subset and
    #: :func:`~repro.pipeline.verify_equivalence` applies to sampled
    #: runs unchanged.  The ``adaptive`` policy needs one sequential
    #: engine and is rejected on the sharded backend.
    sampling: Optional[SamplingSpec] = None

    def __post_init__(self) -> None:
        if self.kind not in BACKEND_KINDS:
            raise ValueError(
                f"unknown backend kind {self.kind!r}; valid kinds: "
                f"{', '.join(BACKEND_KINDS)}"
            )
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError("horizon must be positive (or None to disable)")
        if self.skew_bound < 0:
            raise ValueError("skew_bound must be non-negative")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {self.executor!r}; valid executors: "
                f"{', '.join(EXECUTOR_KINDS)}"
            )
        if self.schedule not in SCHEDULE_KINDS:
            raise ValueError(
                f"unknown schedule {self.schedule!r}; valid schedules: "
                f"{', '.join(SCHEDULE_KINDS)}"
            )
        if (self.checkpoint_path is None) != (self.checkpoint_every is None):
            raise ValueError(
                "checkpoint_path and checkpoint_every must be set together"
            )
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if self.kind != "streaming":
            if self.checkpoint_path is not None or self.resume_from is not None:
                raise ValueError(
                    "checkpointing and resume are streaming-backend features "
                    f"(backend kind is {self.kind!r})"
                )
        if self.sampling is not None:
            if not isinstance(self.sampling, SamplingSpec):
                raise ValueError(
                    "sampling must be a repro.sampling.SamplingSpec "
                    f"(got {type(self.sampling).__name__})"
                )
            if self.sampling.kind == "adaptive" and self.kind == "sharded":
                raise ValueError(
                    "adaptive sampling feeds back from one sequential "
                    "engine's state; use the batch or streaming backend "
                    "(or a fixed-rate policy) with sharded correlation"
                )

    # -- constructors --------------------------------------------------------

    @classmethod
    def batch(
        cls, window: float = 0.010, sampling: Optional[SamplingSpec] = None
    ) -> "BackendSpec":
        return cls(kind="batch", window=window, sampling=sampling)

    @classmethod
    def streaming(
        cls,
        window: float = 0.010,
        horizon: Optional[float] = None,
        skew_bound: float = 0.005,
        chunk_size: int = 256,
        sampling: Optional[SamplingSpec] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        resume_from: Optional[str] = None,
    ) -> "BackendSpec":
        return cls(
            kind="streaming",
            window=window,
            horizon=horizon,
            skew_bound=skew_bound,
            chunk_size=chunk_size,
            sampling=sampling,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            resume_from=resume_from,
        )

    @classmethod
    def sharded(
        cls,
        window: float = 0.010,
        max_shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        executor: str = "thread",
        schedule: str = "static",
        sampling: Optional[SamplingSpec] = None,
    ) -> "BackendSpec":
        return cls(
            kind="sharded",
            window=window,
            max_shards=max_shards,
            max_workers=max_workers,
            executor=executor,
            schedule=schedule,
            sampling=sampling,
        )

    def with_overrides(self, **kwargs) -> "BackendSpec":
        """A copy of this spec with some fields replaced."""
        return replace(self, **kwargs)

    # -- execution -----------------------------------------------------------

    def make_correlator(self):
        """Instantiate the configured driver."""
        if self.kind == "batch":
            return Correlator(window=self.window, sampling=self.sampling)
        if self.kind == "streaming":
            return StreamingCorrelator(
                window=self.window,
                horizon=self.horizon,
                skew_bound=self.skew_bound,
                chunk_size=self.chunk_size,
                sampling=self.sampling,
                checkpoint_path=self.checkpoint_path,
                checkpoint_every=self.checkpoint_every,
                resume_from=self.resume_from,
            )
        return ShardedCorrelator(
            window=self.window,
            max_workers=self.max_workers,
            max_shards=self.max_shards,
            executor=self.executor,
            schedule=self.schedule,
            sampling=self.sampling,
        )

    def correlate(
        self,
        activities: Iterable[Activity],
        on_cag: Optional[Callable[[CAG], None]] = None,
    ) -> CorrelationResult:
        """Run the configured driver over ``activities``.

        ``on_cag`` is invoked once per finished CAG.  On the streaming
        backend it fires *as requests finish* (mid-stream, the online
        monitoring hook); the batch and sharded backends only know their
        CAGs after the full pass, so there it fires afterwards, in ranked
        order.

        An :class:`~repro.core.interning.ActivityTable` is accepted
        directly: its rows are rematerialized fresh for the run (the
        engine consumes ``Activity.size`` in place while matching, so a
        table's cached row view must never be what a correlator mutates
        -- the same table can then back any number of runs).
        """
        if isinstance(activities, ActivityTable):
            activities = activities.iter_fresh()
        correlator = self.make_correlator()
        if self.kind == "streaming" and on_cag is not None:
            # Let correlate_iter own engine construction so the
            # resume_from/checkpoint plumbing applies to this path too.
            for cag in correlator.correlate_iter(activities):
                on_cag(cag)
            return correlator.last_engine.result()
        result = correlator.correlate(activities)
        if on_cag is not None:
            for cag in result.cags:
                on_cag(cag)
        return result

    def trace(
        self,
        activities: Iterable[Activity],
        on_cag: Optional[Callable[[CAG], None]] = None,
    ) -> TraceResult:
        """Like :meth:`correlate`, wrapped in the analysis-ready
        :class:`~repro.core.tracer.TraceResult`."""
        return TraceResult(correlation=self.correlate(activities, on_cag=on_cag))

    def describe(self) -> str:
        """One-line human description (CLI banners, reports)."""
        parts: List[str] = [f"window={self.window:g}s"]
        if self.kind == "streaming":
            horizon = "none" if self.horizon is None else f"{self.horizon:g}s"
            parts.append(f"horizon={horizon}")
            parts.append(f"skew_bound={self.skew_bound:g}s")
            parts.append(f"chunk_size={self.chunk_size}")
            if self.checkpoint_every is not None:
                parts.append(f"checkpoint_every={self.checkpoint_every}")
            if self.resume_from is not None:
                parts.append(f"resume_from={self.resume_from}")
        elif self.kind == "sharded":
            if self.max_shards is not None:
                parts.append(f"max_shards={self.max_shards}")
            if self.max_workers is not None:
                parts.append(f"max_workers={self.max_workers}")
            parts.append(f"executor={self.executor}")
            parts.append(f"schedule={self.schedule}")
        if self.sampling is not None:
            parts.append(f"sampling={self.sampling.describe()}")
        # Which rank-kernel backend the drivers will run on (resolved
        # from the current environment; every backend kind uses it).
        from ..core.kernel import kernel_info

        parts.append(f"kernel={kernel_info().name}")
        return f"{self.kind} ({', '.join(parts)})"


def default_backends(
    window: float = 0.010,
    sampling: Optional[SamplingSpec] = None,
    **streaming_knobs,
) -> List[BackendSpec]:
    """One spec per backend kind at a shared window -- the equivalence
    matrix's default axis.  ``sampling`` applies the same sampling policy
    to every backend, extending the matrix to sampled runs."""
    return [
        BackendSpec.batch(window=window, sampling=sampling),
        BackendSpec.streaming(window=window, sampling=sampling, **streaming_knobs),
        BackendSpec.sharded(window=window, sampling=sampling),
    ]
