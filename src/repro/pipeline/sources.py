"""Activity sources: where a pipeline's trace comes from.

A *source* hides how raw TCP_TRACE data is obtained and classified; the
pipeline only ever asks it for **fresh** typed activities.  Fresh matters:
the correlation engine mutates byte counters in place while merging
segmented messages, so every backend pass (and every arm of an
equivalence check) must receive its own activity objects.  Three shapes
cover the repo's call sites:

:class:`RunSource`
    A simulated experiment -- built from a
    :class:`~repro.services.rubis.deployment.RubisConfig` or
    :class:`~repro.topology.library.ScenarioConfig` (executed lazily and
    memoised through the shared
    :class:`~repro.experiments.runner.RunCache`) or wrapped around an
    already-completed run.  Carries ground truth, so accuracy stages
    work.
:class:`LogSource`
    One or more TCP_TRACE log files read through the chunked tail reader
    (:class:`~repro.stream.FileTailSource`) and classified by an
    :class:`~repro.stream.ActivityStream` -- the offline shape of a real
    deployment's gathered logs.
:class:`MemorySource`
    Already-classified activities (cloned on every request).

:func:`as_source` adapts any of the accepted inputs (config, run result,
path, activity list, or an existing source) so :class:`repro.pipeline.
Pipeline` accepts them all directly.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..core.accuracy import GroundTruthRequest
from ..core.activity import Activity
from ..core.log_format import ActivityClassifier, FrontendSpec
from ..stream import ActivityStream, FileTailSource


class Source:
    """Interface every pipeline source implements."""

    def activities(self) -> List[Activity]:
        """Freshly classified/cloned activities (safe to mutate)."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human description (CLI banners, reports)."""
        raise NotImplementedError

    @property
    def ground_truth(self) -> Optional[Dict[int, GroundTruthRequest]]:
        """Oracle request records, when the source knows them."""
        return None

    @property
    def run(self):
        """The underlying simulation run, when there is one."""
        return None

    #: records dropped by the attribute-based noise filter in the most
    #: recent ``activities()`` call (0 when the source does not filter)
    filtered_records: int = 0
    #: unparseable lines skipped in the most recent ``activities()`` call
    malformed_lines: int = 0


class RunSource(Source):
    """A simulated experiment as a pipeline source.

    Built either from a run *config* (``RubisConfig`` / ``ScenarioConfig``
    -- executed lazily on first use, memoised through the experiments run
    cache so figure suites and pipelines share simulations) or from a
    completed :class:`~repro.topology.deployment.TopologyRunResult`.
    """

    def __init__(self, config=None, run=None, cache=None) -> None:
        if (config is None) == (run is None):
            raise ValueError("pass exactly one of config= or run=")
        self._config = config
        self._run = run
        self._cache = cache

    @classmethod
    def from_run(cls, run) -> "RunSource":
        return cls(run=run)

    @property
    def run(self):
        if self._run is None:
            # Imported lazily: experiments.runner is a higher layer that
            # itself builds on the pipeline backends.
            from ..experiments.runner import get_run

            self._run = get_run(self._config, self._cache)
        return self._run

    @property
    def config(self):
        return self._config if self._config is not None else self.run.config

    @property
    def ground_truth(self) -> Dict[int, GroundTruthRequest]:
        return self.run.ground_truth

    def frontend_spec(self) -> FrontendSpec:
        return self.run.frontend_spec()

    def activities(self) -> List[Activity]:
        # Re-classify the raw records on every call so each invocation
        # hands out fresh objects; going through our own classifier also
        # surfaces the attribute-filter count for the trace summary.
        run = self.run
        classifier = ActivityClassifier(
            frontends=[run.frontend_spec()],
            ignore_programs=set(run.topology.ignore_programs),
        )
        activities = run.activities(classifier)
        self.filtered_records = classifier.filtered_count
        return activities

    def describe(self) -> str:
        run = self._run
        if run is None:
            return f"simulation of {type(self._config).__name__}"
        return (
            f"simulated {run.topology.name} run "
            f"({run.completed_requests} requests, "
            f"{run.total_activities} activities)"
        )


class LogSource(Source):
    """TCP_TRACE log files as a pipeline source.

    Reads each file once through the chunked tail reader (torn lines are
    reassembled across chunk boundaries) and classifies the merged lines
    with the frontend description.  Lines from several per-node files are
    merged; the backends re-sort into their own processing order, so
    concatenation order does not matter.
    """

    def __init__(
        self,
        paths: Union[str, os.PathLike, Sequence[Union[str, os.PathLike]]],
        frontend: FrontendSpec,
        ignore_programs: Optional[Iterable[str]] = None,
        chunk_bytes: int = 64 * 1024,
    ) -> None:
        if isinstance(paths, (str, os.PathLike)):
            paths = [paths]
        self.paths = [os.fspath(path) for path in paths]
        if not self.paths:
            raise ValueError("LogSource needs at least one path")
        self.frontend = frontend
        self.ignore_programs = set(ignore_programs or ())
        self.chunk_bytes = chunk_bytes
        self.lines_read = 0

    def activities(self) -> List[Activity]:
        stream = ActivityStream(
            frontends=[self.frontend], ignore_programs=set(self.ignore_programs)
        )
        lines: List[str] = []
        for path in self.paths:
            lines.extend(
                FileTailSource(path, chunk_bytes=self.chunk_bytes).drain()
            )
        self.lines_read = len(lines)
        activities = stream.classify_lines(lines)
        self.malformed_lines = stream.malformed_lines
        self.filtered_records = stream.filtered_records
        return activities

    def describe(self) -> str:
        names = ", ".join(os.path.basename(path) for path in self.paths)
        return f"log file(s) {names} (frontend {self.frontend.ip}:{self.frontend.port})"


class MemorySource(Source):
    """Already-classified activities as a pipeline source.

    The held activities are treated as immutable originals: every
    ``activities()`` call returns clones, so repeated backend passes (the
    equivalence matrix) never share mutable state.
    """

    def __init__(
        self,
        activities: Iterable[Activity],
        ground_truth: Optional[Dict[int, GroundTruthRequest]] = None,
    ) -> None:
        self._activities = list(activities)
        self._ground_truth = ground_truth

    @property
    def ground_truth(self) -> Optional[Dict[int, GroundTruthRequest]]:
        return self._ground_truth

    def activities(self) -> List[Activity]:
        return [activity.clone() for activity in self._activities]

    def describe(self) -> str:
        return f"{len(self._activities)} in-memory activities"


def as_source(obj, **kwargs) -> Source:
    """Adapt ``obj`` into a :class:`Source`.

    Accepts an existing source (returned unchanged), a run config
    (anything with a ``seed`` field and a matching ``run_*`` entry point:
    ``RubisConfig`` or ``ScenarioConfig``), a completed run result, or an
    iterable of activities.  Log files need a frontend description, so
    pass a :class:`LogSource` explicitly for those.
    """
    if isinstance(obj, Source):
        return obj
    # Local imports keep this module independent of the simulation layers
    # unless the adaptation actually needs them.
    from ..services.rubis.deployment import RubisConfig
    from ..topology.deployment import TopologyRunResult
    from ..topology.library import ScenarioConfig

    if isinstance(obj, (RubisConfig, ScenarioConfig)):
        return RunSource(config=obj, **kwargs)
    if isinstance(obj, TopologyRunResult):
        return RunSource(run=obj, **kwargs)
    if isinstance(obj, (list, tuple)) and (not obj or isinstance(obj[0], Activity)):
        return MemorySource(obj, **kwargs)
    raise TypeError(
        f"cannot build a pipeline source from {type(obj).__name__}; "
        "pass a RubisConfig/ScenarioConfig, a run result, an activity "
        "list, or a Source instance (LogSource for log files)"
    )
