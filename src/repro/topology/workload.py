"""Workload emulators: sessions, arrival processes and ramp stages.

The closed-loop emulator mirrors the RUBiS client emulator the paper
drives its experiments with: a configurable number of concurrent client
sessions, each alternating exponentially-distributed think times with
requests drawn from a workload mix, across three stages -- up ramp,
runtime session and down ramp.

Two further drivers open new workload shapes on the same topologies:
open-loop Poisson arrivals (request rate independent of response times,
the assumption behind most queueing analysis) and bursty on/off phases
(flash-crowd style load).  All three collect the same client-side
metrics the overhead figures use: completed requests, throughput and
mean response time over the runtime window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..sim.kernel import Environment, Event
from ..sim.network import Network
from ..sim.node import Node
from ..sim.randomness import RandomStreams
from .groundtruth import GroundTruthRecorder


@dataclass(frozen=True)
class WorkloadStages:
    """Durations of the three emulation stages, in seconds."""

    up_ramp: float = 2.0
    runtime: float = 10.0
    down_ramp: float = 1.0

    @property
    def new_request_deadline(self) -> float:
        """No new requests are issued after the runtime session ends."""
        return self.up_ramp + self.runtime

    @property
    def measurement_window(self) -> Tuple[float, float]:
        """The window throughput and response times are reported over."""
        return (self.up_ramp, self.up_ramp + self.runtime)


@dataclass
class CompletedRequest:
    """Client-side record of one completed request."""

    request_id: int
    request_type: str
    issued_at: float
    completed_at: float

    @property
    def response_time(self) -> float:
        return self.completed_at - self.issued_at


@dataclass
class ClientMetrics:
    """Client-perceived performance of one run."""

    completed: List[CompletedRequest] = field(default_factory=list)
    stages: WorkloadStages = field(default_factory=WorkloadStages)

    def record(self, completed: CompletedRequest) -> None:
        self.completed.append(completed)

    @property
    def completed_count(self) -> int:
        return len(self.completed)

    def in_window(self) -> List[CompletedRequest]:
        start, end = self.stages.measurement_window
        return [r for r in self.completed if start <= r.completed_at <= end]

    def throughput(self) -> float:
        """Completed requests per second during the runtime window."""
        start, end = self.stages.measurement_window
        duration = max(end - start, 1e-9)
        return len(self.in_window()) / duration

    def mean_response_time(self) -> float:
        """Mean response time (seconds) of requests completed in the window."""
        window = self.in_window()
        if not window:
            return 0.0
        return sum(r.response_time for r in window) / len(window)

    def response_time_percentile(self, percentile: float) -> float:
        window = sorted(r.response_time for r in self.in_window())
        if not window:
            return 0.0
        rank = min(len(window) - 1, max(0, int(round(percentile / 100.0 * (len(window) - 1)))))
        return window[rank]

    def per_type_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.completed:
            counts[record.request_type] = counts.get(record.request_type, 0) + 1
        return counts


class _EmulatorBase:
    """Shared plumbing: issue one request against the frontend, record it."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        client_nodes: Sequence[Node],
        frontend_ip: str,
        frontend_port: int,
        ground_truth: GroundTruthRecorder,
        rng: RandomStreams,
        mix: Sequence[Tuple[object, float]],
        stages: Optional[WorkloadStages] = None,
    ) -> None:
        if not client_nodes:
            raise ValueError("at least one client node is required")
        self.env = env
        self.network = network
        self.client_nodes = list(client_nodes)
        self.frontend_ip = frontend_ip
        self.frontend_port = frontend_port
        self.ground_truth = ground_truth
        self.rng = rng
        self.mix = list(mix)
        self.stages = stages or WorkloadStages()
        self.metrics = ClientMetrics(stages=self.stages)
        self.issued = 0

    def _issue_request(self, node: Node, request_type) -> Generator[Event, None, None]:
        request = self.ground_truth.new_request(request_type, issued_at=self.env.now)
        self.issued += 1
        connection = self.network.connect(node, self.frontend_ip, self.frontend_port)
        issued_at = self.env.now
        connection.client.send(
            None, request_type.request_bytes, request.request_id, request
        )
        reply = yield from connection.client.wait_data()
        del reply  # client nodes are untraced; nothing to log
        self.metrics.record(
            CompletedRequest(
                request_id=request.request_id,
                request_type=request_type.name,
                issued_at=issued_at,
                completed_at=self.env.now,
            )
        )


class ClientEmulator(_EmulatorBase):
    """Closed loop: ``num_clients`` concurrent think-time sessions."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        client_nodes: Sequence[Node],
        frontend_ip: str,
        frontend_port: int,
        ground_truth: GroundTruthRecorder,
        rng: RandomStreams,
        mix: Sequence[Tuple[object, float]],
        num_clients: int,
        think_time: float = 5.5,
        stages: Optional[WorkloadStages] = None,
    ) -> None:
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        super().__init__(
            env, network, client_nodes, frontend_ip, frontend_port,
            ground_truth, rng, mix, stages,
        )
        self.num_clients = num_clients
        self.think_time = think_time

    def start(self) -> None:
        """Launch every client session (staggered across the up ramp)."""
        for index in range(self.num_clients):
            start_delay = self.stages.up_ramp * index / max(1, self.num_clients)
            self.env.process(self._session(index, start_delay))

    # -- internals ---------------------------------------------------------------

    def _session(self, index: int, start_delay: float) -> Generator[Event, None, None]:
        yield self.env.timeout(start_delay)
        node = self.client_nodes[index % len(self.client_nodes)]
        deadline = self.stages.new_request_deadline
        stream = f"client.think.{index % 64}"
        while True:
            think = self.rng.exponential(stream, self.think_time)
            yield self.env.timeout(think)
            if self.env.now >= deadline:
                return
            request_type = self.rng.weighted_choice("client.mix", self.mix)
            yield from self._issue_request(node, request_type)
            if self.env.now >= deadline:
                return


class OpenLoopEmulator(_EmulatorBase):
    """Open loop: Poisson arrivals at ``arrival_rate`` requests/s.

    Every arrival runs as its own one-shot session, so slow responses do
    not throttle the offered load -- the defining property of open-loop
    traffic, and the regime where queues actually blow up.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        client_nodes: Sequence[Node],
        frontend_ip: str,
        frontend_port: int,
        ground_truth: GroundTruthRecorder,
        rng: RandomStreams,
        mix: Sequence[Tuple[object, float]],
        arrival_rate: float,
        stages: Optional[WorkloadStages] = None,
    ) -> None:
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        super().__init__(
            env, network, client_nodes, frontend_ip, frontend_port,
            ground_truth, rng, mix, stages,
        )
        self.arrival_rate = arrival_rate

    def start(self) -> None:
        self.env.process(self._arrivals())

    def _arrivals(self) -> Generator[Event, None, None]:
        deadline = self.stages.new_request_deadline
        mean_gap = 1.0 / self.arrival_rate
        index = 0
        while True:
            yield self.env.timeout(self.rng.exponential("client.arrivals", mean_gap))
            if self.env.now >= deadline:
                return
            request_type = self.rng.weighted_choice("client.mix", self.mix)
            node = self.client_nodes[index % len(self.client_nodes)]
            self.env.process(self._issue_request(node, request_type))
            index += 1


class BurstyEmulator(_EmulatorBase):
    """On/off phases: ``on_time`` s of Poisson arrivals, ``off_time`` s idle.

    Models flash-crowd style load; the off phases let engine state drain,
    which is what makes this shape interesting for the streaming
    correlator's watermark eviction.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        client_nodes: Sequence[Node],
        frontend_ip: str,
        frontend_port: int,
        ground_truth: GroundTruthRecorder,
        rng: RandomStreams,
        mix: Sequence[Tuple[object, float]],
        arrival_rate: float,
        on_time: float = 1.0,
        off_time: float = 1.0,
        stages: Optional[WorkloadStages] = None,
    ) -> None:
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if on_time <= 0:
            raise ValueError("on_time must be positive")
        super().__init__(
            env, network, client_nodes, frontend_ip, frontend_port,
            ground_truth, rng, mix, stages,
        )
        self.arrival_rate = arrival_rate
        self.on_time = on_time
        self.off_time = off_time
        self.bursts = 0

    def start(self) -> None:
        self.env.process(self._phases())

    def _phases(self) -> Generator[Event, None, None]:
        deadline = self.stages.new_request_deadline
        mean_gap = 1.0 / self.arrival_rate
        index = 0
        while self.env.now < deadline:
            self.bursts += 1
            phase_end = min(self.env.now + self.on_time, deadline)
            while True:
                gap = self.rng.exponential("client.burst", mean_gap)
                if self.env.now + gap >= phase_end:
                    yield self.env.timeout(max(0.0, phase_end - self.env.now))
                    break
                yield self.env.timeout(gap)
                request_type = self.rng.weighted_choice("client.mix", self.mix)
                node = self.client_nodes[index % len(self.client_nodes)]
                self.env.process(self._issue_request(node, request_type))
                index += 1
            if self.env.now >= deadline:
                return
            yield self.env.timeout(self.off_time)


def make_emulator(
    spec,
    env: Environment,
    network: Network,
    client_nodes: Sequence[Node],
    frontend_ip: str,
    frontend_port: int,
    ground_truth: GroundTruthRecorder,
    rng: RandomStreams,
    mix: Sequence[Tuple[object, float]],
):
    """Build the emulator matching a :class:`~repro.topology.spec.WorkloadSpec`."""
    common = dict(
        env=env,
        network=network,
        client_nodes=client_nodes,
        frontend_ip=frontend_ip,
        frontend_port=frontend_port,
        ground_truth=ground_truth,
        rng=rng,
        mix=mix,
        stages=spec.stages,
    )
    if spec.kind == "closed":
        return ClientEmulator(
            num_clients=spec.clients, think_time=spec.think_time, **common
        )
    if spec.kind == "open":
        return OpenLoopEmulator(arrival_rate=spec.arrival_rate, **common)
    if spec.kind == "bursty":
        return BurstyEmulator(
            arrival_rate=spec.arrival_rate,
            on_time=spec.on_time,
            off_time=spec.off_time,
            **common,
        )
    raise ValueError(f"unknown workload kind {spec.kind!r}")
