"""Topology-neutral cost models of service operations.

A :class:`RequestType` describes one interaction of an emulated service:
CPU demands at the entry tier and the worker tiers, the database queries
it issues, and the message sizes on every hop.  A :class:`QuerySpec`
describes one unit of backend work.  Historically these dataclasses were
defined by the RUBiS catalogue (:mod:`repro.services.rubis.requests`,
which still re-exports them); the generic tier engine reads them through
role-neutral aliases (``frontend_cpu``, ``worker_cpu``, ...) so any
scenario catalogue can reuse the same cost vocabulary.

The legacy field names (``httpd_cpu``, ``app_cpu``) are kept because the
RUBiS catalogue and its tests use them; they map onto the tier roles as

======================  =======================================
field                    role-neutral meaning
======================  =======================================
``httpd_cpu``            frontend CPU to parse/proxy a request
``httpd_reply_cpu``      frontend CPU to relay the reply
``app_cpu``              worker CPU for business logic
``app_per_query_cpu``    worker CPU per downstream reply
``app_reply_cpu``        worker CPU to render the reply
``app_request_bytes``    bytes of the frontend->worker (or
                         worker->worker chain) request
``app_reply_bytes``      bytes of the worker's reply upstream
======================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class QuerySpec:
    """One unit of backend work issued by a worker tier."""

    name: str
    #: CPU consumed on the backend node, seconds.
    db_cpu: float = 0.0012
    #: Dispatch latency before the connection thread picks the query up
    #: (protocol handling, connection scheduling); observed by the tracer
    #: as part of the worker->backend interaction.
    dispatch_delay: float = 0.040
    #: Engine-time of the query (buffer pool, row access) while holding a
    #: backend-engine slot; observed as backend-internal latency.
    engine_delay: float = 0.025
    #: Result-set size in bytes.
    reply_bytes: int = 8_000
    #: Query text size in bytes.
    query_bytes: int = 220
    #: Whether the query touches the ``items`` table (the Database_Lock
    #: fault of Section 5.4.2 injects extra lock wait on those).
    touches_items: bool = False


@dataclass(frozen=True)
class RequestType:
    """One service interaction (one URL of the emulated site)."""

    name: str
    #: CPU on the frontend tier to parse the request and proxy it.
    httpd_cpu: float = 0.0015
    #: CPU on a worker tier for business logic (excluding per-reply
    #: parsing, accounted separately).
    app_cpu: float = 0.005
    #: CPU on a worker tier per downstream reply processed.
    app_per_query_cpu: float = 0.00025
    #: CPU on a worker tier to render the reply.
    app_reply_cpu: float = 0.0005
    #: CPU on the frontend tier to relay the response to the client.
    httpd_reply_cpu: float = 0.0005
    #: Backend queries issued, in order.
    queries: Tuple[QuerySpec, ...] = ()
    #: Message sizes (bytes).
    request_bytes: int = 420
    app_request_bytes: int = 600
    app_reply_bytes: int = 18_000
    reply_bytes: int = 22_000
    #: True for read-write interactions.
    writes: bool = False

    # -- role-neutral aliases (what the generic tier engine reads) ---------

    @property
    def frontend_cpu(self) -> float:
        return self.httpd_cpu

    @property
    def frontend_reply_cpu(self) -> float:
        return self.httpd_reply_cpu

    @property
    def worker_cpu(self) -> float:
        return self.app_cpu

    @property
    def worker_per_reply_cpu(self) -> float:
        return self.app_per_query_cpu

    @property
    def worker_reply_cpu(self) -> float:
        return self.app_reply_cpu

    @property
    def worker_request_bytes(self) -> int:
        return self.app_request_bytes

    @property
    def worker_reply_bytes(self) -> int:
        return self.app_reply_bytes

    @property
    def query_count(self) -> int:
        return len(self.queries)

    def total_db_engine_time(self) -> float:
        return sum(q.engine_delay + q.db_cpu for q in self.queries)
