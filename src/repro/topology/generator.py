"""Seeded random scenario generator: valid topologies from a coin flip.

Each of PRs 3-5 found a real correlation bug that only a *new* topology
shape exposed (the fan-out RECEIVE splice, the delivery-order-dependent
pattern signature, the sampled-out context-map leak).  Hand-writing one
library scenario per shape does not scale to the space of shapes, so
this module turns scenarios into data drawn from a seeded RNG: given an
integer seed, :func:`generate_scenario` emits one fully validated
:class:`~repro.topology.library.Scenario` -- a microservice mesh of
``min_tiers``..``max_tiers`` tiers mixing sequential, chain, fan-out and
cache-aside call patterns (with optional replica groups behind the
round-robin LB), a generated operation catalogue, and a closed / open /
bursty workload shaped as steady load, a diurnal ramp, a flash crowd or
a retry storm.

Design rules:

* **Validity by construction.**  Tiers are emitted back to front
  (backends, then workers, then the frontend), downstream references
  only name earlier tiers, and role contracts (frontend -> worker,
  chain -> worker, other worker patterns -> backends, cache-aside ->
  exactly two backends) are honoured while drawing -- then the finished
  :class:`~repro.topology.spec.TopologySpec` runs its own eager
  validation anyway, so a generator bug fails loudly, not deep in a run.
* **Determinism.**  One ``random.Random(seed)`` stream, drawn in a fixed
  order, no ambient state: the same seed produces a byte-identical
  scenario (``dump_scenario`` output compares equal), which is what lets
  the fuzz harness report *seeds* as repros.
* **Bounded cost.**  Sizes are drawn with a strong bias toward small
  meshes (the exponent in ``_draw_size``) so a fuzz run spends its
  budget on many cheap shapes and only occasionally on a deep one; the
  :class:`GeneratorLimits` envelope is the shrink ladder's knob.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from .library import Scenario
from .operations import QuerySpec, RequestType
from .spec import TierSpec, TopologyError, TopologySpec, WorkloadSpec
from .workload import WorkloadStages

#: Load shapes layered on the three workload kinds: ``steady`` keeps the
#: drawn parameters, ``diurnal`` stretches the up/down ramps, a
#: ``flash_crowd`` is a short, violent bursty on-phase and a
#: ``retry_storm`` drives arrivals well past the mesh's service rate
#: (closed-loop: near-zero think time), the shapes ROADMAP item 4 names.
WORKLOAD_SHAPES: Tuple[str, ...] = ("steady", "diurnal", "flash_crowd", "retry_storm")


@dataclass(frozen=True)
class GeneratorLimits:
    """Size envelope of generated scenarios.

    The fuzz harness shrinks a failing seed by re-generating it under
    progressively smaller envelopes, so every field here doubles as a
    shrink dimension.  ``min_tiers`` may go as low as 3 (backend,
    worker, frontend -- the smallest mesh the role contracts allow).
    """

    min_tiers: int = 5
    max_tiers: int = 60
    max_replicas: int = 3
    max_clients: int = 24
    max_arrival_rate: float = 30.0
    max_request_types: int = 3
    max_queries: int = 4
    runtime: float = 1.5
    ramp: float = 0.25

    def validate(self) -> None:
        if self.min_tiers < 3:
            raise TopologyError("min_tiers must be >= 3 (backend, worker, frontend)")
        if self.max_tiers < self.min_tiers:
            raise TopologyError("max_tiers must be >= min_tiers")
        if self.max_replicas < 1:
            raise TopologyError("max_replicas must be >= 1")
        if self.max_clients < 1 or self.max_arrival_rate <= 0:
            raise TopologyError("workload limits must be positive")
        if self.max_request_types < 1 or self.max_queries < 1:
            raise TopologyError("catalogue limits must be positive")
        if self.runtime <= 0 or self.ramp < 0:
            raise TopologyError("runtime must be positive and ramp non-negative")

    def with_overrides(self, **kwargs) -> "GeneratorLimits":
        return replace(self, **kwargs)


#: The default envelope (the CLI's and the nightly fuzz job's).
DEFAULT_LIMITS = GeneratorLimits()


def scenario_name(seed: int) -> str:
    """The canonical name of the scenario generated from ``seed``."""
    return f"gen_{seed:08d}"


def entity_exclusive_step(spacing: float, queries: int, contexts: int = 3) -> float:
    """Largest intra-request step that keeps execution entities exclusive.

    The paper's model (and any tracer's information-theoretic limit): one
    execution entity serves one request at a time -- two requests
    interleaved in a single thread are indistinguishable from their logs.
    Synthetic traces that rotate requests across ``contexts`` worker sets
    must therefore finish a request (``6 + 4 * queries`` causal steps of
    a three-tier request) before the same worker's next request begins,
    ``contexts * spacing`` seconds later.  This is the validity rule the
    generator and the property-based tests share
    (``tests/test_properties.py`` used to hand-roll it).
    """
    duration_steps = 6 + 4 * queries
    return min(0.001, contexts * spacing / duration_steps * 0.9)


# ---------------------------------------------------------------------------
# drawing helpers
# ---------------------------------------------------------------------------


def _alpha(index: int) -> str:
    """Letter suffix for tier names: a..z, aa, ab, ...

    All-letter names keep expanded replica hostnames collision-free by
    construction: replicas append a *digit* to the tier name, so a
    replica of ``svcb`` (``svcb1``) can never equal another tier's name
    (numeric tier suffixes made ``svc1`` x3 collide with a tier
    ``svc11`` -- the validation gap fuzz seed 24 found).
    """
    letters = ""
    index += 1
    while index:
        index, rem = divmod(index - 1, 26)
        letters = chr(ord("a") + rem) + letters
    return letters


def _draw_size(rng: random.Random, low: int, high: int, bias: float = 2.5) -> int:
    """An integer in [low, high], strongly biased toward ``low``."""
    if high <= low:
        return low
    return low + int((high - low + 1) * (rng.random() ** bias) * 0.999999)


def _tier_address(index: int) -> Tuple[str, int]:
    """A unique (ip, port) per tier index, with headroom on the last
    octet for replica addressing (``replica_ip`` adds the replica index
    to the last octet)."""
    return f"10.{40 + index // 200}.{index % 200}.1", 7000 + index


def _request_type(rng: random.Random, index: int, limits: GeneratorLimits) -> RequestType:
    queries = tuple(
        QuerySpec(
            name=f"q{index}_{j}",
            engine_delay=round(rng.uniform(0.004, 0.024), 6),
            reply_bytes=rng.randrange(400, 12_000, 100),
            touches_items=rng.random() < 0.3,
        )
        for j in range(rng.randint(1, limits.max_queries))
    )
    return RequestType(
        name=f"Gen{index}",
        app_cpu=round(rng.uniform(0.001, 0.006), 6),
        queries=queries,
        reply_bytes=rng.randrange(2_000, 24_000, 500),
        app_reply_bytes=rng.randrange(1_500, 18_000, 500),
        writes=rng.random() < 0.2,
    )


def _workload(rng: random.Random, limits: GeneratorLimits) -> Tuple[WorkloadSpec, str]:
    kind = rng.choice(("closed", "open", "bursty"))
    shape = rng.choice(WORKLOAD_SHAPES)
    ramp = limits.ramp * (3.0 if shape == "diurnal" else 1.0)
    stages = WorkloadStages(up_ramp=ramp, runtime=limits.runtime, down_ramp=limits.ramp)
    if kind == "closed":
        think = 0.05 if shape == "retry_storm" else round(rng.uniform(0.4, 2.5), 3)
        spec = WorkloadSpec(
            kind="closed",
            clients=_draw_size(rng, 4, limits.max_clients, bias=1.5),
            think_time=think,
            stages=stages,
        )
    elif kind == "open":
        rate = round(rng.uniform(4.0, limits.max_arrival_rate), 3)
        if shape == "retry_storm":
            rate = round(min(rate * 2.5, limits.max_arrival_rate * 2.5), 3)
        spec = WorkloadSpec(kind="open", arrival_rate=rate, stages=stages)
    else:
        rate = round(rng.uniform(6.0, limits.max_arrival_rate), 3)
        on_time = round(rng.uniform(0.2, 0.8), 3)
        off_time = round(rng.uniform(0.1, 0.8), 3)
        if shape == "flash_crowd":
            rate = round(min(rate * 2.0, limits.max_arrival_rate * 2.0), 3)
            on_time, off_time = 0.2, round(rng.uniform(0.4, 1.0), 3)
        spec = WorkloadSpec(
            kind="bursty",
            arrival_rate=rate,
            on_time=on_time,
            off_time=off_time,
            stages=stages,
        )
    return spec, shape


# ---------------------------------------------------------------------------
# the generator
# ---------------------------------------------------------------------------


def generate_scenario(seed: int, limits: GeneratorLimits = DEFAULT_LIMITS) -> Scenario:
    """Generate one validated scenario from an integer seed.

    The returned :class:`~repro.topology.library.Scenario` is a pure
    function of ``(seed, limits)``; run it with
    :class:`~repro.topology.deployment.TopologyDeployment` (the fuzz
    harness's path) or register it with
    :func:`~repro.topology.scenario_io.register_scenario` to use the
    named ``run_scenario`` entry point.
    """
    limits.validate()
    rng = random.Random(seed)

    total = _draw_size(rng, limits.min_tiers, limits.max_tiers)
    n_backends = _draw_size(rng, 1, max(1, (total - 2) // 2), bias=1.8)
    n_workers = total - 1 - n_backends

    tiers: List[TierSpec] = []
    backend_names: List[str] = []
    index = 0
    for i in range(n_backends):
        ip, port = _tier_address(index)
        index += 1
        name = f"be{_alpha(i)}"
        backend_names.append(name)
        tiers.append(
            TierSpec(
                name=name,
                ip=ip,
                port=port,
                program=f"{name}d",
                role="backend",
                workers=_draw_size(rng, 4, 32, bias=1.2),
                service_scale=rng.choice((1.0, 1.0, 1.0, 0.5, 0.05)),
            )
        )

    worker_names: List[str] = []
    fault_worker = rng.randrange(n_workers)
    for i in range(n_workers):
        ip, port = _tier_address(index)
        index += 1
        name = f"svc{_alpha(i)}"
        roll = rng.random()
        if worker_names and roll < 0.45:
            pattern = "chain"
            downstream: Tuple[str, ...] = (rng.choice(worker_names),)
        elif len(backend_names) >= 2 and roll < 0.60:
            pattern = "cache_aside"
            downstream = tuple(rng.sample(backend_names, 2))
        elif len(backend_names) >= 2 and roll < 0.80:
            pattern = "fanout"
            downstream = tuple(
                rng.sample(backend_names, rng.randint(2, min(4, len(backend_names))))
            )
        else:
            pattern = "sequential"
            downstream = tuple(
                rng.sample(backend_names, rng.randint(1, min(3, len(backend_names))))
            )
        tiers.append(
            TierSpec(
                name=name,
                ip=ip,
                port=port,
                program=f"{name}d",
                role="worker",
                workers=_draw_size(rng, 8, 48, bias=1.2),
                replicas=(
                    rng.randint(2, limits.max_replicas)
                    if limits.max_replicas > 1 and rng.random() < 0.2
                    else 1
                ),
                downstream=downstream,
                pattern=pattern,
                cache_hit_ratio=(
                    round(rng.uniform(0.5, 0.95), 3) if pattern == "cache_aside" else 0.9
                ),
                cpu_scale=rng.choice((1.0, 1.0, 0.6, 0.8, 1.2)),
                delay_fault_target=i == fault_worker,
            )
        )
        worker_names.append(name)

    front_ip, _ = _tier_address(index)
    tiers.append(
        TierSpec(
            name="front",
            ip=front_ip,
            port=80,
            program="frontd",
            role="frontend",
            workers=_draw_size(rng, 32, 160, bias=1.2),
            downstream=(worker_names[-1],),
        )
    )

    noise_backend = rng.choice(backend_names)
    topology = TopologySpec(
        name=scenario_name(seed),
        tiers=tuple(tiers),
        frontend="front",
        client_ips=tuple(f"10.9.0.{k + 1}" for k in range(rng.randint(1, 3))),
        workstation_ip="10.9.1.1",
        ssh_noise=(
            (("front", "sshd"), (noise_backend, "rlogind"))
            if rng.random() < 0.5
            else ()
        ),
        db_noise_tier=noise_backend if rng.random() < 0.4 else None,
        network_fault_tier=rng.choice(worker_names) if rng.random() < 0.4 else None,
    )

    mix = tuple(
        (_request_type(rng, i + 1, limits), round(rng.uniform(0.1, 1.0), 3))
        for i in range(rng.randint(1, limits.max_request_types))
    )
    workload, shape = _workload(rng, limits)

    patterns = sorted({tier.pattern for tier in tiers if tier.role == "worker"})
    return Scenario(
        name=scenario_name(seed),
        description=(
            f"generated mesh (seed {seed}): {len(tiers)} tiers, "
            f"patterns {'/'.join(patterns)}, {workload.kind} workload ({shape})"
        ),
        topology=topology,
        workload=workload,
        mix=mix,
    )


def scenario_shape(scenario: Scenario) -> Dict[str, object]:
    """Coverage fingerprint of one scenario (the fuzz figure's rows)."""
    workers = [tier for tier in scenario.topology.tiers if tier.role == "worker"]
    return {
        "tiers": len(scenario.topology.tiers),
        "patterns": sorted({tier.pattern for tier in workers}),
        "workload": scenario.workload.kind,
        "replicated": any(tier.replicas > 1 for tier in scenario.topology.tiers),
        "request_types": len(scenario.mix),
    }


def generate_many(
    seeds: Sequence[int], limits: GeneratorLimits = DEFAULT_LIMITS
) -> List[Scenario]:
    """Generate one scenario per seed (convenience for tests/figures)."""
    return [generate_scenario(seed, limits) for seed in seeds]
