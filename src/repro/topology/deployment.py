"""Build, run and trace one experiment on any declarative topology.

:class:`TopologyDeployment` is the generic counterpart of the original
hand-written RUBiS harness: it instantiates the simulated cluster a
:class:`~repro.topology.spec.TopologySpec` describes (nodes with skewed
clocks, network fabric, TCP_TRACE probes, tier engines, workload
emulator, noise generators), runs it to completion and gathers a
:class:`TopologyRunResult` -- per-node logs, ground truth and client
metrics.  ``result.trace()`` then runs PreciseTracer over the logs with a
:class:`~repro.core.log_format.FrontendSpec` derived from the topology,
so the batch, streaming and sharded pipelines all work unchanged on any
scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.accuracy import GroundTruthRequest
from ..core.activity import Activity
from ..core.log_format import ActivityClassifier, FrontendSpec, RawRecord
from ..core.tracer import PreciseTracer, TraceResult
from ..services.faults import FaultConfig
from ..services.noise import MysqlClientNoiseGenerator, NoiseConfig, SshNoiseGenerator
from ..sim.clock import NodeClock, spread_skews
from ..sim.kernel import Environment
from ..sim.network import Network, NetworkFabric, SegmentationPolicy
from ..sim.node import Node
from ..sim.randomness import RandomStreams
from ..sim.tcp_trace import DEFAULT_PROBE_OVERHEAD, TraceCollector
from .engine import ROLE_ENGINES, ReplicaRouter, TierGroup
from .groundtruth import GroundTruthRecorder
from .spec import TopologySpec, WorkloadSpec
from .workload import ClientMetrics, make_emulator


@dataclass
class RunSettings:
    """Environment knobs shared by every scenario (probes, clocks, faults)."""

    tracing_enabled: bool = True
    probe_overhead: float = DEFAULT_PROBE_OVERHEAD
    clock_skew: float = 0.001
    seed: int = 1
    faults: FaultConfig = field(default_factory=FaultConfig)
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    segmentation: SegmentationPolicy = field(default_factory=SegmentationPolicy)
    network_latency: float = 200e-6
    network_bandwidth_mbps: float = 100.0
    cpus_per_node: int = 2


def settings_from(config) -> RunSettings:
    """Build :class:`RunSettings` from any config carrying its fields.

    ``RubisConfig`` and ``ScenarioConfig`` both embed the environment
    knobs under the same names; enumerating the fields here keeps the
    mapping in one place (a new ``RunSettings`` field is forwarded from
    both configs automatically).
    """
    from dataclasses import fields as dataclass_fields

    return RunSettings(
        **{f.name: getattr(config, f.name) for f in dataclass_fields(RunSettings)}
    )


@dataclass
class TopologyRunResult:
    """Everything produced by one experiment run, on any topology."""

    config: object
    topology: TopologySpec
    workload: WorkloadSpec
    metrics: ClientMetrics
    ground_truth: Dict[int, GroundTruthRequest]
    records_by_node: Dict[str, List[RawRecord]]
    total_activities: int
    simulated_duration: float
    requests_issued: int
    requests_served_frontend: int
    cpu_utilisation: Dict[str, float]
    noise_activities: int = 0
    #: the run's maximum node clock skew (from RunSettings; exposed here
    #: because ``config`` is an opaque object that need not carry it)
    clock_skew: float = 0.001

    # -- tracing ------------------------------------------------------------

    def frontend_spec(self) -> FrontendSpec:
        """Network-level description of the service entry point."""
        frontend = self.topology.frontend_tier()
        return FrontendSpec(
            ip=frontend.ip,
            port=frontend.port,
            internal_ips=self.topology.internal_ips(),
        )

    def make_tracer(self, window: float = 0.010) -> PreciseTracer:
        """A PreciseTracer configured for this deployment.

        ``sshd``/``rlogind``-style noise is filtered by program name,
        exactly as in Section 5.3.3; external database-client noise
        cannot be filtered this way and is left to the ranker's
        ``is_noise`` test.
        """
        return PreciseTracer(
            frontends=[self.frontend_spec()],
            window=window,
            ignore_programs=set(self.topology.ignore_programs),
        )

    def all_records(self) -> List[RawRecord]:
        records: List[RawRecord] = []
        for node_records in self.records_by_node.values():
            records.extend(node_records)
        return records

    def activities(self, window_classifier: Optional[ActivityClassifier] = None) -> List[Activity]:
        """Typed activities of the whole trace (classified, noise-filtered)."""
        classifier = window_classifier or ActivityClassifier(
            frontends=[self.frontend_spec()],
            ignore_programs=set(self.topology.ignore_programs),
        )
        return classifier.classify_all(self.all_records())

    def trace(self, window: float = 0.010) -> TraceResult:
        """Run PreciseTracer over the gathered logs."""
        return self.make_tracer(window=window).trace_records(self.all_records())

    # -- metrics shortcuts -----------------------------------------------------

    @property
    def throughput(self) -> float:
        return self.metrics.throughput()

    @property
    def mean_response_time(self) -> float:
        return self.metrics.mean_response_time()

    @property
    def completed_requests(self) -> int:
        return self.metrics.completed_count


class TopologyDeployment:
    """Builds the simulated cluster for one topology + workload + catalogue."""

    def __init__(
        self,
        topology: TopologySpec,
        workload: WorkloadSpec,
        mix: Sequence[Tuple[object, float]],
        settings: Optional[RunSettings] = None,
        config: object = None,
    ) -> None:
        self.topology = topology
        self.workload = workload
        self.mix = list(mix)
        self.settings = settings or RunSettings()
        self.config = config if config is not None else topology.name
        settings = self.settings

        self.env = Environment()
        self.rng = RandomStreams(seed=settings.seed)
        self.ground_truth = GroundTruthRecorder()

        # Front-to-back hostname order drives skew assignment (the
        # frontend holds the reference clock), probe attachment and the
        # reported utilisation -- matching the original RUBiS harness.
        hostnames = topology.service_hostnames()
        skews = spread_skews(hostnames, settings.clock_skew)
        self.service_nodes: Dict[str, Node] = {}
        node_of_tier_replica: Dict[Tuple[str, int], Node] = {}
        for tier in topology.front_to_back():
            for index, (host, ip, _port) in enumerate(tier.replica_addresses()):
                node = Node(
                    self.env, host, ip, cpus=settings.cpus_per_node, clock=skews[host]
                )
                self.service_nodes[host] = node
                node_of_tier_replica[(tier.name, index)] = node
        self.client_nodes = [
            Node(self.env, f"client{i + 1}", ip, cpus=2, clock=NodeClock())
            for i, ip in enumerate(topology.client_ips)
        ]
        self.workstation = Node(self.env, "workstation", topology.workstation_ip, cpus=2)

        fabric = NetworkFabric(
            self.env,
            base_latency=settings.network_latency,
            bandwidth_bytes_per_s=settings.network_bandwidth_mbps * 1e6 / 8.0,
        )
        if settings.faults.ejb_network is not None:
            fault_tier = topology.network_fault_tier or self._default_fault_tier()
            if fault_tier is not None:
                for host, _ip, _port in topology.tier(fault_tier).replica_addresses():
                    settings.faults.ejb_network.apply(fabric, host)
        self.network = Network(self.env, fabric=fabric, segmentation=settings.segmentation)

        self.collector = TraceCollector()
        if settings.tracing_enabled:
            for host in hostnames:
                self.collector.attach(
                    self.service_nodes[host],
                    overhead_per_activity=settings.probe_overhead,
                )

        # Tier engines, in construction order (back to front): every
        # downstream tier is registered with the router before an
        # upstream tier could connect to it.
        self.router = ReplicaRouter()
        self.tier_groups: Dict[str, TierGroup] = {}
        for tier in topology.tiers:
            group = TierGroup(tier)
            addresses = []
            for index, (_host, ip, port) in enumerate(tier.replica_addresses()):
                engine = ROLE_ENGINES[tier.role](
                    self.env,
                    node_of_tier_replica[(tier.name, index)],
                    self.network,
                    self.ground_truth,
                    self.rng,
                    tier,
                    self.router,
                    settings.faults,
                )
                group.replicas.append(engine)
                addresses.append((ip, port))
            self.router.register(tier.name, addresses)
            self.tier_groups[tier.name] = group

        frontend = topology.frontend_tier()
        self.emulator = make_emulator(
            workload,
            env=self.env,
            network=self.network,
            client_nodes=self.client_nodes,
            frontend_ip=frontend.ip,
            frontend_port=frontend.port,
            ground_truth=self.ground_truth,
            rng=self.rng,
            mix=self.mix,
        )

        stop_at = workload.stages.new_request_deadline
        self.noise_generators = []
        if settings.noise.enabled:
            for tier_name, program in topology.ssh_noise:
                self.noise_generators.append(
                    SshNoiseGenerator(
                        self.env,
                        self.network,
                        traced_node=self.tier_groups[tier_name].primary.node,
                        external_node=self.workstation,
                        config=settings.noise,
                        rng=self.rng,
                        program=program,
                        stop_at=stop_at,
                    )
                )
            if topology.db_noise_tier is not None:
                noise_tier = topology.tier(topology.db_noise_tier)
                self.noise_generators.append(
                    MysqlClientNoiseGenerator(
                        self.env,
                        self.network,
                        external_node=self.workstation,
                        db_ip=noise_tier.ip,
                        db_port=noise_tier.port,
                        config=settings.noise,
                        rng=self.rng,
                        stop_at=stop_at,
                    )
                )

    def _default_fault_tier(self) -> Optional[str]:
        """The network fault falls back to the first worker tier, front to back."""
        for tier in self.topology.front_to_back():
            if tier.role == "worker":
                return tier.name
        return None

    def tier(self, name: str) -> TierGroup:
        return self.tier_groups[name]

    def run(self) -> TopologyRunResult:
        """Run the emulation to completion and gather results."""
        self.emulator.start()
        for generator in self.noise_generators:
            generator.start()
        self.env.run()

        elapsed = self.env.now
        cpu_utilisation = {
            host: self.service_nodes[host].cpu_utilisation(elapsed)
            for host in self.topology.service_hostnames()
        }
        noise_activities = sum(
            getattr(generator, "exchanges", 0) * 2 + getattr(generator, "queries_issued", 0) * 2
            for generator in self.noise_generators
        )
        frontend_group = self.tier_groups[self.topology.frontend]
        return TopologyRunResult(
            config=self.config,
            topology=self.topology,
            workload=self.workload,
            metrics=self.emulator.metrics,
            ground_truth=self.ground_truth.completed(),
            records_by_node=self.collector.records_by_node(),
            total_activities=self.collector.total_records(),
            simulated_duration=elapsed,
            requests_issued=self.emulator.issued,
            requests_served_frontend=frontend_group.requests_served,
            cpu_utilisation=cpu_utilisation,
            noise_activities=noise_activities,
            clock_skew=self.settings.clock_skew,
        )
