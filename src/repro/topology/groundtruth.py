"""Ground-truth recording for the accuracy evaluation (topology-generic).

Section 5.2 of the paper modifies RUBiS to tag every request with a
globally-unique id and log, per tier, the servicing process/thread and the
start/end times of the request.  The simulated services do the same,
whatever the topology: the workload emulator obtains a
:class:`TracedRequest` from the :class:`GroundTruthRecorder` (which
assigns the id) and every tier engine notes the execution entity that
serviced it.

None of this information is visible to the tracer; the ``#rid=``
annotations in the trace are used exclusively by
:func:`repro.core.accuracy.path_accuracy`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.accuracy import GroundTruthRequest
from ..sim.node import ExecutionEntity


@dataclass
class TracedRequest:
    """One in-flight request of the emulated workload (any scenario)."""

    request_id: int
    request_type: object  # a RequestType-like operation from the catalogue
    issued_at: float = 0.0

    @property
    def name(self) -> str:
        return self.request_type.name


class GroundTruthRecorder:
    """Collects the oracle records the accuracy evaluation compares against."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._records: Dict[int, GroundTruthRequest] = {}

    def new_request(self, request_type, issued_at: float = 0.0) -> TracedRequest:
        """Create a request with a fresh globally-unique id."""
        request = TracedRequest(
            request_id=next(self._ids), request_type=request_type, issued_at=issued_at
        )
        self._records[request.request_id] = GroundTruthRequest(
            request_id=request.request_id,
            start_time=float("nan"),
            end_time=float("nan"),
            request_type=request_type.name,
        )
        return request

    # -- notes from the tiers ------------------------------------------------

    def note_context(self, request: Optional[TracedRequest], entity: ExecutionEntity) -> None:
        """Record that ``entity`` serviced ``request`` (no-op for noise)."""
        if request is None:
            return
        record = self._records.get(request.request_id)
        if record is not None:
            record.contexts.add(entity.context().as_tuple())

    def note_start(self, request: Optional[TracedRequest], local_time: float) -> None:
        """Record the frontend-observed start of servicing."""
        if request is None:
            return
        record = self._records.get(request.request_id)
        if record is not None:
            record.start_time = local_time

    def note_end(self, request: Optional[TracedRequest], local_time: float) -> None:
        """Record the frontend-observed end of servicing."""
        if request is None:
            return
        record = self._records.get(request.request_id)
        if record is not None:
            record.end_time = local_time

    # -- export --------------------------------------------------------------

    def completed(self) -> Dict[int, GroundTruthRequest]:
        """Only requests that were fully serviced ("all logged requests")."""
        return {
            request_id: record
            for request_id, record in self._records.items()
            if record.start_time == record.start_time  # not NaN
            and record.end_time == record.end_time
        }

    def all_records(self) -> Dict[int, GroundTruthRequest]:
        return dict(self._records)

    def __len__(self) -> int:
        return len(self._records)
