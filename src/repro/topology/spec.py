"""Declarative specifications of a deployment topology and its workload.

A :class:`TopologySpec` is the network-level *and* behaviour-level
description of one emulated multi-tier service: which tiers exist, on
which addresses they listen, how their worker pools are organised
(prefork processes, a bounded thread pool, per-connection threads with
engine slots) and how each tier calls its downstream tiers (sequential
round trips, chain forwarding, fan-out/join, cache-aside with a hit
ratio, optionally replicated behind a round-robin load balancer).

A :class:`WorkloadSpec` describes how emulated clients drive the frontend
tier: closed-loop think-time sessions (the RUBiS client emulator of the
paper), open-loop Poisson arrivals or bursty on/off phases.

Both specs validate eagerly at construction: a typo'd tier reference or
workload kind raises :class:`TopologyError` (a ``ValueError``) listing the
valid names, instead of a ``KeyError`` deep inside a simulation run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from .workload import WorkloadStages

#: Valid tier roles, in the vocabulary of the generic engine:
#: ``frontend`` -- prefork worker processes proxying to one downstream
#: tier (the httpd pattern); ``worker`` -- one process with a bounded
#: thread pool issuing downstream calls (the JBoss pattern); ``backend``
#: -- per-connection threads contending for engine slots (the mysqld
#: pattern).
TIER_ROLES: Tuple[str, ...] = ("frontend", "worker", "backend")

#: Valid downstream call patterns of a worker tier.
CALL_PATTERNS: Tuple[str, ...] = ("sequential", "chain", "fanout", "cache_aside")

#: Valid workload kinds.
WORKLOAD_KINDS: Tuple[str, ...] = ("closed", "open", "bursty")


class TopologyError(ValueError):
    """Raised when a topology or workload spec is inconsistent."""


def replica_hostname(base: str, index: int, replicas: int) -> str:
    """Hostname of one replica (the plain name when unreplicated)."""
    return base if replicas == 1 else f"{base}{index + 1}"


def replica_ip(base_ip: str, index: int) -> str:
    """IP of one replica: the base address plus ``index`` on the last octet."""
    if index == 0:
        return base_ip
    prefix, _, last = base_ip.rpartition(".")
    return f"{prefix}.{int(last) + index}"


@dataclass(frozen=True)
class TierSpec:
    """One tier of the emulated service.

    ``workers`` is the tier's concurrency bound, interpreted per role:
    prefork worker processes for a frontend, pool threads for a worker,
    database engine slots for a backend.  ``replicas > 1`` deploys the
    tier as that many identical nodes behind a round-robin load balancer
    (upstream tiers spread their persistent connections across replicas).

    ``stream_prefix`` namespaces the tier's random service-time streams;
    distinct prefixes keep tiers statistically independent under one
    experiment seed.  ``cpu_scale`` multiplies the catalogue's CPU
    demands (chains of otherwise identical tiers can be heterogeneous);
    ``service_scale`` multiplies a backend's query demands (a cache tier
    is a backend with ``service_scale << 1``).
    """

    name: str
    ip: str
    port: int
    program: str
    role: str
    stream_prefix: str = ""
    workers: int = 40
    replicas: int = 1
    downstream: Tuple[str, ...] = ()
    pattern: str = "sequential"
    cache_hit_ratio: float = 0.9
    cpu_scale: float = 1.0
    service_scale: float = 1.0
    #: the EJB_Delay-style fault (FaultConfig.ejb_delay) injects here
    delay_fault_target: bool = False

    @property
    def streams(self) -> str:
        """The RNG stream prefix (defaults to the program name)."""
        return self.stream_prefix or self.program

    def replica_addresses(self) -> List[Tuple[str, str, int]]:
        """(hostname, ip, port) of every replica of this tier."""
        return [
            (replica_hostname(self.name, i, self.replicas), replica_ip(self.ip, i), self.port)
            for i in range(self.replicas)
        ]

    def validate(self) -> None:
        if self.role not in TIER_ROLES:
            raise TopologyError(
                f"tier {self.name!r}: unknown role {self.role!r}; "
                f"valid roles: {', '.join(TIER_ROLES)}"
            )
        if self.pattern not in CALL_PATTERNS:
            raise TopologyError(
                f"tier {self.name!r}: unknown call pattern {self.pattern!r}; "
                f"valid patterns: {', '.join(CALL_PATTERNS)}"
            )
        if self.workers <= 0:
            raise TopologyError(f"tier {self.name!r}: workers must be positive")
        if self.replicas <= 0:
            raise TopologyError(f"tier {self.name!r}: replicas must be positive")
        if not 0.0 <= self.cache_hit_ratio <= 1.0:
            raise TopologyError(
                f"tier {self.name!r}: cache_hit_ratio must be in [0, 1]"
            )
        if self.cpu_scale < 0 or self.service_scale < 0:
            raise TopologyError(f"tier {self.name!r}: scales must be non-negative")
        if self.role == "frontend" and len(self.downstream) != 1:
            raise TopologyError(
                f"frontend tier {self.name!r} must have exactly one downstream tier"
            )
        if self.role == "worker" and not self.downstream:
            raise TopologyError(f"worker tier {self.name!r} needs a downstream tier")
        if self.role == "backend" and self.downstream:
            raise TopologyError(f"backend tier {self.name!r} cannot have downstreams")
        if self.pattern == "cache_aside" and len(self.downstream) != 2:
            raise TopologyError(
                f"tier {self.name!r}: cache_aside needs exactly two downstream "
                "tiers (cache, store)"
            )
        if self.pattern == "chain" and len(self.downstream) != 1:
            raise TopologyError(
                f"tier {self.name!r}: chain forwards to exactly one downstream tier"
            )


@dataclass(frozen=True)
class TopologySpec:
    """The whole deployment: tiers, entry point, clients and noise wiring.

    ``tiers`` are listed in **construction order**: a tier may only call
    tiers that appear *before* it in the tuple, so topologies are built
    back to front (the RUBiS spec lists database, application server,
    web server -- in that order).  The probe attach order, the clock-skew
    assignment and the reported per-node utilisation all use the reverse
    (front-to-back) order, which is what the original hand-written
    deployment did.
    """

    name: str
    tiers: Tuple[TierSpec, ...]
    frontend: str
    client_ips: Tuple[str, ...] = ("10.0.1.1", "10.0.1.2", "10.0.1.3")
    workstation_ip: str = "10.0.2.1"
    #: (tier name, program name) pairs that receive interactive ssh-style
    #: noise sessions from the workstation (attribute-filterable noise).
    ssh_noise: Tuple[Tuple[str, str], ...] = ()
    #: tier receiving external mysql-client-style noise queries (the
    #: non-filterable noise of Section 5.3.3); ``None`` disables it.
    db_noise_tier: Optional[str] = None
    #: the EJB_Network-style fault degrades this tier's node NIC
    network_fault_tier: Optional[str] = None
    #: program names the tracer's attribute filter drops
    ignore_programs: FrozenSet[str] = frozenset({"sshd", "rlogind"})

    def __post_init__(self) -> None:
        self.validate()

    # -- lookups -------------------------------------------------------------

    def tier(self, name: str) -> TierSpec:
        for tier in self.tiers:
            if tier.name == name:
                return tier
        raise TopologyError(
            f"unknown tier {name!r}; tiers: {', '.join(self.tier_names())}"
        )

    def tier_names(self) -> List[str]:
        return [tier.name for tier in self.tiers]

    def frontend_tier(self) -> TierSpec:
        return self.tier(self.frontend)

    def front_to_back(self) -> Tuple[TierSpec, ...]:
        """Tiers in front-to-back order (reverse of construction order)."""
        return tuple(reversed(self.tiers))

    def service_hostnames(self) -> List[str]:
        """Every service hostname, front to back, replicas expanded."""
        names: List[str] = []
        for tier in self.front_to_back():
            names.extend(host for host, _ip, _port in tier.replica_addresses())
        return names

    def internal_ips(self) -> FrozenSet[str]:
        """Addresses of the data centre's own nodes (replicas included)."""
        ips = set()
        for tier in self.tiers:
            ips.update(ip for _host, ip, _port in tier.replica_addresses())
        return frozenset(ips)

    def delay_fault_tier(self) -> Optional[str]:
        for tier in self.tiers:
            if tier.delay_fault_target:
                return tier.name
        return None

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        if not self.tiers:
            raise TopologyError(f"topology {self.name!r} has no tiers")
        names = self.tier_names()
        if len(set(names)) != len(names):
            raise TopologyError(f"topology {self.name!r}: duplicate tier names")
        seen: set = set()
        addresses: set = set()
        hostnames: set = set()
        for tier in self.tiers:
            tier.validate()
            for host, ip, port in tier.replica_addresses():
                if (ip, port) in addresses:
                    raise TopologyError(
                        f"topology {self.name!r}: address {ip}:{port} used twice"
                    )
                addresses.add((ip, port))
                # Replica hostnames append the replica index to the tier
                # name, so ``svc1`` replicated twice expands to ``svc11``
                # -- which must not also be a tier.  Colliding hostnames
                # silently merge two nodes' logs (found by ``repro
                # fuzz``, seed 24: 0% accuracy from crossed streams).
                if host in hostnames:
                    raise TopologyError(
                        f"topology {self.name!r}: hostname {host!r} used "
                        "twice (replica hostnames append the replica "
                        "index to the tier name; rename the tiers so the "
                        "expanded hostnames stay unique)"
                    )
                hostnames.add(host)
            for target_name in tier.downstream:
                if target_name not in seen:
                    hint = ", ".join(sorted(seen)) or "(none constructed yet)"
                    raise TopologyError(
                        f"tier {tier.name!r} calls {target_name!r}, which is not "
                        f"constructed before it; earlier tiers: {hint}. "
                        "List tiers back to front."
                    )
                # Role contracts of the engine's payload protocol: whole
                # requests flow between frontend/worker tiers, query work
                # items flow into backend tiers.
                target = self.tier(target_name)
                if tier.role == "frontend" and target.role != "worker":
                    raise TopologyError(
                        f"frontend tier {tier.name!r} must proxy to a worker "
                        f"tier, not {target_name!r} ({target.role})"
                    )
                if tier.role == "worker":
                    wanted = "worker" if tier.pattern == "chain" else "backend"
                    if target.role != wanted:
                        raise TopologyError(
                            f"worker tier {tier.name!r} (pattern "
                            f"{tier.pattern!r}) must call {wanted} tiers, "
                            f"not {target_name!r} ({target.role})"
                        )
            seen.add(tier.name)
        if self.frontend not in names:
            raise TopologyError(
                f"frontend {self.frontend!r} is not a tier; "
                f"tiers: {', '.join(names)}"
            )
        if self.frontend_tier().role != "frontend":
            raise TopologyError(f"tier {self.frontend!r} does not have role 'frontend'")
        if self.frontend_tier().replicas != 1:
            raise TopologyError("the frontend tier cannot be replicated (single entry point)")
        if not self.client_ips:
            raise TopologyError("at least one client IP is required")
        for tier_name, _program in self.ssh_noise:
            self.tier(tier_name)
        if self.db_noise_tier is not None and self.tier(self.db_noise_tier).role != "backend":
            raise TopologyError(
                f"db_noise_tier {self.db_noise_tier!r} must be a backend tier"
            )
        if self.network_fault_tier is not None:
            self.tier(self.network_fault_tier)


@dataclass(frozen=True)
class WorkloadSpec:
    """How emulated clients drive the frontend.

    * ``closed`` -- ``clients`` concurrent sessions alternating
      exponential think times (mean ``think_time``) with requests, the
      paper's RUBiS client emulator;
    * ``open`` -- Poisson arrivals at ``arrival_rate`` requests/s,
      independent of response times (each arrival is its own session);
    * ``bursty`` -- alternating on/off phases (``on_time`` seconds of
      Poisson arrivals at ``arrival_rate``, then ``off_time`` of silence).
    """

    kind: str = "closed"
    clients: int = 200
    think_time: float = 5.5
    arrival_rate: float = 50.0
    on_time: float = 1.0
    off_time: float = 1.0
    stages: WorkloadStages = field(default_factory=WorkloadStages)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise TopologyError(
                f"unknown workload kind {self.kind!r}; "
                f"valid kinds: {', '.join(WORKLOAD_KINDS)}"
            )
        if self.kind == "closed":
            if self.clients <= 0:
                raise TopologyError("closed-loop workloads need clients > 0")
            if self.think_time < 0:
                raise TopologyError("think_time must be non-negative")
        else:
            if self.arrival_rate <= 0:
                raise TopologyError(f"{self.kind} workloads need arrival_rate > 0")
            if self.kind == "bursty" and (self.on_time <= 0 or self.off_time < 0):
                raise TopologyError("bursty workloads need on_time > 0 and off_time >= 0")
