"""Scenario files: serialize, load and register scenarios as data.

ROADMAP item 4 calls for scenarios that are "data all the way down".
This module is the file half of that: a :class:`Scenario` (topology +
workload + operation catalogue) round-trips through a plain-dict payload
to YAML or JSON and back **exactly** -- tuples, frozensets and nested
dataclasses are reconstructed with the original types, so

    scenario == loads_scenario(dump_scenario(scenario))

holds by ``==`` on the frozen dataclasses.  The five library entries
ship as ``scenarios/*.yaml`` and are pinned to their hand-written
builders by ``tests/test_generator.py``.

:func:`load_scenario` is the user entry point: it reads a file,
registers the scenario in the library registry (so the name passes
:class:`~repro.topology.library.ScenarioConfig` validation and works
with every ``--scenario`` CLI flag) and returns a ready
:class:`~repro.topology.library.ScenarioConfig`, with the file's
optional ``run:`` section applied as config overrides.

YAML needs PyYAML (a dev/CI dependency; the runtime package stays
stdlib-only): without it, JSON files keep working and YAML files raise a
:class:`ScenarioFileError` naming the missing module.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Optional, Union

from .library import SCENARIOS, Scenario, ScenarioConfig, _CACHE, get_scenario
from .operations import QuerySpec, RequestType
from .spec import TierSpec, TopologySpec, WorkloadSpec
from .workload import WorkloadStages

try:  # PyYAML is a dev-environment dependency, not a runtime one.
    import yaml as _yaml
except ImportError:  # pragma: no cover - exercised only without PyYAML
    _yaml = None

#: Version tag written into every scenario file.
FORMAT = "repro-scenario/v1"

#: ``run:`` keys forwarded to :class:`ScenarioConfig` (scalar knobs only;
#: faults/noise/segmentation stay code-level policy objects).
RUN_OVERRIDE_KEYS = (
    "clients",
    "arrival_rate",
    "think_time",
    "workload_kind",
    "seed",
    "clock_skew",
    "tracing_enabled",
    "probe_overhead",
    "network_latency",
    "network_bandwidth_mbps",
    "cpus_per_node",
)


class ScenarioFileError(ValueError):
    """Raised for malformed or unloadable scenario files."""


# ---------------------------------------------------------------------------
# dataclass <-> plain dict
# ---------------------------------------------------------------------------


def _dataclass_to_dict(value) -> Dict:
    return {
        f.name: _plain(getattr(value, f.name)) for f in dataclasses.fields(value)
    }


def _plain(value):
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, (tuple, list)):
        return [_plain(item) for item in value]
    if isinstance(value, frozenset):
        return sorted(value)
    if dataclasses.is_dataclass(value):
        return _dataclass_to_dict(value)
    raise ScenarioFileError(f"cannot serialize {type(value).__name__} in a scenario")


def _build(cls, data: Dict, context: str):
    """Construct a dataclass from a dict, rejecting unknown keys."""
    if not isinstance(data, dict):
        raise ScenarioFileError(f"{context}: expected a mapping, got {type(data).__name__}")
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - names)
    if unknown:
        raise ScenarioFileError(
            f"{context}: unknown keys {', '.join(unknown)}; "
            f"valid keys: {', '.join(sorted(names))}"
        )
    return cls(**data)


def scenario_to_dict(scenario: Scenario) -> Dict:
    """The plain-data payload of one scenario (YAML/JSON-ready)."""
    return {
        "name": scenario.name,
        "description": scenario.description,
        "topology": _dataclass_to_dict(scenario.topology),
        "workload": _dataclass_to_dict(scenario.workload),
        "mix": [
            {"weight": weight, "request": _dataclass_to_dict(request)}
            for request, weight in scenario.mix
        ],
    }


def scenario_from_dict(data: Dict) -> Scenario:
    """Rebuild a :class:`Scenario`, restoring the exact member types."""
    for key in ("name", "topology", "workload", "mix"):
        if key not in data:
            raise ScenarioFileError(f"scenario payload is missing {key!r}")

    topo = dict(data["topology"])
    tiers = tuple(
        _build(
            TierSpec,
            {**tier, "downstream": tuple(tier.get("downstream", ()))},
            f"tier #{i}",
        )
        for i, tier in enumerate(topo.pop("tiers", []))
    )
    topo["tiers"] = tiers
    topo["client_ips"] = tuple(topo.get("client_ips", ()))
    topo["ssh_noise"] = tuple(
        (tier, program) for tier, program in topo.get("ssh_noise", ())
    )
    topo["ignore_programs"] = frozenset(topo.get("ignore_programs", ()))
    topology = _build(TopologySpec, topo, "topology")

    work = dict(data["workload"])
    if "stages" in work:
        work["stages"] = _build(WorkloadStages, work["stages"], "workload.stages")
    workload = _build(WorkloadSpec, work, "workload")

    mix = []
    for i, entry in enumerate(data["mix"]):
        request = dict(entry["request"])
        request["queries"] = tuple(
            _build(QuerySpec, query, f"mix[{i}].queries")
            for query in request.get("queries", ())
        )
        mix.append((_build(RequestType, request, f"mix[{i}]"), float(entry["weight"])))

    return Scenario(
        name=data["name"],
        description=data.get("description", ""),
        topology=topology,
        workload=workload,
        mix=tuple(mix),
    )


# ---------------------------------------------------------------------------
# text / file round-trip
# ---------------------------------------------------------------------------


def dump_scenario(
    scenario: Scenario,
    path: Optional[Union[str, Path]] = None,
    run: Optional[Dict] = None,
) -> str:
    """Serialize a scenario (plus optional ``run:`` overrides) to text.

    YAML when PyYAML is available, JSON otherwise -- and always JSON for
    a ``.json`` ``path``.  When ``path`` is given the text is written
    there too.
    """
    payload: Dict = {"format": FORMAT, "scenario": scenario_to_dict(scenario)}
    if run:
        payload["run"] = dict(run)
    as_json = (path is not None and str(path).endswith(".json")) or _yaml is None
    if as_json:
        text = json.dumps(payload, indent=2, sort_keys=False) + "\n"
    else:
        text = _yaml.safe_dump(payload, sort_keys=False, default_flow_style=False)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def loads_scenario(text: str) -> Scenario:
    """Parse scenario text (YAML or JSON) back into a :class:`Scenario`."""
    return scenario_from_dict(_parse(text, "<string>")[0])


def _parse(text: str, origin: str):
    """Parse payload text; returns (scenario_dict, run_dict)."""
    stripped = text.lstrip()
    if stripped.startswith("{"):
        payload = json.loads(text)
    elif _yaml is not None:
        payload = _yaml.safe_load(text)
    else:
        raise ScenarioFileError(
            f"{origin} looks like YAML but PyYAML is not installed; "
            "install pyyaml (see requirements-dev.txt) or use a JSON "
            "scenario file"
        )
    if not isinstance(payload, dict) or "scenario" not in payload:
        raise ScenarioFileError(
            f"{origin}: not a scenario file (missing the 'scenario' section)"
        )
    fmt = payload.get("format", FORMAT)
    if fmt != FORMAT:
        raise ScenarioFileError(
            f"{origin}: unsupported format {fmt!r} (this build reads {FORMAT})"
        )
    run = payload.get("run", {}) or {}
    if not isinstance(run, dict):
        raise ScenarioFileError(f"{origin}: the 'run' section must be a mapping")
    unknown = sorted(set(run) - set(RUN_OVERRIDE_KEYS))
    if unknown:
        raise ScenarioFileError(
            f"{origin}: unknown run override(s) {', '.join(unknown)}; "
            f"valid overrides: {', '.join(RUN_OVERRIDE_KEYS)}"
        )
    return payload["scenario"], run


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the library registry under its own name.

    Loading the same definition twice is idempotent; a *different*
    definition under a registered name (library or previously loaded) is
    refused -- silently shadowing ``rubis`` with a modified file would
    poison every named lookup in the process.
    """
    if scenario.name in SCENARIOS:
        existing = get_scenario(scenario.name)
        if existing != scenario:
            raise ScenarioFileError(
                f"scenario {scenario.name!r} is already registered with a "
                "different definition; rename the scenario in the file"
            )
        return existing
    SCENARIOS[scenario.name] = lambda: scenario
    _CACHE[scenario.name] = scenario
    return scenario


def load_scenario(path: Union[str, Path]) -> ScenarioConfig:
    """Load a scenario file, register it, and return a run config.

    The returned :class:`ScenarioConfig` names the loaded scenario and
    carries the file's ``run:`` overrides (if any)::

        config = load_scenario("scenarios/cache_aside.yaml")
        result = run_scenario(config, seed=7)
    """
    file_path = Path(path)
    try:
        text = file_path.read_text(encoding="utf-8")
    except OSError as error:
        raise ScenarioFileError(f"cannot read scenario file {file_path}: {error}") from None
    scenario_data, run = _parse(text, str(file_path))
    scenario = register_scenario(scenario_from_dict(scenario_data))
    return ScenarioConfig(scenario=scenario.name, **run)
