"""The generic service-tier engine: one interpreter for every topology.

Three role interpreters cover the worker-pool shapes the paper's
deployment exhibits (and that the kernel-level context identifier can
distinguish):

* :class:`FrontendTier` -- Apache-prefork style: single-threaded worker
  processes, one request per client connection, synchronous proxying to
  exactly one downstream tier over per-worker persistent connections.
* :class:`WorkerTier` -- JBoss style: one process owning a bounded thread
  pool; requests queue for a free thread (visible to the tracer as
  upstream->worker interaction latency), then issue downstream calls
  following the tier's pattern: ``sequential`` per-query round trips,
  ``chain`` forwarding to the next worker tier, ``fanout`` scatter/gather
  across several backends, or ``cache_aside`` with a configurable hit
  ratio against a cache tier backed by a store tier.
* :class:`BackendTier` -- MySQL style: a dedicated kernel thread per
  connection, queries contending for bounded engine slots; congestion
  surfaces as worker->backend interaction latency, execution time as
  backend-internal latency.

A tier with ``replicas > 1`` is instantiated once per replica node;
upstream tiers pick a replica round robin when they open a persistent
connection (:class:`ReplicaRouter` -- a virtual L4 load balancer).

Interpreting the RUBiS :class:`~repro.topology.spec.TierSpec` triple with
this engine reproduces the original hand-written ``httpd.py`` /
``appserver.py`` / ``database.py`` tiers byte for byte: same RNG stream
names and draw order, same kernel activities, same event ordering.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generator, List, Optional, Tuple

from ..services.faults import FaultConfig
from ..sim.kernel import Environment, Event, Resource
from ..sim.network import Endpoint, Network
from ..sim.node import ExecutionEntity, Node
from ..sim.randomness import RandomStreams
from .groundtruth import GroundTruthRecorder, TracedRequest
from .spec import TierSpec


class ReplicaRouter:
    """Round-robin address selection over each tier's replicas.

    Stands in for an L4 load balancer: upstream tiers ask for the next
    address of a tier when they establish a persistent connection, which
    spreads their workers across replicas without any per-request device
    in the data path (nothing extra shows up in the traces).
    """

    def __init__(self) -> None:
        self._addresses: Dict[str, List[Tuple[str, int]]] = {}
        self._cursor: Dict[str, int] = {}

    def register(self, tier_name: str, addresses: List[Tuple[str, int]]) -> None:
        self._addresses[tier_name] = list(addresses)
        self._cursor[tier_name] = 0

    def next_address(self, tier_name: str) -> Tuple[str, int]:
        addresses = self._addresses.get(tier_name)
        if not addresses:
            raise KeyError(f"no tier registered under {tier_name!r}")
        index = self._cursor[tier_name]
        self._cursor[tier_name] = (index + 1) % len(addresses)
        return addresses[index]


class _TierBase:
    """Listener plus lazy persistent downstream connections (one per worker)."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        network: Network,
        ground_truth: GroundTruthRecorder,
        rng: RandomStreams,
        spec: TierSpec,
        router: ReplicaRouter,
        faults: Optional[FaultConfig] = None,
    ) -> None:
        self.env = env
        self.node = node
        self.network = network
        self.ground_truth = ground_truth
        self.rng = rng
        self.spec = spec
        self.router = router
        self.faults = faults or FaultConfig.none()
        self.streams = spec.streams
        self.listener = network.listen(node, node.ip, spec.port)
        self._down_endpoints: Dict[Tuple[ExecutionEntity, str], Endpoint] = {}

    def _accept_loop(self) -> Generator[Event, None, None]:
        while True:
            endpoint = yield self.listener.accept()
            self.env.process(self._serve_connection(endpoint))

    def _serve_connection(self, endpoint: Endpoint):  # pragma: no cover - abstract
        raise NotImplementedError

    def _downstream_endpoint(self, entity: ExecutionEntity, tier_name: str) -> Endpoint:
        """The entity's persistent connection to (one replica of) a tier."""
        key = (entity, tier_name)
        endpoint = self._down_endpoints.get(key)
        if endpoint is None:
            ip, port = self.router.next_address(tier_name)
            connection = self.network.connect(self.node, ip, port)
            endpoint = connection.client
            self._down_endpoints[key] = endpoint
        return endpoint


class FrontendTier(_TierBase):
    """Prefork worker processes proxying to one downstream tier."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.worker_pool = Resource(self.env, self.spec.workers)
        self._idle_workers: Deque[ExecutionEntity] = deque(
            self.node.new_process(self.spec.program) for _ in range(self.spec.workers)
        )
        self.requests_served = 0
        self.env.process(self._accept_loop())

    def _serve_connection(self, endpoint: Endpoint) -> Generator[Event, None, None]:
        """Serve one client connection (one request per connection)."""
        message = yield from endpoint.wait_data()
        request: Optional[TracedRequest] = message.payload
        if request is None:
            return
        grant = yield self.worker_pool.request()
        worker = self._idle_workers.popleft()
        try:
            yield from self._handle_request(endpoint, worker, message, request)
        finally:
            self._idle_workers.append(worker)
            self.worker_pool.release(grant)

    def _handle_request(
        self,
        endpoint: Endpoint,
        worker: ExecutionEntity,
        message,
        request: TracedRequest,
    ) -> Generator[Event, None, None]:
        operation = request.request_type
        scale = self.spec.cpu_scale

        # The worker reads the request: the kernel logs the RECEIVE that
        # the classifier will turn into the BEGIN of this causal path.
        endpoint.read(worker, message)
        self.ground_truth.note_context(request, worker)
        self.ground_truth.note_start(request, self.node.local_time())

        parse_cpu = self.rng.lognormal_like(
            f"{self.streams}.parse", operation.frontend_cpu * scale
        )
        yield from self.node.compute(parse_cpu + self.node.tracing_overhead(3))

        # Proxy downstream on this worker's persistent connection.
        down = self._downstream_endpoint(worker, self.spec.downstream[0])
        down.send(
            worker, operation.worker_request_bytes, request.request_id, request
        )
        reply = yield from down.recv(worker)
        del reply

        relay_cpu = self.rng.lognormal_like(
            f"{self.streams}.relay", operation.frontend_reply_cpu * scale
        )
        yield from self.node.compute(relay_cpu + self.node.tracing_overhead(3))

        # Write the response back to the client: the END of the causal path.
        endpoint.send(worker, operation.reply_bytes, request.request_id, request)
        self.ground_truth.note_end(request, self.node.local_time())
        self.requests_served += 1


class WorkerTier(_TierBase):
    """One process with a bounded thread pool and a downstream call pattern."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.process = self.node.new_process(self.spec.program)
        self.thread_pool = Resource(self.env, self.spec.workers)
        self._idle_threads: Deque[ExecutionEntity] = deque(
            self.node.new_thread(self.process) for _ in range(self.spec.workers)
        )
        self.requests_served = 0
        self.env.process(self._accept_loop())

    @property
    def max_threads(self) -> int:
        return self.spec.workers

    @property
    def thread_queue_length(self) -> int:
        """Requests currently waiting for a pool thread (diagnostics)."""
        return self.thread_pool.queue_length

    def _serve_connection(self, endpoint: Endpoint) -> Generator[Event, None, None]:
        """Handle the stream of requests on one persistent upstream connection.

        The upstream worker on the other end is synchronous, so requests
        on one connection are strictly sequential.
        """
        while True:
            message = yield from endpoint.wait_data()
            yield from self._handle_request(endpoint, message)

    def _handle_request(self, endpoint: Endpoint, message) -> Generator[Event, None, None]:
        request: Optional[TracedRequest] = message.payload
        if request is None:
            return
        operation = request.request_type
        scale = self.spec.cpu_scale

        # Wait for a free pool thread; under high load this wait dominates
        # and surfaces as upstream->worker interaction latency.
        grant = yield self.thread_pool.request()
        thread = self._idle_threads.popleft()
        try:
            endpoint.read(thread, message)
            self.ground_truth.note_context(request, thread)

            business_cpu = self.rng.lognormal_like(
                f"{self.streams}.business", operation.worker_cpu * scale
            )
            yield from self.node.compute(business_cpu + self.node.tracing_overhead(3))

            if self.faults.ejb_delay is not None and self.spec.delay_fault_target:
                # Abnormal case 1: a random delay inside the business logic.
                yield self.env.timeout(self.faults.ejb_delay.sample(self.rng))

            yield from self._call_downstream(thread, request, operation)

            render_cpu = self.rng.lognormal_like(
                f"{self.streams}.render", operation.worker_reply_cpu * scale
            )
            yield from self.node.compute(render_cpu + self.node.tracing_overhead(1))

            endpoint.send(
                thread, operation.worker_reply_bytes, request.request_id, request
            )
            self.requests_served += 1
        finally:
            self._idle_threads.append(thread)
            self.thread_pool.release(grant)

    # -- downstream call patterns -------------------------------------------

    def _call_downstream(
        self, thread: ExecutionEntity, request: TracedRequest, operation
    ) -> Generator[Event, None, None]:
        pattern = self.spec.pattern
        if pattern == "sequential":
            yield from self._sequential(thread, request, operation)
        elif pattern == "chain":
            yield from self._chain(thread, request, operation)
        elif pattern == "fanout":
            yield from self._fanout(thread, request, operation)
        elif pattern == "cache_aside":
            yield from self._cache_aside(thread, request, operation)
        else:  # pragma: no cover - specs validate the pattern eagerly
            raise ValueError(f"unknown call pattern {pattern!r}")

    def _parse_reply(self, thread: ExecutionEntity, operation) -> Generator[Event, None, None]:
        parse_cpu = self.rng.lognormal_like(
            f"{self.streams}.query_parse",
            operation.worker_per_reply_cpu * self.spec.cpu_scale,
        )
        yield from self.node.compute(parse_cpu + self.node.tracing_overhead(2))

    def _query_round_trip(
        self, thread: ExecutionEntity, target: str, request: TracedRequest, query, operation
    ) -> Generator[Event, None, None]:
        endpoint = self._downstream_endpoint(thread, target)
        endpoint.send(thread, query.query_bytes, request.request_id, (request, query))
        reply = yield from endpoint.recv(thread)
        del reply
        yield from self._parse_reply(thread, operation)

    def _sequential(self, thread, request, operation) -> Generator[Event, None, None]:
        """Per-query round trips, queries routed over the downstream tiers."""
        targets = self.spec.downstream
        for index, query in enumerate(operation.queries):
            target = targets[index % len(targets)]
            yield from self._query_round_trip(thread, target, request, query, operation)

    def _chain(self, thread, request, operation) -> Generator[Event, None, None]:
        """Forward the whole request to the next worker tier and wait."""
        endpoint = self._downstream_endpoint(thread, self.spec.downstream[0])
        endpoint.send(
            thread, operation.worker_request_bytes, request.request_id, request
        )
        reply = yield from endpoint.recv(thread)
        del reply
        yield from self._parse_reply(thread, operation)

    def _fanout(self, thread, request, operation) -> Generator[Event, None, None]:
        """Scatter the operation's queries across all downstream tiers, then join.

        Sub-requests go out back to back before any reply is read, so the
        backends work in parallel; the join happens in arrival order of
        the scatter (the aggregator reads replies from each branch in
        turn, like a synchronous gather loop).
        """
        targets = self.spec.downstream
        batches: List[List] = [[] for _ in targets]
        for index, query in enumerate(operation.queries):
            batches[index % len(targets)].append(query)
        scattered: List[Endpoint] = []
        for target, batch in zip(targets, batches):
            if not batch:
                continue
            work = tuple(batch)
            endpoint = self._downstream_endpoint(thread, target)
            endpoint.send(
                thread,
                sum(query.query_bytes for query in work),
                request.request_id,
                (request, work),
            )
            scattered.append(endpoint)
        for endpoint in scattered:
            reply = yield from endpoint.recv(thread)
            del reply
            yield from self._parse_reply(thread, operation)

    def _cache_aside(self, thread, request, operation) -> Generator[Event, None, None]:
        """Cache-aside reads: hit -> cache only, miss -> cache lookup + store.

        The hit/miss decision is drawn once per request from the tier's
        own RNG stream, so the hit ratio is an independent knob of the
        scenario (and reproducible under the experiment seed).
        """
        cache_tier, store_tier = self.spec.downstream
        hit = (
            self.rng.uniform(f"{self.streams}.cache_hit", 0.0, 1.0)
            <= self.spec.cache_hit_ratio
        )
        if hit:
            for query in operation.queries:
                yield from self._query_round_trip(
                    thread, cache_tier, request, query, operation
                )
            return
        # Miss: the lookup still costs a (cheap) cache round trip, then
        # every query goes to the backing store.
        if operation.queries:
            yield from self._query_round_trip(
                thread, cache_tier, request, operation.queries[0], operation
            )
        for query in operation.queries:
            yield from self._query_round_trip(
                thread, store_tier, request, query, operation
            )


class BackendTier(_TierBase):
    """Per-connection threads contending for bounded engine slots."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.process = self.node.new_process(self.spec.program)
        self.engine = Resource(self.env, self.spec.workers)
        self.queries_served = 0
        self.noise_queries_served = 0
        self.env.process(self._accept_loop())

    @property
    def engine_slots(self) -> int:
        return self.spec.workers

    def _serve_connection(self, endpoint: Endpoint) -> Generator[Event, None, None]:
        """Dedicated per-connection thread: handle queries sequentially."""
        thread = self.node.new_thread(self.process)
        while True:
            message = yield from endpoint.wait_data()
            yield from self._handle_query(endpoint, thread, message)

    def _handle_query(
        self, endpoint: Endpoint, thread: ExecutionEntity, message
    ) -> Generator[Event, None, None]:
        request, work = message.payload
        queries = work if isinstance(work, tuple) else (work,)
        scale = self.spec.service_scale

        # Connection/protocol dispatch before the thread reads the query;
        # seen by the tracer as part of the worker -> backend interaction.
        dispatch = self.rng.lognormal_like(
            f"{self.streams}.dispatch", queries[0].dispatch_delay * scale
        )
        if dispatch > 0:
            yield self.env.timeout(dispatch)

        # Wait for an engine slot (InnoDB-style concurrency ticket).
        # Congestion here also delays the read below, i.e. it is charged
        # to the interaction, matching how a loaded backend looks from
        # outside.
        grant = yield self.engine.request()
        try:
            endpoint.read(thread, message)
            self.ground_truth.note_context(request, thread)

            for query in queries:
                cpu = self.rng.lognormal_like(f"{self.streams}.cpu", query.db_cpu * scale)
                yield from self.node.compute(cpu + self.node.tracing_overhead(2))

                engine_delay = self.rng.lognormal_like(
                    f"{self.streams}.engine", query.engine_delay * scale
                )
                if (
                    self.faults.database_lock is not None
                    and query.touches_items
                    and request is not None
                ):
                    # Abnormal case 2: the items table is locked; queries
                    # that touch it wait for the lock holding their slot.
                    engine_delay += self.faults.database_lock.sample(self.rng)
                if engine_delay > 0:
                    yield self.env.timeout(engine_delay)
        finally:
            self.engine.release(grant)

        request_id = request.request_id if request is not None else None
        endpoint.send(
            thread,
            sum(query.reply_bytes for query in queries),
            request_id,
            (request, work),
        )
        if request is None:
            self.noise_queries_served += len(queries)
        else:
            self.queries_served += len(queries)


ROLE_ENGINES = {
    "frontend": FrontendTier,
    "worker": WorkerTier,
    "backend": BackendTier,
}


class TierGroup:
    """All replicas of one tier plus their aggregate counters."""

    def __init__(self, spec: TierSpec) -> None:
        self.spec = spec
        self.replicas: List[_TierBase] = []

    @property
    def primary(self) -> _TierBase:
        return self.replicas[0]

    @property
    def nodes(self) -> List[Node]:
        return [replica.node for replica in self.replicas]

    @property
    def requests_served(self) -> int:
        return sum(getattr(replica, "requests_served", 0) for replica in self.replicas)

    @property
    def queries_served(self) -> int:
        return sum(getattr(replica, "queries_served", 0) for replica in self.replicas)
