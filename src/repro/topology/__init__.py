"""Declarative topology & workload subsystem.

Where :mod:`repro.services.rubis` used to hard-code the paper's one
three-tier deployment (Fig. 7), this package turns service emulation into
data: a :class:`TopologySpec` describes the tiers (roles, ports, worker
pools, replicas, downstream call patterns), a :class:`WorkloadSpec`
describes how clients drive the frontend (closed-loop sessions, open-loop
Poisson arrivals or bursty on/off phases), and one generic tier engine
(:mod:`repro.topology.engine`) interprets any such spec on the simulated
cluster.  The RUBiS deployment itself is just one spec in the scenario
library (:mod:`repro.topology.library`) and produces byte-identical
traces to the original hand-written tiers.
"""

from .deployment import (
    RunSettings,
    TopologyDeployment,
    TopologyRunResult,
)
from .generator import (
    DEFAULT_LIMITS,
    WORKLOAD_SHAPES,
    GeneratorLimits,
    entity_exclusive_step,
    generate_many,
    generate_scenario,
    scenario_shape,
)
from .groundtruth import GroundTruthRecorder, TracedRequest
from .library import (
    SCENARIOS,
    Scenario,
    ScenarioConfig,
    get_scenario,
    run_scenario,
    scenario_names,
)
from .scenario_io import (
    ScenarioFileError,
    dump_scenario,
    load_scenario,
    loads_scenario,
    register_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from .spec import TierSpec, TopologyError, TopologySpec, WorkloadSpec
from .workload import (
    BurstyEmulator,
    ClientEmulator,
    ClientMetrics,
    CompletedRequest,
    OpenLoopEmulator,
    WorkloadStages,
    make_emulator,
)

__all__ = [
    "BurstyEmulator",
    "ClientEmulator",
    "ClientMetrics",
    "CompletedRequest",
    "DEFAULT_LIMITS",
    "GeneratorLimits",
    "GroundTruthRecorder",
    "OpenLoopEmulator",
    "RunSettings",
    "SCENARIOS",
    "Scenario",
    "ScenarioConfig",
    "ScenarioFileError",
    "TierSpec",
    "TopologyDeployment",
    "TopologyError",
    "TopologyRunResult",
    "TopologySpec",
    "TracedRequest",
    "WORKLOAD_SHAPES",
    "WorkloadSpec",
    "WorkloadStages",
    "dump_scenario",
    "entity_exclusive_step",
    "generate_many",
    "generate_scenario",
    "get_scenario",
    "load_scenario",
    "loads_scenario",
    "make_emulator",
    "register_scenario",
    "run_scenario",
    "scenario_from_dict",
    "scenario_names",
    "scenario_shape",
    "scenario_to_dict",
]
