"""Declarative topology & workload subsystem.

Where :mod:`repro.services.rubis` used to hard-code the paper's one
three-tier deployment (Fig. 7), this package turns service emulation into
data: a :class:`TopologySpec` describes the tiers (roles, ports, worker
pools, replicas, downstream call patterns), a :class:`WorkloadSpec`
describes how clients drive the frontend (closed-loop sessions, open-loop
Poisson arrivals or bursty on/off phases), and one generic tier engine
(:mod:`repro.topology.engine`) interprets any such spec on the simulated
cluster.  The RUBiS deployment itself is just one spec in the scenario
library (:mod:`repro.topology.library`) and produces byte-identical
traces to the original hand-written tiers.
"""

from .deployment import (
    RunSettings,
    TopologyDeployment,
    TopologyRunResult,
)
from .groundtruth import GroundTruthRecorder, TracedRequest
from .library import (
    SCENARIOS,
    Scenario,
    ScenarioConfig,
    get_scenario,
    run_scenario,
    scenario_names,
)
from .spec import TierSpec, TopologyError, TopologySpec, WorkloadSpec
from .workload import (
    BurstyEmulator,
    ClientEmulator,
    ClientMetrics,
    CompletedRequest,
    OpenLoopEmulator,
    WorkloadStages,
    make_emulator,
)

__all__ = [
    "BurstyEmulator",
    "ClientEmulator",
    "ClientMetrics",
    "CompletedRequest",
    "GroundTruthRecorder",
    "OpenLoopEmulator",
    "RunSettings",
    "SCENARIOS",
    "Scenario",
    "ScenarioConfig",
    "TierSpec",
    "TopologyDeployment",
    "TopologyError",
    "TopologyRunResult",
    "TopologySpec",
    "TracedRequest",
    "WorkloadSpec",
    "WorkloadStages",
    "get_scenario",
    "make_emulator",
    "run_scenario",
    "scenario_names",
]
