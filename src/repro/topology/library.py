"""The scenario library: named topology + workload + catalogue bundles.

Each scenario is a :class:`Scenario` -- a validated
:class:`~repro.topology.spec.TopologySpec`, a default
:class:`~repro.topology.spec.WorkloadSpec` and an operation catalogue
(mix) -- runnable with one call::

    from repro.topology import run_scenario

    result = run_scenario("fanout_aggregator", clients=100, seed=7)
    trace = result.trace(window=0.010)
    print(trace.accuracy(result.ground_truth).accuracy)

Scenarios beyond the paper's RUBiS deployment:

``five_tier_chain``
    An edge proxy in front of three chained worker services backed by
    one store -- deep synchronous call chains (microservice style).
``fanout_aggregator``
    A gateway and an aggregator that scatters every request across three
    specialised backends and joins the replies; driven open loop
    (Poisson arrivals).
``cache_aside``
    An API tier doing cache-aside reads against a memcached-style cache
    (80 % hit ratio) backed by a store.
``replicated_lb``
    The application tier replicated three ways behind a round-robin load
    balancer, driven with bursty on/off load.

``rubis`` is the paper's own Fig. 7 deployment expressed as a spec; the
:mod:`repro.services.rubis` harness interprets the same spec and
produces byte-identical traces to the original hand-written tiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..services.faults import FaultConfig
from ..services.noise import NoiseConfig
from ..sim.network import SegmentationPolicy
from ..sim.tcp_trace import DEFAULT_PROBE_OVERHEAD
from .deployment import RunSettings, TopologyDeployment, TopologyRunResult, settings_from
from .operations import QuerySpec, RequestType
from .spec import TierSpec, TopologySpec, WorkloadSpec
from .workload import WorkloadStages


@dataclass(frozen=True)
class Scenario:
    """One runnable entry of the library."""

    name: str
    description: str
    topology: TopologySpec
    workload: WorkloadSpec
    mix: Tuple[Tuple[RequestType, float], ...]


# ---------------------------------------------------------------------------
# RUBiS (the paper's deployment, as data)
# ---------------------------------------------------------------------------

#: Addresses of the emulated RUBiS cluster (one tier per node, Fig. 7).
RUBIS_WEB_IP = "10.0.0.1"
RUBIS_APP_IP = "10.0.0.2"
RUBIS_DB_IP = "10.0.0.3"
RUBIS_CLIENT_IPS = ("10.0.1.1", "10.0.1.2", "10.0.1.3")
RUBIS_WEB_PORT = 80
RUBIS_APP_PORT = 8080
RUBIS_DB_PORT = 3306


def rubis_topology(
    httpd_workers: int = 256,
    max_threads: int = 40,
    db_engine_slots: int = 18,
) -> TopologySpec:
    """The three-tier RUBiS deployment of Fig. 7 as a topology spec."""
    return TopologySpec(
        name="rubis",
        tiers=(
            TierSpec(
                name="db", ip=RUBIS_DB_IP, port=RUBIS_DB_PORT, program="mysqld",
                role="backend", stream_prefix="db", workers=db_engine_slots,
            ),
            TierSpec(
                name="app", ip=RUBIS_APP_IP, port=RUBIS_APP_PORT, program="java",
                role="worker", stream_prefix="app", workers=max_threads,
                downstream=("db",), delay_fault_target=True,
            ),
            TierSpec(
                name="www", ip=RUBIS_WEB_IP, port=RUBIS_WEB_PORT, program="httpd",
                role="frontend", stream_prefix="httpd", workers=httpd_workers,
                downstream=("app",),
            ),
        ),
        frontend="www",
        client_ips=RUBIS_CLIENT_IPS,
        ssh_noise=(("www", "sshd"), ("db", "rlogind")),
        db_noise_tier="db",
        network_fault_tier="app",
    )


def _rubis() -> Scenario:
    # Imported lazily: the RUBiS catalogue module re-exports the
    # operation dataclasses from this package, so a module-level import
    # would be circular during package initialisation.
    from ..services.rubis.requests import BROWSE_ONLY_MIX

    return Scenario(
        name="rubis",
        description="The paper's three-tier auction site (httpd -> JBoss -> MySQL)",
        topology=rubis_topology(),
        workload=WorkloadSpec(kind="closed", clients=200, think_time=5.5),
        mix=BROWSE_ONLY_MIX,
    )


# ---------------------------------------------------------------------------
# five_tier_chain
# ---------------------------------------------------------------------------

_CHAIN_BROWSE = RequestType(
    name="ChainBrowse",
    app_cpu=0.003,
    queries=(
        QuerySpec("chain_list", engine_delay=0.018, reply_bytes=5_000),
        QuerySpec("chain_detail", engine_delay=0.022, reply_bytes=7_000, touches_items=True),
    ),
    reply_bytes=16_000,
    app_reply_bytes=12_000,
)

_CHAIN_CHECKOUT = RequestType(
    name="ChainCheckout",
    app_cpu=0.005,
    queries=(
        QuerySpec("chain_cart", engine_delay=0.020, reply_bytes=3_000),
        QuerySpec("chain_stock", engine_delay=0.024, reply_bytes=2_000, touches_items=True),
        QuerySpec("chain_order", engine_delay=0.028, reply_bytes=900),
        QuerySpec("chain_commit", engine_delay=0.016, reply_bytes=400),
    ),
    reply_bytes=9_000,
    app_reply_bytes=7_000,
    writes=True,
)


def _five_tier_chain() -> Scenario:
    topology = TopologySpec(
        name="five_tier_chain",
        tiers=(
            TierSpec(
                name="store", ip="10.1.0.5", port=5432, program="storedb",
                role="backend", workers=16,
            ),
            TierSpec(
                name="svc3", ip="10.1.0.4", port=7003, program="svc3d",
                role="worker", workers=32, downstream=("store",),
            ),
            TierSpec(
                name="svc2", ip="10.1.0.3", port=7002, program="svc2d",
                role="worker", workers=32, downstream=("svc3",),
                pattern="chain", cpu_scale=0.8, delay_fault_target=True,
            ),
            TierSpec(
                name="svc1", ip="10.1.0.2", port=7001, program="svc1d",
                role="worker", workers=32, downstream=("svc2",),
                pattern="chain", cpu_scale=0.6,
            ),
            TierSpec(
                name="edge", ip="10.1.0.1", port=80, program="edged",
                role="frontend", workers=128, downstream=("svc1",),
            ),
        ),
        frontend="edge",
        client_ips=("10.1.1.1", "10.1.1.2"),
        ssh_noise=(("edge", "sshd"), ("store", "rlogind")),
        db_noise_tier="store",
        network_fault_tier="svc2",
    )
    return Scenario(
        name="five_tier_chain",
        description="Edge proxy -> three chained services -> store (deep call chain)",
        topology=topology,
        workload=WorkloadSpec(kind="closed", clients=60, think_time=2.5),
        mix=((_CHAIN_BROWSE, 0.8), (_CHAIN_CHECKOUT, 0.2)),
    )


# ---------------------------------------------------------------------------
# fanout_aggregator
# ---------------------------------------------------------------------------

_FANOUT_SEARCH = RequestType(
    name="FanoutSearch",
    app_cpu=0.004,
    queries=(
        QuerySpec("profile_lookup", engine_delay=0.016, reply_bytes=3_000),
        QuerySpec("listing_search", engine_delay=0.026, reply_bytes=12_000, touches_items=True),
        QuerySpec("review_scores", engine_delay=0.018, reply_bytes=5_000),
    ),
    reply_bytes=24_000,
    app_reply_bytes=19_000,
)

_FANOUT_DASHBOARD = RequestType(
    name="FanoutDashboard",
    app_cpu=0.006,
    queries=(
        QuerySpec("profile_full", engine_delay=0.020, reply_bytes=4_000),
        QuerySpec("listing_mine", engine_delay=0.024, reply_bytes=8_000, touches_items=True),
        QuerySpec("review_mine", engine_delay=0.020, reply_bytes=6_000),
        QuerySpec("profile_badges", engine_delay=0.014, reply_bytes=1_500),
        QuerySpec("listing_watched", engine_delay=0.022, reply_bytes=7_000, touches_items=True),
        QuerySpec("review_replies", engine_delay=0.018, reply_bytes=4_000),
    ),
    reply_bytes=30_000,
    app_reply_bytes=24_000,
)


def _fanout_aggregator() -> Scenario:
    topology = TopologySpec(
        name="fanout_aggregator",
        tiers=(
            TierSpec(
                name="profiles", ip="10.2.0.11", port=9001, program="profiled",
                role="backend", workers=8,
            ),
            TierSpec(
                name="listings", ip="10.2.0.12", port=9002, program="listingd",
                role="backend", workers=8,
            ),
            TierSpec(
                name="reviews", ip="10.2.0.13", port=9003, program="reviewd",
                role="backend", workers=8,
            ),
            TierSpec(
                name="agg", ip="10.2.0.2", port=7000, program="aggd",
                role="worker", workers=48,
                downstream=("profiles", "listings", "reviews"),
                pattern="fanout", delay_fault_target=True,
            ),
            TierSpec(
                name="gateway", ip="10.2.0.1", port=80, program="gatewayd",
                role="frontend", workers=128, downstream=("agg",),
            ),
        ),
        frontend="gateway",
        client_ips=("10.2.1.1", "10.2.1.2", "10.2.1.3"),
        ssh_noise=(("gateway", "sshd"), ("listings", "rlogind")),
        db_noise_tier="listings",
        network_fault_tier="agg",
    )
    return Scenario(
        name="fanout_aggregator",
        description="Gateway -> aggregator scattering over three backends (fan-out/join)",
        topology=topology,
        workload=WorkloadSpec(kind="open", arrival_rate=25.0),
        mix=((_FANOUT_SEARCH, 0.7), (_FANOUT_DASHBOARD, 0.3)),
    )


# ---------------------------------------------------------------------------
# cache_aside
# ---------------------------------------------------------------------------

_CACHED_READ = RequestType(
    name="CachedRead",
    app_cpu=0.003,
    queries=(
        QuerySpec("object_get", engine_delay=0.024, reply_bytes=6_000, touches_items=True),
        QuerySpec("object_meta", engine_delay=0.018, reply_bytes=2_000),
    ),
    reply_bytes=14_000,
    app_reply_bytes=11_000,
)

_CACHED_LISTING = RequestType(
    name="CachedListing",
    app_cpu=0.004,
    queries=(
        QuerySpec("page_fragment", engine_delay=0.026, reply_bytes=9_000, touches_items=True),
        QuerySpec("page_sidebar", engine_delay=0.020, reply_bytes=4_000),
        QuerySpec("page_footer", engine_delay=0.014, reply_bytes=1_500),
    ),
    reply_bytes=20_000,
    app_reply_bytes=16_000,
)


def _cache_aside() -> Scenario:
    topology = TopologySpec(
        name="cache_aside",
        tiers=(
            TierSpec(
                name="store", ip="10.3.0.4", port=3306, program="mysqld",
                role="backend", workers=12,
            ),
            TierSpec(
                name="cache", ip="10.3.0.3", port=11211, program="memcached",
                role="backend", workers=64, service_scale=0.05,
            ),
            TierSpec(
                name="api", ip="10.3.0.2", port=8080, program="apid",
                role="worker", workers=40, downstream=("cache", "store"),
                pattern="cache_aside", cache_hit_ratio=0.8,
                delay_fault_target=True,
            ),
            TierSpec(
                name="web", ip="10.3.0.1", port=80, program="nginx",
                role="frontend", workers=128, downstream=("api",),
            ),
        ),
        frontend="web",
        client_ips=("10.3.1.1", "10.3.1.2"),
        ssh_noise=(("web", "sshd"), ("store", "rlogind")),
        db_noise_tier="store",
        network_fault_tier="api",
    )
    return Scenario(
        name="cache_aside",
        description="API tier doing cache-aside reads (80% hits) against cache + store",
        topology=topology,
        workload=WorkloadSpec(kind="closed", clients=80, think_time=2.0),
        mix=((_CACHED_READ, 0.6), (_CACHED_LISTING, 0.4)),
    )


# ---------------------------------------------------------------------------
# replicated_lb
# ---------------------------------------------------------------------------

_LB_BROWSE = RequestType(
    name="LbBrowse",
    app_cpu=0.004,
    queries=(
        QuerySpec("lb_listing", engine_delay=0.022, reply_bytes=8_000, touches_items=True),
        QuerySpec("lb_counts", engine_delay=0.016, reply_bytes=2_000),
    ),
    reply_bytes=18_000,
    app_reply_bytes=14_000,
)

_LB_DETAIL = RequestType(
    name="LbDetail",
    app_cpu=0.005,
    queries=(
        QuerySpec("lb_item", engine_delay=0.024, reply_bytes=6_000, touches_items=True),
        QuerySpec("lb_related", engine_delay=0.026, reply_bytes=8_000, touches_items=True),
        QuerySpec("lb_seller", engine_delay=0.018, reply_bytes=2_500),
    ),
    reply_bytes=22_000,
    app_reply_bytes=17_000,
)


def _replicated_lb() -> Scenario:
    topology = TopologySpec(
        name="replicated_lb",
        tiers=(
            TierSpec(
                name="db", ip="10.4.0.8", port=3306, program="mysqld",
                role="backend", workers=16,
            ),
            TierSpec(
                name="app", ip="10.4.0.16", port=8080, program="appd",
                role="worker", workers=24, replicas=3, downstream=("db",),
                delay_fault_target=True,
            ),
            TierSpec(
                name="lb", ip="10.4.0.1", port=80, program="haproxy",
                role="frontend", workers=160, downstream=("app",),
            ),
        ),
        frontend="lb",
        client_ips=("10.4.1.1", "10.4.1.2", "10.4.1.3"),
        ssh_noise=(("lb", "sshd"), ("db", "rlogind")),
        db_noise_tier="db",
        network_fault_tier="app",
    )
    return Scenario(
        name="replicated_lb",
        description="Three app replicas behind a round-robin LB, bursty on/off load",
        topology=topology,
        workload=WorkloadSpec(
            kind="bursty", arrival_rate=40.0, on_time=1.0, off_time=0.8
        ),
        mix=((_LB_BROWSE, 0.65), (_LB_DETAIL, 0.35)),
    )


#: Scenario builders by name.  Builders (not instances) so the RUBiS
#: entry can import its catalogue lazily; :func:`get_scenario` memoises.
SCENARIOS: Dict[str, Callable[[], Scenario]] = {
    "rubis": _rubis,
    "five_tier_chain": _five_tier_chain,
    "fanout_aggregator": _fanout_aggregator,
    "cache_aside": _cache_aside,
    "replicated_lb": _replicated_lb,
}

_CACHE: Dict[str, Scenario] = {}


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up a scenario, raising a helpful error for typos."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available scenarios: "
            f"{', '.join(scenario_names())}"
        ) from None
    scenario = _CACHE.get(name)
    if scenario is None:
        scenario = builder()
        _CACHE[name] = scenario
    return scenario


@dataclass
class ScenarioConfig:
    """Everything that defines one scenario run (generic counterpart of
    :class:`~repro.services.rubis.deployment.RubisConfig`).

    ``None`` workload fields keep the scenario's own defaults; setting
    ``clients``/``arrival_rate``/... patches the scenario's
    :class:`~repro.topology.spec.WorkloadSpec` for this run.
    """

    scenario: str = "rubis"
    clients: Optional[int] = None
    arrival_rate: Optional[float] = None
    think_time: Optional[float] = None
    workload_kind: Optional[str] = None
    stages: Optional[WorkloadStages] = None
    seed: int = 1
    clock_skew: float = 0.001
    tracing_enabled: bool = True
    probe_overhead: float = DEFAULT_PROBE_OVERHEAD
    faults: FaultConfig = field(default_factory=FaultConfig)
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    segmentation: SegmentationPolicy = field(default_factory=SegmentationPolicy)
    network_latency: float = 200e-6
    network_bandwidth_mbps: float = 100.0
    cpus_per_node: int = 2

    def __post_init__(self) -> None:
        # Fail at construction, not deep inside the run.
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; available scenarios: "
                f"{', '.join(scenario_names())}"
            )

    def with_overrides(self, **kwargs) -> "ScenarioConfig":
        """A copy of this config with some fields replaced."""
        return replace(self, **kwargs)

    def resolved_workload(self, default: WorkloadSpec) -> WorkloadSpec:
        """The scenario's workload spec with this config's patches applied."""
        patches = {}
        if self.workload_kind is not None:
            patches["kind"] = self.workload_kind
        if self.clients is not None:
            patches["clients"] = self.clients
        if self.arrival_rate is not None:
            patches["arrival_rate"] = self.arrival_rate
        if self.think_time is not None:
            patches["think_time"] = self.think_time
        if self.stages is not None:
            patches["stages"] = self.stages
        return replace(default, **patches) if patches else default

    def run_settings(self) -> RunSettings:
        return settings_from(self)


def run_scenario(
    config: Optional[ScenarioConfig] = None, **overrides
) -> TopologyRunResult:
    """Build and run one scenario; keyword overrides patch the config.

    ``run_scenario("cache_aside", clients=50)`` also works: a plain name
    may be passed instead of a config.
    """
    if isinstance(config, str):
        config = ScenarioConfig(scenario=config)
    base = config or ScenarioConfig()
    if overrides:
        base = base.with_overrides(**overrides)
    scenario = get_scenario(base.scenario)
    deployment = TopologyDeployment(
        topology=scenario.topology,
        workload=base.resolved_workload(scenario.workload),
        mix=scenario.mix,
        settings=base.run_settings(),
        config=base,
    )
    return deployment.run()
