"""PreciseTracer reproduction.

A Python reproduction of "Precise Request Tracing and Performance
Debugging for Multi-tier Services of Black Boxes" (Zhang et al., DSN
2009): precise black-box request tracing from kernel-level TCP
send/receive activities, the Component Activity Graph (CAG) abstraction,
latency-percentage performance debugging, and the simulated three-tier
testbed used to reproduce the paper's evaluation.

Quick start::

    from repro import RubisConfig, run_rubis

    result = run_rubis(RubisConfig(clients=100))
    trace = result.trace(window=0.010)
    print(trace.request_count, "causal paths reconstructed")
    print(trace.accuracy(result.ground_truth).accuracy)
"""

from .core import (
    AccuracyReport,
    Activity,
    ActivityClassifier,
    ActivityType,
    CAG,
    CAGError,
    ContextId,
    CorrelationEngine,
    CorrelationResult,
    Correlator,
    Diagnosis,
    Edge,
    FrontendSpec,
    GroundTruthRequest,
    LatencyBreakdown,
    LatencyProfile,
    MessageId,
    PathPattern,
    PatternClassifier,
    PreciseTracer,
    Ranker,
    RawRecord,
    SegmentChange,
    TraceResult,
    average_breakdown,
    breakdown_for_cag,
    classify,
    compare_profiles,
    diagnose,
    dominant_pattern,
    parse_record,
    path_accuracy,
    percentage_table,
    profile_series,
)
from .services import FaultConfig, NoiseConfig
from .stream import (
    FileTailSource,
    IncrementalEngine,
    ShardedCorrelator,
    StreamingCorrelator,
)
from .pipeline import (
    AccuracyStage,
    BackendSpec,
    CagJsonlSink,
    DiagnosisStage,
    DotSink,
    EquivalenceReport,
    LogSource,
    MemorySource,
    Pipeline,
    ProfileStage,
    RankedLatencyStage,
    RunSource,
    SummaryJsonSink,
    TraceSession,
    verify_equivalence,
)
from .services.rubis import (
    RubisConfig,
    RubisDeployment,
    RubisRunResult,
    WorkloadStages,
    run_rubis,
)
from .topology import (
    Scenario,
    ScenarioConfig,
    TierSpec,
    TopologyDeployment,
    TopologyRunResult,
    TopologySpec,
    WorkloadSpec,
    get_scenario,
    run_scenario,
    scenario_names,
)

__version__ = "0.1.0"

__all__ = [
    "AccuracyReport",
    "AccuracyStage",
    "Activity",
    "ActivityClassifier",
    "ActivityType",
    "BackendSpec",
    "CAG",
    "CAGError",
    "CagJsonlSink",
    "ContextId",
    "CorrelationEngine",
    "CorrelationResult",
    "Correlator",
    "Diagnosis",
    "DiagnosisStage",
    "DotSink",
    "Edge",
    "EquivalenceReport",
    "FaultConfig",
    "FileTailSource",
    "FrontendSpec",
    "GroundTruthRequest",
    "IncrementalEngine",
    "LatencyBreakdown",
    "LatencyProfile",
    "LogSource",
    "MemorySource",
    "MessageId",
    "NoiseConfig",
    "PathPattern",
    "PatternClassifier",
    "Pipeline",
    "PreciseTracer",
    "ProfileStage",
    "RankedLatencyStage",
    "Ranker",
    "RawRecord",
    "RubisConfig",
    "RubisDeployment",
    "RubisRunResult",
    "RunSource",
    "Scenario",
    "ScenarioConfig",
    "SegmentChange",
    "ShardedCorrelator",
    "StreamingCorrelator",
    "SummaryJsonSink",
    "TierSpec",
    "TopologyDeployment",
    "TopologyRunResult",
    "TopologySpec",
    "TraceResult",
    "TraceSession",
    "WorkloadSpec",
    "WorkloadStages",
    "__version__",
    "average_breakdown",
    "breakdown_for_cag",
    "classify",
    "compare_profiles",
    "diagnose",
    "dominant_pattern",
    "parse_record",
    "path_accuracy",
    "percentage_table",
    "profile_series",
    "get_scenario",
    "run_rubis",
    "run_scenario",
    "scenario_names",
    "verify_equivalence",
]
