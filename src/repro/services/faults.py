"""Fault injection for the performance-debugging experiments (Section 5.4.2).

Three performance problems are injected into the running service, matching
the paper's abnormal cases:

* **EJB_Delay** -- a random delay inside the second tier's business logic
  (the paper modifies the RUBiS EJB code); the java2java latency share
  should grow dramatically.
* **Database_Lock** -- extra lock wait on queries touching the ``items``
  table (the paper locks that table); mysqld-internal and java->mysqld
  latency shares should grow.
* **EJB_Network** -- the NIC of the application-server node degraded from
  100 Mbps to 10 Mbps (plus extra latency); every interaction touching the
  second tier grows while the second tier's internal share shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.network import NetworkFabric
from ..sim.randomness import RandomStreams


@dataclass(frozen=True)
class EjbDelayFault:
    """Random delay injected into the application tier per request."""

    mean_delay: float = 0.25
    jitter: float = 0.5  # fractional spread around the mean

    def sample(self, rng: RandomStreams) -> float:
        low = self.mean_delay * (1.0 - self.jitter)
        high = self.mean_delay * (1.0 + self.jitter)
        return max(0.0, rng.uniform("fault.ejb_delay", low, high))


@dataclass(frozen=True)
class DatabaseLockFault:
    """Extra lock wait for queries touching the items table."""

    lock_wait: float = 0.100
    jitter: float = 0.4

    def sample(self, rng: RandomStreams) -> float:
        low = self.lock_wait * (1.0 - self.jitter)
        high = self.lock_wait * (1.0 + self.jitter)
        return max(0.0, rng.uniform("fault.db_lock", low, high))


@dataclass(frozen=True)
class EjbNetworkFault:
    """Degrade every link touching the application-server node."""

    bandwidth_bytes_per_s: float = 10e6 / 8.0  # 10 Mbps
    extra_latency: float = 0.003

    def apply(self, fabric: NetworkFabric, hostname: str) -> None:
        fabric.degrade_node(
            hostname,
            extra_latency=self.extra_latency,
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s,
        )


@dataclass
class FaultConfig:
    """Which faults are active in a run.  All disabled by default."""

    ejb_delay: Optional[EjbDelayFault] = None
    database_lock: Optional[DatabaseLockFault] = None
    ejb_network: Optional[EjbNetworkFault] = None

    @classmethod
    def none(cls) -> "FaultConfig":
        return cls()

    @classmethod
    def ejb_delay_case(cls, mean_delay: float = 0.25) -> "FaultConfig":
        """The paper's abnormal case 1."""
        return cls(ejb_delay=EjbDelayFault(mean_delay=mean_delay))

    @classmethod
    def database_lock_case(cls, lock_wait: float = 0.100) -> "FaultConfig":
        """The paper's abnormal case 2."""
        return cls(database_lock=DatabaseLockFault(lock_wait=lock_wait))

    @classmethod
    def ejb_network_case(cls, bandwidth_mbps: float = 10.0) -> "FaultConfig":
        """The paper's abnormal case 3."""
        return cls(
            ejb_network=EjbNetworkFault(bandwidth_bytes_per_s=bandwidth_mbps * 1e6 / 8.0)
        )

    def describe(self) -> str:
        active = []
        if self.ejb_delay is not None:
            active.append(f"EJB_Delay(mean={self.ejb_delay.mean_delay * 1000:.0f}ms)")
        if self.database_lock is not None:
            active.append(f"Database_Lock(wait={self.database_lock.lock_wait * 1000:.0f}ms)")
        if self.ejb_network is not None:
            mbps = self.ejb_network.bandwidth_bytes_per_s * 8.0 / 1e6
            active.append(f"EJB_Network({mbps:.0f}Mbps)")
        return ", ".join(active) if active else "none"
