"""Noise-traffic generators (Section 4.3 and Section 5.3.3).

Two kinds of noise coexist with the traced service on its nodes:

* **Attribute-filterable noise** -- interactive ``ssh`` / ``rlogin``
  sessions between the traced nodes and an external host.  Their kernel
  activities carry the ``sshd`` / ``rlogind`` program names and can be
  dropped by the attribute filter of the classifier.
* **Non-filterable noise** -- a MySQL command-line client on an *untraced*
  machine querying the same ``mysqld`` that serves the application tier.
  The database-side activities carry the ``mysqld`` program name and the
  database's own IP/port, so no attribute can remove them; only the
  ``is_noise`` test of the ranker (no matching SEND anywhere) discards
  them.  Fig. 14 measures the cost of doing so.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..sim.kernel import Environment, Event
from ..sim.network import Network
from ..sim.node import Node
from ..sim.randomness import RandomStreams


@dataclass
class NoiseConfig:
    """Noise levels for one run.  All zero by default (clean environment)."""

    #: new interactive ssh/rlogin message exchanges per second per traced node
    ssh_rate: float = 0.0
    #: queries per second issued by the external MySQL command-line client
    mysql_client_rate: float = 0.0
    #: bytes per interactive message
    ssh_bytes: int = 160
    #: bytes per noise query / reply
    mysql_query_bytes: int = 240
    mysql_reply_bytes: int = 900
    #: service demand of one noise query at the database (kept light so the
    #: noise perturbs the correlator, not the service under test)
    mysql_engine_delay: float = 0.002
    mysql_db_cpu: float = 0.0003

    @property
    def enabled(self) -> bool:
        return self.ssh_rate > 0 or self.mysql_client_rate > 0

    @classmethod
    def quiet(cls) -> "NoiseConfig":
        return cls()

    @classmethod
    def paper_noise(cls, scale: float = 1.0) -> "NoiseConfig":
        """Roughly the paper's Section 5.3.3 environment, scaled.

        The paper injects about 200 K MySQL-client activities during a
        ~10-minute run (~300/s) plus interactive ssh/rlogin traffic.
        """
        return cls(ssh_rate=4.0 * scale, mysql_client_rate=150.0 * scale)

    def noise_query(self):
        """The (cheap) query the external MySQL client keeps issuing."""
        # Imported lazily to avoid a circular import with the rubis package,
        # whose deployment module in turn imports this module.
        from .rubis.requests import QuerySpec

        return QuerySpec(
            name="noise_select",
            db_cpu=self.mysql_db_cpu,
            dispatch_delay=0.0005,
            engine_delay=self.mysql_engine_delay,
            reply_bytes=self.mysql_reply_bytes,
            query_bytes=self.mysql_query_bytes,
        )


class SshNoiseGenerator:
    """Interactive ssh/rlogin chatter originating on a traced node.

    The traced-node side runs under the ``sshd`` / ``rlogind`` program
    name; the peer is an external workstation that is not traced.  Each
    exchange is one small send and one small receive on the traced node.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        traced_node: Node,
        external_node: Node,
        config: NoiseConfig,
        rng: RandomStreams,
        program: str = "sshd",
        stop_at: Optional[float] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.traced_node = traced_node
        self.external_node = external_node
        self.config = config
        self.rng = rng
        self.program = program
        self.stop_at = stop_at
        self.exchanges = 0

    def start(self) -> None:
        if self.config.ssh_rate <= 0:
            return
        self.env.process(self._run())

    def _run(self) -> Generator[Event, None, None]:
        # The interactive daemon on the traced node; every exchange reuses
        # this entity, like a long-lived sshd session process.
        daemon = self.traced_node.new_process(self.program)
        # A long-lived TCP connection from the external workstation.
        listener_port = 22 if self.program == "sshd" else 513
        listener = self.network.listener_for(self.traced_node.ip, listener_port)
        if listener is None:
            listener = self.network.listen(self.traced_node, self.traced_node.ip, listener_port)
        connection = self.network.connect(
            self.external_node, self.traced_node.ip, listener_port
        )
        server_side = connection.server
        mean_gap = 1.0 / self.config.ssh_rate
        stream = f"noise.ssh.{self.traced_node.hostname}.{self.program}"
        while self.stop_at is None or self.env.now < self.stop_at:
            yield self.env.timeout(self.rng.exponential(stream, mean_gap))
            if self.stop_at is not None and self.env.now >= self.stop_at:
                break
            # keystroke from the external side (untraced), echo from the daemon
            connection.client.send(None, self.config.ssh_bytes)
            message = yield from server_side.wait_data()
            server_side.read(daemon, message)
            server_side.send(daemon, self.config.ssh_bytes)
            self.exchanges += 1


class MysqlClientNoiseGenerator:
    """An external ``mysql`` command-line client hammering the shared database.

    The client host is untraced, so only the database side of the traffic
    appears in the logs -- under the ``mysqld`` program name and the
    database's own address, which defeats attribute filtering.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        external_node: Node,
        db_ip: str,
        db_port: int,
        config: NoiseConfig,
        rng: RandomStreams,
        stop_at: Optional[float] = None,
        sessions: int = 4,
    ) -> None:
        self.env = env
        self.network = network
        self.external_node = external_node
        self.db_ip = db_ip
        self.db_port = db_port
        self.config = config
        self.rng = rng
        self.stop_at = stop_at
        self.sessions = max(1, sessions)
        self.queries_issued = 0

    def start(self) -> None:
        if self.config.mysql_client_rate <= 0:
            return
        for index in range(self.sessions):
            self.env.process(self._session(index))

    def _session(self, index: int) -> Generator[Event, None, None]:
        connection = self.network.connect(self.external_node, self.db_ip, self.db_port)
        client_side = connection.client
        per_session_rate = self.config.mysql_client_rate / self.sessions
        mean_gap = 1.0 / per_session_rate
        stream = f"noise.mysql.{index}"
        query = self.config.noise_query()
        while self.stop_at is None or self.env.now < self.stop_at:
            yield self.env.timeout(self.rng.exponential(stream, mean_gap))
            if self.stop_at is not None and self.env.now >= self.stop_at:
                break
            # payload shape matches what the database tier expects:
            # (request-or-None, QuerySpec); None marks it as noise.
            client_side.send(
                None, self.config.mysql_query_bytes, request_id=None, payload=(None, query)
            )
            reply = yield from client_side.wait_data()
            del reply  # the external client is untraced; nothing to log
            self.queries_issued += 1
