"""Request catalogue and workload mixes of the RUBiS-like service.

RUBiS is a three-tier auction site (eBay-like): browse categories and
regions, search items, view items/users/bid histories, and -- in the
read-write ("Default") mix -- place bids, comments and new items.  Each
interaction touches the web tier, the application tier and a
request-type-specific number of database queries, which is what gives the
different causal-path patterns their distinctive shapes.

The service-time parameters below are calibrated so the *shape* of the
paper's evaluation reappears on the simulated cluster:

* the application-server thread pool (``MaxThreads = 40``) is the binding
  resource: a thread is held for roughly 0.3 s per request (mostly waiting
  on database round trips), so throughput saturates around 130-150
  requests/s, i.e. around 700-850 emulated clients with the default think
  time -- the knee of Fig. 8/12/13;
* raising ``MaxThreads`` to 250 moves the bottleneck to the database
  engine (about 160 requests/s), reproducing Fig. 16;
* ViewItem is the most frequent causal-path pattern, the natural target of
  the latency-percentage analysis of Fig. 15.

Absolute latencies are not meant to match the 2009 testbed; relative
behaviour is.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

# The operation dataclasses are topology-neutral cost models shared by
# every scenario catalogue; they live in the topology subsystem and are
# re-exported here for compatibility.
from ...topology.operations import QuerySpec, RequestType


def _query(
    name: str,
    engine_delay: float = 0.025,
    dispatch_delay: float = 0.040,
    reply_bytes: int = 8_000,
    touches_items: bool = False,
    db_cpu: float = 0.0012,
) -> QuerySpec:
    return QuerySpec(
        name=name,
        db_cpu=db_cpu,
        dispatch_delay=dispatch_delay,
        engine_delay=engine_delay,
        reply_bytes=reply_bytes,
        touches_items=touches_items,
    )


# -- read-only interactions ----------------------------------------------------------

HOME = RequestType(
    name="Home",
    app_cpu=0.003,
    queries=(_query("load_categories", engine_delay=0.015, reply_bytes=3_000),),
    reply_bytes=9_000,
    app_reply_bytes=7_000,
)

BROWSE_CATEGORIES = RequestType(
    name="BrowseCategories",
    app_cpu=0.004,
    queries=(
        _query("list_categories", engine_delay=0.018, reply_bytes=4_000),
        _query("count_items", engine_delay=0.020, reply_bytes=1_500, touches_items=True),
    ),
    reply_bytes=12_000,
    app_reply_bytes=9_000,
)

BROWSE_REGIONS = RequestType(
    name="BrowseRegions",
    app_cpu=0.004,
    queries=(
        _query("list_regions", engine_delay=0.018, reply_bytes=3_500),
        _query("count_users", engine_delay=0.020, reply_bytes=1_500),
    ),
    reply_bytes=11_000,
    app_reply_bytes=8_500,
)

SEARCH_ITEMS_IN_CATEGORY = RequestType(
    name="SearchItemsInCategory",
    app_cpu=0.006,
    queries=(
        _query("select_category", engine_delay=0.016, reply_bytes=1_200),
        _query("search_items_page", engine_delay=0.030, reply_bytes=14_000, touches_items=True),
        _query("item_thumbnails", engine_delay=0.022, reply_bytes=9_000, touches_items=True),
        _query("max_bids", engine_delay=0.024, reply_bytes=4_000),
        _query("bid_counts", engine_delay=0.022, reply_bytes=3_000),
    ),
    reply_bytes=30_000,
    app_reply_bytes=24_000,
)

SEARCH_ITEMS_IN_REGION = RequestType(
    name="SearchItemsInRegion",
    app_cpu=0.006,
    queries=(
        _query("select_region", engine_delay=0.016, reply_bytes=1_200),
        _query("users_in_region", engine_delay=0.024, reply_bytes=6_000),
        _query("search_items_region", engine_delay=0.030, reply_bytes=13_000, touches_items=True),
        _query("max_bids", engine_delay=0.024, reply_bytes=4_000),
        _query("bid_counts", engine_delay=0.022, reply_bytes=3_000),
    ),
    reply_bytes=28_000,
    app_reply_bytes=22_000,
)

VIEW_ITEM = RequestType(
    name="ViewItem",
    app_cpu=0.006,
    queries=(
        _query("select_item", engine_delay=0.026, reply_bytes=6_000, touches_items=True),
        _query("select_seller", engine_delay=0.020, reply_bytes=2_500),
        _query("max_bid", engine_delay=0.024, reply_bytes=1_500),
        _query("bid_history_head", engine_delay=0.026, reply_bytes=5_000),
        _query("related_items", engine_delay=0.028, reply_bytes=9_000, touches_items=True),
        _query("item_comments", engine_delay=0.024, reply_bytes=6_000),
    ),
    reply_bytes=26_000,
    app_reply_bytes=20_000,
)

VIEW_USER_INFO = RequestType(
    name="ViewUserInfo",
    app_cpu=0.005,
    queries=(
        _query("select_user", engine_delay=0.020, reply_bytes=2_500),
        _query("user_comments", engine_delay=0.026, reply_bytes=7_000),
        _query("user_rating", engine_delay=0.020, reply_bytes=1_200),
        _query("user_items", engine_delay=0.026, reply_bytes=8_000, touches_items=True),
    ),
    reply_bytes=18_000,
    app_reply_bytes=14_000,
)

VIEW_BID_HISTORY = RequestType(
    name="ViewBidHistory",
    app_cpu=0.005,
    queries=(
        _query("select_item", engine_delay=0.024, reply_bytes=5_000, touches_items=True),
        _query("bids_for_item", engine_delay=0.028, reply_bytes=9_000),
        _query("bidders", engine_delay=0.024, reply_bytes=5_000),
    ),
    reply_bytes=16_000,
    app_reply_bytes=12_000,
)

ABOUT_ME = RequestType(
    name="AboutMe",
    app_cpu=0.007,
    queries=(
        _query("select_user", engine_delay=0.020, reply_bytes=2_500),
        _query("user_bids", engine_delay=0.026, reply_bytes=7_000),
        _query("user_items", engine_delay=0.026, reply_bytes=8_000, touches_items=True),
        _query("won_items", engine_delay=0.024, reply_bytes=5_000, touches_items=True),
        _query("user_comments", engine_delay=0.024, reply_bytes=6_000),
    ),
    reply_bytes=24_000,
    app_reply_bytes=19_000,
)

# -- read-write interactions (Default mix only) ----------------------------------------

PUT_BID = RequestType(
    name="PutBid",
    app_cpu=0.005,
    queries=(
        _query("select_item", engine_delay=0.024, reply_bytes=5_000, touches_items=True),
        _query("max_bid", engine_delay=0.022, reply_bytes=1_500),
        _query("select_user", engine_delay=0.018, reply_bytes=2_500),
    ),
    reply_bytes=14_000,
    app_reply_bytes=11_000,
    writes=False,
)

STORE_BID = RequestType(
    name="StoreBid",
    app_cpu=0.006,
    queries=(
        _query("select_item_for_update", engine_delay=0.026, reply_bytes=4_000, touches_items=True),
        _query("insert_bid", engine_delay=0.030, reply_bytes=600),
        _query("update_item_maxbid", engine_delay=0.028, reply_bytes=600, touches_items=True),
        _query("commit", engine_delay=0.018, reply_bytes=400),
    ),
    reply_bytes=9_000,
    app_reply_bytes=7_000,
    writes=True,
)

PUT_COMMENT = RequestType(
    name="PutComment",
    app_cpu=0.004,
    queries=(
        _query("select_user", engine_delay=0.018, reply_bytes=2_500),
        _query("select_item", engine_delay=0.022, reply_bytes=4_500, touches_items=True),
    ),
    reply_bytes=11_000,
    app_reply_bytes=9_000,
)

STORE_COMMENT = RequestType(
    name="StoreComment",
    app_cpu=0.005,
    queries=(
        _query("insert_comment", engine_delay=0.028, reply_bytes=600),
        _query("update_rating", engine_delay=0.024, reply_bytes=600),
        _query("commit", engine_delay=0.016, reply_bytes=400),
    ),
    reply_bytes=8_000,
    app_reply_bytes=6_500,
    writes=True,
)

REGISTER_ITEM = RequestType(
    name="RegisterItem",
    app_cpu=0.006,
    queries=(
        _query("insert_item", engine_delay=0.032, reply_bytes=700, touches_items=True),
        _query("select_category", engine_delay=0.016, reply_bytes=1_200),
        _query("update_seller_stats", engine_delay=0.024, reply_bytes=600),
        _query("commit", engine_delay=0.018, reply_bytes=400),
    ),
    reply_bytes=10_000,
    app_reply_bytes=8_000,
    writes=True,
)

REGISTER_USER = RequestType(
    name="RegisterUser",
    app_cpu=0.005,
    queries=(
        _query("check_nickname", engine_delay=0.020, reply_bytes=800),
        _query("insert_user", engine_delay=0.026, reply_bytes=600),
        _query("commit", engine_delay=0.016, reply_bytes=400),
    ),
    reply_bytes=9_000,
    app_reply_bytes=7_000,
    writes=True,
)


#: Every interaction, by name.
CATALOG: Dict[str, RequestType] = {
    request_type.name: request_type
    for request_type in (
        HOME,
        BROWSE_CATEGORIES,
        BROWSE_REGIONS,
        SEARCH_ITEMS_IN_CATEGORY,
        SEARCH_ITEMS_IN_REGION,
        VIEW_ITEM,
        VIEW_USER_INFO,
        VIEW_BID_HISTORY,
        ABOUT_ME,
        PUT_BID,
        STORE_BID,
        PUT_COMMENT,
        STORE_COMMENT,
        REGISTER_ITEM,
        REGISTER_USER,
    )
}


#: The read-only ("Browse_Only") workload mix: (request type, probability weight).
BROWSE_ONLY_MIX: Tuple[Tuple[RequestType, float], ...] = (
    (HOME, 0.05),
    (BROWSE_CATEGORIES, 0.09),
    (BROWSE_REGIONS, 0.06),
    (SEARCH_ITEMS_IN_CATEGORY, 0.18),
    (SEARCH_ITEMS_IN_REGION, 0.10),
    (VIEW_ITEM, 0.32),
    (VIEW_USER_INFO, 0.08),
    (VIEW_BID_HISTORY, 0.07),
    (ABOUT_ME, 0.05),
)

#: The read-write ("Default") workload mix (about 15 % writes, like RUBiS').
DEFAULT_MIX: Tuple[Tuple[RequestType, float], ...] = (
    (HOME, 0.04),
    (BROWSE_CATEGORIES, 0.07),
    (BROWSE_REGIONS, 0.05),
    (SEARCH_ITEMS_IN_CATEGORY, 0.14),
    (SEARCH_ITEMS_IN_REGION, 0.08),
    (VIEW_ITEM, 0.26),
    (VIEW_USER_INFO, 0.07),
    (VIEW_BID_HISTORY, 0.05),
    (ABOUT_ME, 0.05),
    (PUT_BID, 0.06),
    (STORE_BID, 0.05),
    (PUT_COMMENT, 0.03),
    (STORE_COMMENT, 0.02),
    (REGISTER_ITEM, 0.02),
    (REGISTER_USER, 0.01),
)

#: Workload mixes by name, as used by the experiment configuration.
WORKLOAD_MIXES: Dict[str, Tuple[Tuple[RequestType, float], ...]] = {
    "browse_only": BROWSE_ONLY_MIX,
    "default": DEFAULT_MIX,
}


def mix_by_name(name: str) -> Tuple[Tuple[RequestType, float], ...]:
    """Look up a workload mix, raising a helpful error for typos."""
    try:
        return WORKLOAD_MIXES[name]
    except KeyError as exc:
        known = ", ".join(sorted(WORKLOAD_MIXES))
        raise KeyError(f"unknown workload {name!r}; known workloads: {known}") from exc


def expected_query_count(mix: Sequence[Tuple[RequestType, float]]) -> float:
    """Average number of database queries per request under a mix."""
    total_weight = sum(weight for _rt, weight in mix)
    if total_weight <= 0:
        return 0.0
    return sum(rt.query_count * weight for rt, weight in mix) / total_weight


def expected_thread_holding_time(mix: Sequence[Tuple[RequestType, float]]) -> float:
    """Rough mean time an application-server thread is held per request.

    Used by capacity planning in tests and docs; it ignores queueing so it
    is only the *light load* holding time.
    """
    total_weight = sum(weight for _rt, weight in mix)
    if total_weight <= 0:
        return 0.0
    holding = 0.0
    for request_type, weight in mix:
        per_request = request_type.app_cpu + request_type.app_reply_cpu
        for query in request_type.queries:
            per_request += (
                query.dispatch_delay
                + query.engine_delay
                + query.db_cpu
                + request_type.app_per_query_cpu
            )
        holding += weight * per_request
    return holding / total_weight
