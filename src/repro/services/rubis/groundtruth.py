"""Ground-truth recording (compatibility re-export).

The recorder was never RUBiS-specific -- Section 5.2's oracle records the
servicing entities and frontend times of every tagged request, whatever
the topology -- so it now lives in :mod:`repro.topology.groundtruth` and
serves every scenario.  This module keeps the historical import path and
the ``RubisRequest`` name.
"""

from __future__ import annotations

from ...topology.groundtruth import GroundTruthRecorder, TracedRequest

#: One in-flight request of the emulated workload (historical name).
RubisRequest = TracedRequest

__all__ = ["GroundTruthRecorder", "RubisRequest", "TracedRequest"]
