"""Deployment harness: build, run and trace one RUBiS-like experiment.

This module mirrors Fig. 7 of the paper: client emulator nodes drive a
three-tier service (httpd -> JBoss-like application server -> MySQL-like
database), each tier on its own node, with the TCP_TRACE probe installed
on every service node.  One call to :func:`run_rubis` performs a complete
experiment run and returns the gathered per-node logs, the ground truth
and the client-side metrics; :meth:`RubisRunResult.trace` then runs
PreciseTracer over the logs.

Since the topology refactor the three tiers are no longer hand-written
classes: the deployment is the ``rubis`` entry of the scenario library
(:func:`repro.topology.library.rubis_topology`) interpreted by the
generic tier engine, and :class:`RubisDeployment` is a thin facade over
:class:`~repro.topology.deployment.TopologyDeployment` that keeps the
historical construction API (``RubisConfig``) and attribute names
(``web_node``, ``appserver``, ...).  The interpreted spec reproduces the
original tiers byte for byte (same RNG streams, same activity sequence).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ...sim.network import SegmentationPolicy
from ...sim.tcp_trace import DEFAULT_PROBE_OVERHEAD
from ...topology.deployment import (
    TopologyDeployment,
    TopologyRunResult,
    settings_from,
)
from ...topology.library import (
    RUBIS_APP_IP,
    RUBIS_APP_PORT,
    RUBIS_CLIENT_IPS,
    RUBIS_DB_IP,
    RUBIS_DB_PORT,
    RUBIS_WEB_IP,
    RUBIS_WEB_PORT,
    rubis_topology,
)
from ...topology.spec import WorkloadSpec
from ...topology.workload import WorkloadStages
from ..faults import FaultConfig
from ..noise import NoiseConfig
from .requests import WORKLOAD_MIXES, mix_by_name

#: Addresses of the emulated cluster (one service tier per node, as in Fig. 7).
WEB_IP = RUBIS_WEB_IP
APP_IP = RUBIS_APP_IP
DB_IP = RUBIS_DB_IP
CLIENT_IPS = RUBIS_CLIENT_IPS
WORKSTATION_IP = "10.0.2.1"

WEB_PORT = RUBIS_WEB_PORT
APP_PORT = RUBIS_APP_PORT
DB_PORT = RUBIS_DB_PORT


@dataclass
class RubisConfig:
    """Everything that defines one experiment run."""

    #: number of concurrent emulated clients
    clients: int = 200
    #: workload mix name: "browse_only" or "default"
    workload: str = "browse_only"
    #: mean think time between requests of one session, seconds
    think_time: float = 5.5
    #: stage durations (up ramp / runtime / down ramp)
    stages: WorkloadStages = field(default_factory=WorkloadStages)
    #: web-tier worker processes (Apache prefork MaxClients)
    httpd_workers: int = 256
    #: application-server pool size (the paper's MaxThreads, default 40)
    max_threads: int = 40
    #: database engine concurrency slots
    db_engine_slots: int = 18
    #: whether the TCP_TRACE probes are installed (Fig. 12/13 compare both)
    tracing_enabled: bool = True
    #: CPU cost of logging one activity
    probe_overhead: float = DEFAULT_PROBE_OVERHEAD
    #: maximum clock skew across service nodes, seconds
    clock_skew: float = 0.001
    #: RNG seed (same seed + same config -> identical trace)
    seed: int = 1
    #: injected faults (Section 5.4.2)
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: coexisting noise traffic (Section 5.3.3)
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    #: kernel send/receive segmentation boundaries
    segmentation: SegmentationPolicy = field(default_factory=SegmentationPolicy)
    #: network fabric parameters
    network_latency: float = 200e-6
    network_bandwidth_mbps: float = 100.0
    #: CPUs per service node (the paper's nodes are 2-way SMPs)
    cpus_per_node: int = 2

    def __post_init__(self) -> None:
        # Validate eagerly: a typo'd mix name fails here with the valid
        # names listed, not as a KeyError deep inside the run.
        if self.workload not in WORKLOAD_MIXES:
            known = ", ".join(sorted(WORKLOAD_MIXES))
            raise ValueError(
                f"unknown workload {self.workload!r}; valid workloads: {known}"
            )

    def with_overrides(self, **kwargs) -> "RubisConfig":
        """A copy of this config with some fields replaced."""
        return replace(self, **kwargs)


#: Everything produced by one experiment run (now topology-generic; the
#: historical name is kept for the public API).
RubisRunResult = TopologyRunResult


class RubisDeployment(TopologyDeployment):
    """Builds the simulated cluster for one configuration.

    A facade: translates the :class:`RubisConfig` into the ``rubis``
    topology/workload specs and exposes the tiers under their historical
    names.
    """

    def __init__(self, config: RubisConfig) -> None:
        topology = rubis_topology(
            httpd_workers=config.httpd_workers,
            max_threads=config.max_threads,
            db_engine_slots=config.db_engine_slots,
        )
        workload = WorkloadSpec(
            kind="closed",
            clients=config.clients,
            think_time=config.think_time,
            stages=config.stages,
        )
        super().__init__(
            topology=topology,
            workload=workload,
            mix=mix_by_name(config.workload),
            settings=settings_from(config),
            config=config,
        )

    # -- historical attribute names -----------------------------------------

    @property
    def web_node(self):
        return self.service_nodes["www"]

    @property
    def app_node(self):
        return self.service_nodes["app"]

    @property
    def db_node(self):
        return self.service_nodes["db"]

    @property
    def httpd(self):
        """The frontend tier engine (prefork worker processes)."""
        return self.tier_groups["www"].primary

    @property
    def appserver(self):
        """The middle tier engine (bounded thread pool)."""
        return self.tier_groups["app"].primary

    @property
    def database(self):
        """The storage tier engine (per-connection threads, engine slots)."""
        return self.tier_groups["db"].primary


def run_rubis(config: Optional[RubisConfig] = None, **overrides) -> RubisRunResult:
    """Build and run one experiment; keyword overrides patch the config."""
    base = config or RubisConfig()
    if overrides:
        base = base.with_overrides(**overrides)
    return RubisDeployment(base).run()
