"""Deployment harness: build, run and trace one RUBiS-like experiment.

This module mirrors Fig. 7 of the paper: client emulator nodes drive a
three-tier service (httpd -> JBoss-like application server -> MySQL-like
database), each tier on its own node, with the TCP_TRACE probe installed
on every service node.  One call to :func:`run_rubis` performs a complete
experiment run and returns the gathered per-node logs, the ground truth
and the client-side metrics; :meth:`RubisRunResult.trace` then runs
PreciseTracer over the logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ...core.accuracy import GroundTruthRequest
from ...core.activity import Activity
from ...core.log_format import ActivityClassifier, FrontendSpec, RawRecord
from ...core.tracer import PreciseTracer, TraceResult
from ...sim.clock import NodeClock, spread_skews
from ...sim.kernel import Environment
from ...sim.network import Network, NetworkFabric, SegmentationPolicy
from ...sim.node import Node
from ...sim.randomness import RandomStreams
from ...sim.tcp_trace import DEFAULT_PROBE_OVERHEAD, TraceCollector
from ..faults import FaultConfig
from ..noise import MysqlClientNoiseGenerator, NoiseConfig, SshNoiseGenerator
from .appserver import AppServerTier
from .client import ClientEmulator, ClientMetrics, WorkloadStages
from .database import DatabaseTier
from .groundtruth import GroundTruthRecorder
from .httpd import HttpdTier
from .requests import mix_by_name

#: Addresses of the emulated cluster (one service tier per node, as in Fig. 7).
WEB_IP = "10.0.0.1"
APP_IP = "10.0.0.2"
DB_IP = "10.0.0.3"
CLIENT_IPS = ("10.0.1.1", "10.0.1.2", "10.0.1.3")
WORKSTATION_IP = "10.0.2.1"

WEB_PORT = 80
APP_PORT = 8080
DB_PORT = 3306


@dataclass
class RubisConfig:
    """Everything that defines one experiment run."""

    #: number of concurrent emulated clients
    clients: int = 200
    #: workload mix name: "browse_only" or "default"
    workload: str = "browse_only"
    #: mean think time between requests of one session, seconds
    think_time: float = 5.5
    #: stage durations (up ramp / runtime / down ramp)
    stages: WorkloadStages = field(default_factory=WorkloadStages)
    #: web-tier worker processes (Apache prefork MaxClients)
    httpd_workers: int = 256
    #: application-server pool size (the paper's MaxThreads, default 40)
    max_threads: int = 40
    #: database engine concurrency slots
    db_engine_slots: int = 18
    #: whether the TCP_TRACE probes are installed (Fig. 12/13 compare both)
    tracing_enabled: bool = True
    #: CPU cost of logging one activity
    probe_overhead: float = DEFAULT_PROBE_OVERHEAD
    #: maximum clock skew across service nodes, seconds
    clock_skew: float = 0.001
    #: RNG seed (same seed + same config -> identical trace)
    seed: int = 1
    #: injected faults (Section 5.4.2)
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: coexisting noise traffic (Section 5.3.3)
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    #: kernel send/receive segmentation boundaries
    segmentation: SegmentationPolicy = field(default_factory=SegmentationPolicy)
    #: network fabric parameters
    network_latency: float = 200e-6
    network_bandwidth_mbps: float = 100.0
    #: CPUs per service node (the paper's nodes are 2-way SMPs)
    cpus_per_node: int = 2

    def with_overrides(self, **kwargs) -> "RubisConfig":
        """A copy of this config with some fields replaced."""
        return replace(self, **kwargs)


@dataclass
class RubisRunResult:
    """Everything produced by one experiment run."""

    config: RubisConfig
    metrics: ClientMetrics
    ground_truth: Dict[int, GroundTruthRequest]
    records_by_node: Dict[str, List[RawRecord]]
    total_activities: int
    simulated_duration: float
    requests_issued: int
    requests_served_frontend: int
    cpu_utilisation: Dict[str, float]
    noise_activities: int = 0

    # -- tracing ------------------------------------------------------------

    def frontend_spec(self) -> FrontendSpec:
        """Network-level description of the service entry point."""
        return FrontendSpec(
            ip=WEB_IP,
            port=WEB_PORT,
            internal_ips=frozenset({WEB_IP, APP_IP, DB_IP}),
        )

    def make_tracer(self, window: float = 0.010) -> PreciseTracer:
        """A PreciseTracer configured for this deployment.

        ``sshd``/``rlogind`` noise is filtered by program name, exactly as
        in Section 5.3.3; mysql-client noise cannot be filtered this way
        and is left to the ranker's ``is_noise`` test.
        """
        return PreciseTracer(
            frontends=[self.frontend_spec()],
            window=window,
            ignore_programs={"sshd", "rlogind"},
        )

    def all_records(self) -> List[RawRecord]:
        records: List[RawRecord] = []
        for node_records in self.records_by_node.values():
            records.extend(node_records)
        return records

    def activities(self, window_classifier: Optional[ActivityClassifier] = None) -> List[Activity]:
        """Typed activities of the whole trace (classified, noise-filtered)."""
        classifier = window_classifier or ActivityClassifier(
            frontends=[self.frontend_spec()],
            ignore_programs={"sshd", "rlogind"},
        )
        return classifier.classify_all(self.all_records())

    def trace(self, window: float = 0.010) -> TraceResult:
        """Run PreciseTracer over the gathered logs."""
        return self.make_tracer(window=window).trace_records(self.all_records())

    # -- metrics shortcuts -----------------------------------------------------

    @property
    def throughput(self) -> float:
        return self.metrics.throughput()

    @property
    def mean_response_time(self) -> float:
        return self.metrics.mean_response_time()

    @property
    def completed_requests(self) -> int:
        return self.metrics.completed_count


class RubisDeployment:
    """Builds the simulated cluster for one configuration."""

    def __init__(self, config: RubisConfig) -> None:
        self.config = config
        self.env = Environment()
        self.rng = RandomStreams(seed=config.seed)
        self.ground_truth = GroundTruthRecorder()

        skews = spread_skews(["www", "app", "db"], config.clock_skew)
        self.web_node = Node(self.env, "www", WEB_IP, cpus=config.cpus_per_node, clock=skews["www"])
        self.app_node = Node(self.env, "app", APP_IP, cpus=config.cpus_per_node, clock=skews["app"])
        self.db_node = Node(self.env, "db", DB_IP, cpus=config.cpus_per_node, clock=skews["db"])
        self.client_nodes = [
            Node(self.env, f"client{i + 1}", ip, cpus=2, clock=NodeClock())
            for i, ip in enumerate(CLIENT_IPS)
        ]
        self.workstation = Node(self.env, "workstation", WORKSTATION_IP, cpus=2)

        fabric = NetworkFabric(
            self.env,
            base_latency=config.network_latency,
            bandwidth_bytes_per_s=config.network_bandwidth_mbps * 1e6 / 8.0,
        )
        if config.faults.ejb_network is not None:
            config.faults.ejb_network.apply(fabric, self.app_node.hostname)
        self.network = Network(self.env, fabric=fabric, segmentation=config.segmentation)

        self.collector = TraceCollector()
        if config.tracing_enabled:
            for node in (self.web_node, self.app_node, self.db_node):
                self.collector.attach(node, overhead_per_activity=config.probe_overhead)

        self.database = DatabaseTier(
            self.env,
            self.db_node,
            self.network,
            self.ground_truth,
            self.rng,
            listen_port=DB_PORT,
            engine_slots=config.db_engine_slots,
            faults=config.faults,
        )
        self.appserver = AppServerTier(
            self.env,
            self.app_node,
            self.network,
            self.ground_truth,
            self.rng,
            db_ip=DB_IP,
            db_port=DB_PORT,
            listen_port=APP_PORT,
            max_threads=config.max_threads,
            faults=config.faults,
        )
        self.httpd = HttpdTier(
            self.env,
            self.web_node,
            self.network,
            self.ground_truth,
            self.rng,
            app_ip=APP_IP,
            app_port=APP_PORT,
            listen_port=WEB_PORT,
            workers=config.httpd_workers,
        )

        self.emulator = ClientEmulator(
            self.env,
            self.network,
            self.client_nodes,
            frontend_ip=WEB_IP,
            frontend_port=WEB_PORT,
            ground_truth=self.ground_truth,
            rng=self.rng,
            mix=mix_by_name(config.workload),
            num_clients=config.clients,
            think_time=config.think_time,
            stages=config.stages,
        )

        stop_at = config.stages.new_request_deadline
        self.noise_generators = []
        if config.noise.enabled:
            self.noise_generators.append(
                SshNoiseGenerator(
                    self.env,
                    self.network,
                    traced_node=self.web_node,
                    external_node=self.workstation,
                    config=config.noise,
                    rng=self.rng,
                    program="sshd",
                    stop_at=stop_at,
                )
            )
            self.noise_generators.append(
                SshNoiseGenerator(
                    self.env,
                    self.network,
                    traced_node=self.db_node,
                    external_node=self.workstation,
                    config=config.noise,
                    rng=self.rng,
                    program="rlogind",
                    stop_at=stop_at,
                )
            )
            self.noise_generators.append(
                MysqlClientNoiseGenerator(
                    self.env,
                    self.network,
                    external_node=self.workstation,
                    db_ip=DB_IP,
                    db_port=DB_PORT,
                    config=config.noise,
                    rng=self.rng,
                    stop_at=stop_at,
                )
            )

    def run(self) -> RubisRunResult:
        """Run the emulation to completion and gather results."""
        self.emulator.start()
        for generator in self.noise_generators:
            generator.start()
        self.env.run()

        elapsed = self.env.now
        cpu_utilisation = {
            node.hostname: node.cpu_utilisation(elapsed)
            for node in (self.web_node, self.app_node, self.db_node)
        }
        noise_activities = sum(
            getattr(generator, "exchanges", 0) * 2 + getattr(generator, "queries_issued", 0) * 2
            for generator in self.noise_generators
        )
        return RubisRunResult(
            config=self.config,
            metrics=self.emulator.metrics,
            ground_truth=self.ground_truth.completed(),
            records_by_node=self.collector.records_by_node(),
            total_activities=self.collector.total_records(),
            simulated_duration=elapsed,
            requests_issued=self.emulator.issued,
            requests_served_frontend=self.httpd.requests_served,
            cpu_utilisation=cpu_utilisation,
            noise_activities=noise_activities,
        )


def run_rubis(config: Optional[RubisConfig] = None, **overrides) -> RubisRunResult:
    """Build and run one experiment; keyword overrides patch the config."""
    base = config or RubisConfig()
    if overrides:
        base = base.with_overrides(**overrides)
    return RubisDeployment(base).run()
