"""The web tier: an Apache-httpd-like prefork worker pool.

Each worker is a separate single-threaded process (the prefork MPM), which
is what the kernel-level context identifier sees.  A worker handles one
client request at a time: it reads the HTTP request (the BEGIN activity),
proxies it to the application server over a per-worker persistent
connection, waits for the reply and writes the response back to the client
(the END activity) -- the synchronous proxy pattern assumption 2 of the
paper relies on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Generator, Optional

from ...sim.kernel import Environment, Event, Resource
from ...sim.network import Endpoint, Network
from ...sim.node import ExecutionEntity, Node
from ...sim.randomness import RandomStreams
from .groundtruth import GroundTruthRecorder, RubisRequest
from .requests import RequestType


class HttpdTier:
    """The frontend tier of the emulated RUBiS deployment."""

    PROGRAM = "httpd"

    def __init__(
        self,
        env: Environment,
        node: Node,
        network: Network,
        ground_truth: GroundTruthRecorder,
        rng: RandomStreams,
        app_ip: str,
        app_port: int,
        listen_port: int = 80,
        workers: int = 256,
    ) -> None:
        self.env = env
        self.node = node
        self.network = network
        self.ground_truth = ground_truth
        self.rng = rng
        self.app_ip = app_ip
        self.app_port = app_port
        self.listen_port = listen_port
        self.listener = network.listen(node, node.ip, listen_port)
        self.worker_pool = Resource(env, workers)
        self._idle_workers: Deque[ExecutionEntity] = deque(
            node.new_process(self.PROGRAM) for _ in range(workers)
        )
        self._app_endpoints: Dict[ExecutionEntity, Endpoint] = {}
        self.requests_served = 0
        env.process(self._accept_loop())

    # -- connection handling ------------------------------------------------

    def _accept_loop(self) -> Generator[Event, None, None]:
        while True:
            endpoint = yield self.listener.accept()
            self.env.process(self._serve_connection(endpoint))

    def _serve_connection(self, endpoint: Endpoint) -> Generator[Event, None, None]:
        """Serve one client connection (one request per connection)."""
        message = yield from endpoint.wait_data()
        request: Optional[RubisRequest] = message.payload
        if request is None:
            return
        grant = yield self.worker_pool.request()
        worker = self._idle_workers.popleft()
        try:
            yield from self._handle_request(endpoint, worker, message, request)
        finally:
            self._idle_workers.append(worker)
            self.worker_pool.release(grant)

    def _handle_request(
        self,
        endpoint: Endpoint,
        worker: ExecutionEntity,
        message,
        request: RubisRequest,
    ) -> Generator[Event, None, None]:
        request_type: RequestType = request.request_type

        # The worker reads the request: the kernel logs the RECEIVE that the
        # classifier will turn into the BEGIN of this causal path.
        endpoint.read(worker, message)
        self.ground_truth.note_context(request, worker)
        self.ground_truth.note_start(request, self.node.local_time())

        parse_cpu = self.rng.lognormal_like("httpd.parse", request_type.httpd_cpu)
        yield from self.node.compute(parse_cpu + self.node.tracing_overhead(3))

        # Proxy to the application server on this worker's persistent
        # connection (mod_jk style).
        app_endpoint = self._app_endpoint(worker)
        app_endpoint.send(
            worker, request_type.app_request_bytes, request.request_id, request
        )
        reply = yield from app_endpoint.recv(worker)
        del reply

        relay_cpu = self.rng.lognormal_like("httpd.relay", request_type.httpd_reply_cpu)
        yield from self.node.compute(relay_cpu + self.node.tracing_overhead(3))

        # Write the response back to the client: the END of the causal path.
        endpoint.send(worker, request_type.reply_bytes, request.request_id, request)
        self.ground_truth.note_end(request, self.node.local_time())
        self.requests_served += 1

    # -- internals ----------------------------------------------------------------

    def _app_endpoint(self, worker: ExecutionEntity) -> Endpoint:
        """The worker's persistent connection to the application server."""
        endpoint = self._app_endpoints.get(worker)
        if endpoint is None:
            connection = self.network.connect(self.node, self.app_ip, self.app_port)
            endpoint = connection.client
            self._app_endpoints[worker] = endpoint
        return endpoint
