"""The client emulator (compatibility re-export).

The closed-loop session emulator, the workload stages and the
client-side metrics were never RUBiS-specific; they now live in
:mod:`repro.topology.workload` next to the open-loop and bursty drivers
and serve every scenario.  This module keeps the historical import path.
"""

from __future__ import annotations

from ...topology.workload import (
    BurstyEmulator,
    ClientEmulator,
    ClientMetrics,
    CompletedRequest,
    OpenLoopEmulator,
    WorkloadStages,
)

__all__ = [
    "BurstyEmulator",
    "ClientEmulator",
    "ClientMetrics",
    "CompletedRequest",
    "OpenLoopEmulator",
    "WorkloadStages",
]
