"""RUBiS-like three-tier service model (the paper's target application).

Since the topology refactor the three tiers are interpreted from the
``rubis`` entry of the scenario library (:mod:`repro.topology.library`)
by the generic tier engine (:mod:`repro.topology.engine`); this package
keeps the catalogue, the configuration API and the historical import
paths.
"""

from .client import (
    BurstyEmulator,
    ClientEmulator,
    ClientMetrics,
    CompletedRequest,
    OpenLoopEmulator,
    WorkloadStages,
)
from .deployment import (
    APP_IP,
    APP_PORT,
    DB_IP,
    DB_PORT,
    RubisConfig,
    RubisDeployment,
    RubisRunResult,
    WEB_IP,
    WEB_PORT,
    run_rubis,
)
from .groundtruth import GroundTruthRecorder, RubisRequest
from .requests import (
    BROWSE_ONLY_MIX,
    CATALOG,
    DEFAULT_MIX,
    QuerySpec,
    RequestType,
    VIEW_ITEM,
    WORKLOAD_MIXES,
    expected_query_count,
    expected_thread_holding_time,
    mix_by_name,
)

__all__ = [
    "APP_IP",
    "APP_PORT",
    "BROWSE_ONLY_MIX",
    "BurstyEmulator",
    "CATALOG",
    "ClientEmulator",
    "ClientMetrics",
    "CompletedRequest",
    "DB_IP",
    "DB_PORT",
    "DEFAULT_MIX",
    "GroundTruthRecorder",
    "OpenLoopEmulator",
    "QuerySpec",
    "RequestType",
    "RubisConfig",
    "RubisDeployment",
    "RubisRequest",
    "RubisRunResult",
    "VIEW_ITEM",
    "WEB_IP",
    "WEB_PORT",
    "WORKLOAD_MIXES",
    "WorkloadStages",
    "expected_query_count",
    "expected_thread_holding_time",
    "mix_by_name",
    "run_rubis",
]
