"""RUBiS-like three-tier service model (the paper's target application)."""

from .appserver import AppServerTier
from .client import ClientEmulator, ClientMetrics, CompletedRequest, WorkloadStages
from .database import DatabaseTier
from .deployment import (
    APP_IP,
    APP_PORT,
    DB_IP,
    DB_PORT,
    RubisConfig,
    RubisDeployment,
    RubisRunResult,
    WEB_IP,
    WEB_PORT,
    run_rubis,
)
from .groundtruth import GroundTruthRecorder, RubisRequest
from .httpd import HttpdTier
from .requests import (
    BROWSE_ONLY_MIX,
    CATALOG,
    DEFAULT_MIX,
    QuerySpec,
    RequestType,
    VIEW_ITEM,
    WORKLOAD_MIXES,
    expected_query_count,
    expected_thread_holding_time,
    mix_by_name,
)

__all__ = [
    "APP_IP",
    "APP_PORT",
    "AppServerTier",
    "BROWSE_ONLY_MIX",
    "CATALOG",
    "ClientEmulator",
    "ClientMetrics",
    "CompletedRequest",
    "DB_IP",
    "DB_PORT",
    "DEFAULT_MIX",
    "DatabaseTier",
    "GroundTruthRecorder",
    "HttpdTier",
    "QuerySpec",
    "RequestType",
    "RubisConfig",
    "RubisDeployment",
    "RubisRequest",
    "RubisRunResult",
    "VIEW_ITEM",
    "WEB_IP",
    "WEB_PORT",
    "WORKLOAD_MIXES",
    "WorkloadStages",
    "expected_query_count",
    "expected_thread_holding_time",
    "mix_by_name",
    "run_rubis",
]
