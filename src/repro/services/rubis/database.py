"""The database tier: a MySQL-like server with per-connection threads.

``mysqld`` runs as one process and creates a dedicated kernel thread per
client connection -- the application tier's pool threads each hold one
persistent connection, and so does the external noise client.  Query
execution contends for a bounded set of *engine slots* (InnoDB-style
concurrency tickets): waiting for a slot happens before the connection
thread reads the query off the socket, so database congestion surfaces in
the traces as ``java2mysqld`` interaction latency, while execution time
itself is ``mysqld2mysqld`` component latency.

The Database_Lock fault (abnormal case 2) adds lock wait to queries that
touch the ``items`` table while they hold their engine slot, which both
inflates mysqld-internal latency and backs up the queue in front of the
engine -- the combined growth the paper observes.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from ...sim.kernel import Environment, Event, Resource
from ...sim.network import Endpoint, Network
from ...sim.node import ExecutionEntity, Node
from ...sim.randomness import RandomStreams
from ..faults import FaultConfig
from .groundtruth import GroundTruthRecorder, RubisRequest
from .requests import QuerySpec


class DatabaseTier:
    """The storage tier of the emulated RUBiS deployment."""

    PROGRAM = "mysqld"

    def __init__(
        self,
        env: Environment,
        node: Node,
        network: Network,
        ground_truth: GroundTruthRecorder,
        rng: RandomStreams,
        listen_port: int = 3306,
        engine_slots: int = 18,
        faults: Optional[FaultConfig] = None,
    ) -> None:
        self.env = env
        self.node = node
        self.network = network
        self.ground_truth = ground_truth
        self.rng = rng
        self.listen_port = listen_port
        self.faults = faults or FaultConfig.none()
        self.listener = network.listen(node, node.ip, listen_port)
        self.process = node.new_process(self.PROGRAM)
        self.engine = Resource(env, engine_slots)
        self.queries_served = 0
        self.noise_queries_served = 0
        env.process(self._accept_loop())

    # -- connection handling ------------------------------------------------

    def _accept_loop(self) -> Generator[Event, None, None]:
        while True:
            endpoint = yield self.listener.accept()
            self.env.process(self._serve_connection(endpoint))

    def _serve_connection(self, endpoint: Endpoint) -> Generator[Event, None, None]:
        """Dedicated per-connection thread: handle queries sequentially."""
        thread = self.node.new_thread(self.process)
        while True:
            message = yield from endpoint.wait_data()
            yield from self._handle_query(endpoint, thread, message)

    def _handle_query(
        self, endpoint: Endpoint, thread: ExecutionEntity, message
    ) -> Generator[Event, None, None]:
        payload: Tuple[Optional[RubisRequest], QuerySpec] = message.payload
        request, query = payload

        # Connection/protocol dispatch before the thread reads the query;
        # seen by the tracer as part of the java -> mysqld interaction.
        dispatch = self.rng.lognormal_like("db.dispatch", query.dispatch_delay)
        if dispatch > 0:
            yield self.env.timeout(dispatch)

        # Wait for an engine slot (InnoDB concurrency ticket).  Congestion
        # here also delays the read below, i.e. it is charged to the
        # interaction, matching how a loaded database looks from outside.
        grant = yield self.engine.request()
        try:
            endpoint.read(thread, message)
            self.ground_truth.note_context(request, thread)

            cpu = self.rng.lognormal_like("db.cpu", query.db_cpu)
            yield from self.node.compute(cpu + self.node.tracing_overhead(2))

            engine_delay = self.rng.lognormal_like("db.engine", query.engine_delay)
            if (
                self.faults.database_lock is not None
                and query.touches_items
                and request is not None
            ):
                # Abnormal case 2: the items table is locked; queries that
                # touch it wait for the lock while holding their slot.
                engine_delay += self.faults.database_lock.sample(self.rng)
            if engine_delay > 0:
                yield self.env.timeout(engine_delay)
        finally:
            self.engine.release(grant)

        request_id = request.request_id if request is not None else None
        endpoint.send(thread, query.reply_bytes, request_id, (request, query))
        if request is None:
            self.noise_queries_served += 1
        else:
            self.queries_served += 1
