"""The application tier: a JBoss-like server with a bounded thread pool.

One JVM process owns a pool of ``MaxThreads`` worker threads (the
misconfigured parameter of Section 5.4.1).  A request arriving on one of
the persistent connections from the web tier waits for a free pool thread;
only when a thread picks it up does the kernel-level ``tcp_recvmsg``
happen, so thread-pool queueing is visible to the tracer as
``httpd2java`` interaction latency -- which is exactly how the paper's
misconfiguration shows up.

Each pool thread keeps a persistent connection to the database and issues
the request type's queries synchronously, then writes the reply back to
the web tier and returns to the pool (thread reuse across requests, the
case guarded by Fig. 3 lines 29-32).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generator, Optional

from ...sim.kernel import Environment, Event, Resource
from ...sim.network import Endpoint, Network
from ...sim.node import ExecutionEntity, Node
from ...sim.randomness import RandomStreams
from ..faults import FaultConfig
from .groundtruth import GroundTruthRecorder, RubisRequest
from .requests import RequestType


class AppServerTier:
    """The middle tier of the emulated RUBiS deployment."""

    PROGRAM = "java"

    def __init__(
        self,
        env: Environment,
        node: Node,
        network: Network,
        ground_truth: GroundTruthRecorder,
        rng: RandomStreams,
        db_ip: str,
        db_port: int,
        listen_port: int = 8080,
        max_threads: int = 40,
        faults: Optional[FaultConfig] = None,
    ) -> None:
        self.env = env
        self.node = node
        self.network = network
        self.ground_truth = ground_truth
        self.rng = rng
        self.db_ip = db_ip
        self.db_port = db_port
        self.listen_port = listen_port
        self.max_threads = max_threads
        self.faults = faults or FaultConfig.none()
        self.listener = network.listen(node, node.ip, listen_port)
        self.process = node.new_process(self.PROGRAM)
        self.thread_pool = Resource(env, max_threads)
        self._idle_threads: Deque[ExecutionEntity] = deque(
            node.new_thread(self.process) for _ in range(max_threads)
        )
        self._db_endpoints: Dict[ExecutionEntity, Endpoint] = {}
        self.requests_served = 0
        env.process(self._accept_loop())

    # -- connection handling ------------------------------------------------

    def _accept_loop(self) -> Generator[Event, None, None]:
        while True:
            endpoint = yield self.listener.accept()
            self.env.process(self._serve_connection(endpoint))

    def _serve_connection(self, endpoint: Endpoint) -> Generator[Event, None, None]:
        """Handle the stream of requests on one persistent web-tier connection.

        The web-tier worker on the other end is synchronous, so requests on
        one connection are strictly sequential.
        """
        while True:
            message = yield from endpoint.wait_data()
            yield from self._handle_request(endpoint, message)

    def _handle_request(self, endpoint: Endpoint, message) -> Generator[Event, None, None]:
        request: Optional[RubisRequest] = message.payload
        if request is None:
            return
        request_type: RequestType = request.request_type

        # Wait for a free pool thread; with MaxThreads=40 under high load
        # this wait dominates and surfaces as httpd2java latency.
        grant = yield self.thread_pool.request()
        thread = self._idle_threads.popleft()
        try:
            endpoint.read(thread, message)
            self.ground_truth.note_context(request, thread)

            business_cpu = self.rng.lognormal_like("app.business", request_type.app_cpu)
            yield from self.node.compute(business_cpu + self.node.tracing_overhead(3))

            if self.faults.ejb_delay is not None:
                # Abnormal case 1: a random delay inside the EJB layer.
                yield self.env.timeout(self.faults.ejb_delay.sample(self.rng))

            db_endpoint = self._db_endpoint(thread)
            for query in request_type.queries:
                db_endpoint.send(thread, query.query_bytes, request.request_id, (request, query))
                reply = yield from db_endpoint.recv(thread)
                del reply
                parse_cpu = self.rng.lognormal_like(
                    "app.query_parse", request_type.app_per_query_cpu
                )
                yield from self.node.compute(parse_cpu + self.node.tracing_overhead(2))

            render_cpu = self.rng.lognormal_like("app.render", request_type.app_reply_cpu)
            yield from self.node.compute(render_cpu + self.node.tracing_overhead(1))

            endpoint.send(thread, request_type.app_reply_bytes, request.request_id, request)
            self.requests_served += 1
        finally:
            self._idle_threads.append(thread)
            self.thread_pool.release(grant)

    # -- internals ----------------------------------------------------------------

    def _db_endpoint(self, thread: ExecutionEntity) -> Endpoint:
        """The pool thread's persistent connection to the database."""
        endpoint = self._db_endpoints.get(thread)
        if endpoint is None:
            connection = self.network.connect(self.node, self.db_ip, self.db_port)
            endpoint = connection.client
            self._db_endpoints[thread] = endpoint
        return endpoint

    @property
    def thread_queue_length(self) -> int:
        """Requests currently waiting for a pool thread (diagnostics)."""
        return self.thread_pool.queue_length
