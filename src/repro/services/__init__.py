"""Simulated services: the RUBiS-like target application, fault injection
and noise traffic generators."""

from .faults import DatabaseLockFault, EjbDelayFault, EjbNetworkFault, FaultConfig
from .noise import MysqlClientNoiseGenerator, NoiseConfig, SshNoiseGenerator

__all__ = [
    "DatabaseLockFault",
    "EjbDelayFault",
    "EjbNetworkFault",
    "FaultConfig",
    "MysqlClientNoiseGenerator",
    "NoiseConfig",
    "SshNoiseGenerator",
]
