"""Streaming ranker: candidate selection over growing per-node streams.

The batch :class:`repro.core.ranker.Ranker` receives every node's complete
activity list up front; several of its decisions peek at the *future* of a
stream (the ``is_noise`` test and the blocked-RECEIVE test both ask "does a
matching SEND exist anywhere later in some source?").  Online, the future
has not arrived yet, so those decisions can only be finalised for
activities old enough that no still-unseen activity could change the
answer.

:class:`StreamingRanker` keeps the batch ranker's selection logic (Rule 1,
Rule 2, ``is_noise``, head swaps) untouched and adds two things:

* **growing sources** (:class:`GrowingSource`) that accept activities as
  they are ingested, instead of a frozen, pre-sorted list;
* a **delivery ceiling** derived from the stream watermark: candidates
  are only delivered once every node's ingestion frontier has advanced
  past their timestamp by at least the *reorder slack* (sliding window +
  twice the clock-skew bound).  Below the ceiling, every SEND that could
  match an already-seen RECEIVE has provably been ingested, so the
  streaming ranker makes exactly the decisions the batch ranker would --
  this is what makes the streaming and batch paths produce identical
  CAGs (verified by ``tests/test_stream.py``).

When the stream ends, :meth:`StreamingRanker.seal` lifts the ceiling and
the tail drains with full batch semantics.
"""

from __future__ import annotations

import bisect
import math
from collections import Counter, deque
from typing import Dict, Iterable, List, Optional

from ..core.activity import Activity, sort_key
from ..core.index_maps import MessageMap
from ..core.ranker import ActivitySource, Ranker


class GrowingSource(ActivitySource):
    """A per-node activity source that can be extended while being consumed.

    Activities are expected to arrive in (approximately) the node's local
    clock order -- the natural order of a node's own log file.  Mildly
    out-of-order arrivals are tolerated by insorting into the unconsumed
    region; an activity older than something already fetched is appended
    at the consumption point (it cannot be sequenced earlier any more).
    """

    def __init__(self, node, registry: Optional[Counter] = None) -> None:
        super().__init__(node, [], registry=registry)
        self._sort_keys: List[tuple] = []
        self._frontier: Optional[float] = None

    def extend(self, activities: Iterable[Activity]) -> None:
        """Add newly-ingested activities to the unconsumed tail.

        The batch source's columnar shadows (``_ts``, ``_send_keys``) are
        maintained in lockstep with the activity list -- its bisecting
        ``take_until`` and send-key bookkeeping read only those columns.
        """
        self._trim_consumed()
        registry = self._registry
        ts_column = self._ts
        send_keys = self._send_keys
        for activity in sorted(activities, key=sort_key):
            key = sort_key(activity)
            send_key = activity.message_key if activity.send_like else None
            if not self._sort_keys or key >= self._sort_keys[-1]:
                self._activities.append(activity)
                self._sort_keys.append(key)
                ts_column.append(activity.timestamp)
                send_keys.append(send_key)
            else:
                index = max(
                    self._position,
                    bisect.bisect_right(self._sort_keys, key),
                )
                self._activities.insert(index, activity)
                self._sort_keys.insert(index, key)
                ts_column.insert(index, activity.timestamp)
                send_keys.insert(index, send_key)
            if send_key is not None:
                self._future_send_keys[send_key] += 1
                if registry is not None:
                    registry[send_key] += 1
            if self._frontier is None or activity.timestamp > self._frontier:
                self._frontier = activity.timestamp
        self._sync_next_timestamp()

    def latest_timestamp(self) -> Optional[float]:
        """Local timestamp of the newest activity ever ingested (the
        node's ingestion frontier), or ``None`` before anything arrived."""
        return self._frontier

    def _trim_consumed(self) -> None:
        """Release already-fetched activities (unlike the batch source,
        which keeps its whole list, a stream must stay bounded)."""
        if self._position:
            del self._activities[: self._position]
            del self._sort_keys[: self._position]
            del self._ts[: self._position]
            del self._send_keys[: self._position]
            self._position = 0


class StreamingRanker(Ranker):
    """A :class:`Ranker` over growing sources with watermark-gated delivery.

    Parameters
    ----------
    mmap:
        The engine's message map (shared, exactly as in the batch path).
    window:
        Sliding-time-window size in seconds.
    skew_bound:
        Upper bound on the absolute clock skew of any node, in seconds.
        Together with the window it determines the *reorder slack*: a
        candidate at local time ``t`` is only delivered once every node
        has ingested past ``t + window + 2 * skew_bound``.  Overestimating
        the bound only delays emission by the overestimate; it never
        changes the output.
    """

    def __init__(
        self,
        mmap: MessageMap,
        window: float = 0.010,
        skew_bound: float = 0.005,
    ) -> None:
        super().__init__({}, mmap, window=window)
        if skew_bound < 0:
            raise ValueError("skew_bound must be non-negative")
        # Strictly greater than window + 2*skew so that activities above
        # the watermark can never fall inside a refill limit computed from
        # a delivered candidate (see the equivalence argument above).
        self._slack = window + 2.0 * skew_bound + 1e-9
        self._sealed = False
        self.ceiling = -math.inf  # nothing deliverable until data arrives

    # -- ingestion ----------------------------------------------------------

    def ingest(self, activities: Iterable[Activity]) -> int:
        """Route activities to their per-node sources; returns the count.

        New nodes are registered on first sight.  Call :meth:`rank` (in a
        loop, until it returns ``None``) afterwards to drain everything
        the advanced watermark makes decidable.
        """
        count = 0
        per_node: Dict[int, List[Activity]] = {}
        for activity in activities:
            per_node.setdefault(activity.node_key, []).append(activity)
            count += 1
        for node, batch in per_node.items():
            source = self._sources.get(node)
            if source is None:
                source = GrowingSource(node, registry=self._future_send_keys)
                self._sources[node] = source
                self._queues[node] = deque()
                # Grow the kernel head columns: new node, new sweep slot
                # (appended, so the established scan order is preserved).
                self._register_slot(node)
            source.extend(batch)
        if count:
            # Source frontiers moved: both cached minima are stale.
            self._low_dirty = True
            self._source_low_dirty = True
        if not self._sealed:
            self._update_ceiling()
        return count

    def seal(self) -> None:
        """Mark the stream as ended: lift the ceiling so the tail drains
        with exact batch semantics (including the noise fallback)."""
        self._sealed = True
        self.ceiling = math.inf

    @property
    def sealed(self) -> bool:
        return self._sealed

    @property
    def watermark(self) -> float:
        """The current delivery ceiling (-inf before any data)."""
        return self.ceiling

    # -- internals ----------------------------------------------------------

    def _update_ceiling(self) -> None:
        # The watermark is the slowest node's ingestion frontier, minus
        # the reorder slack.  A node that stops logging holds the
        # watermark back until seal() -- the standard behaviour of
        # watermark-based stream processors.
        frontiers = [
            source.latest_timestamp()
            for source in self._sources.values()
            if source.latest_timestamp() is not None
        ]
        if frontiers:
            self.ceiling = min(frontiers) - self._slack
