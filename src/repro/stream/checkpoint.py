"""Periodic engine checkpoints: crash-resumable streaming correlation.

A days-long streaming run that dies should not have to replay the whole
trace.  The streaming engine's live state is small and self-contained --
the connection/message index maps, the open (unfinished) CAGs, the
ranker's reorder buffers, and the interner tables that give every key its
integer id -- so the whole of it pickles into a compact blob.
:class:`StreamingCorrelator` writes one at a configurable candidate
cadence, and ``repro stream --resume <ckpt>`` restarts mid-trace with a
final output digest-identical to the uninterrupted run.

Checkpoint file format (version 1): a single pickled dict with

``magic`` / ``version``
    Sanity markers; mismatches fail fast with a clear error instead of
    unpickling garbage.
``ingested_count``
    How many activities the engine had ingested when the snapshot was
    taken.  On resume the driver skips exactly this prefix of the
    (deterministically re-sorted) trace.
``config``
    The streaming knobs the snapshot was taken under (window, horizon,
    skew bound, chunk size, sample interval).  Resuming with different
    knobs would silently change the output, so the loader exposes the
    dict and the driver refuses mismatches.
``interner``
    :meth:`repro.core.interning.KeyInterner.snapshot` of the global
    interner -- the id assignments the pickled engine state refers to.
    It is installed *before* the engine blob is unpickled so the revived
    keys land in a compatible universe.
``engine_blob`` / ``engine_sha256``
    The pickled :class:`~repro.stream.incremental.IncrementalEngine` and
    its checksum.  The checksum turns a torn or corrupted file into a
    loud error rather than a subtly wrong correlation.

Writes are atomic (temp file + ``os.replace`` after fsync), so a crash
*during* checkpointing leaves the previous checkpoint intact.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from typing import Any, Dict

from ..core.interning import INTERNER

MAGIC = "precisetracer-stream-checkpoint"
VERSION = 1


@dataclass
class StreamCheckpoint:
    """A loaded checkpoint: the revived engine plus its provenance."""

    ingested_count: int
    config: Dict[str, Any]
    engine: Any  # IncrementalEngine; typed loosely to avoid an import cycle


def save_checkpoint(
    path: str,
    engine: Any,
    ingested_count: int,
    config: Dict[str, Any],
) -> None:
    """Atomically write ``engine`` state to ``path``.

    The interner snapshot is taken at the same moment as the engine
    pickle, so the blob's integer key ids are guaranteed resolvable on
    load.
    """
    engine_blob = pickle.dumps(engine, protocol=pickle.HIGHEST_PROTOCOL)
    payload = {
        "magic": MAGIC,
        "version": VERSION,
        "ingested_count": int(ingested_count),
        "config": dict(config),
        "interner": INTERNER.snapshot(),
        "engine_blob": engine_blob,
        "engine_sha256": hashlib.sha256(engine_blob).hexdigest(),
    }
    directory = os.path.dirname(os.path.abspath(path))
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    # Persist the rename too, so the checkpoint survives power loss, not
    # just process death.
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def load_checkpoint(path: str) -> StreamCheckpoint:
    """Load and validate a checkpoint written by :func:`save_checkpoint`.

    Installs the snapshot's interner state into the process-global
    interner *before* unpickling the engine; raises :class:`ValueError`
    on any structural problem (wrong magic, unsupported version,
    checksum mismatch, incompatible interner state).
    """
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    if not isinstance(payload, dict) or payload.get("magic") != MAGIC:
        raise ValueError(f"{path} is not a PreciseTracer stream checkpoint")
    version = payload.get("version")
    if version != VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version!r} (expected {VERSION})"
        )
    engine_blob = payload["engine_blob"]
    digest = hashlib.sha256(engine_blob).hexdigest()
    if digest != payload["engine_sha256"]:
        raise ValueError(f"checkpoint {path} is corrupted (engine checksum mismatch)")
    # Key ids first: the engine blob references interned keys by id.
    INTERNER.install(payload["interner"])
    engine = pickle.loads(engine_blob)
    return StreamCheckpoint(
        ingested_count=payload["ingested_count"],
        config=dict(payload["config"]),
        engine=engine,
    )
