"""Streaming correlation subsystem: online, bounded-memory, shardable.

The batch pipeline (``repro.core``) reads a complete trace and correlates
it once.  This package is its online counterpart, the seam every scaling
direction (async ingestion, multi-backend storage, distributed sharding)
builds on:

==========================  ==================================================
:class:`IncrementalEngine`  push-interface engine: ingest activity chunks,
                            emit each CAG the moment its END correlates,
                            evict stale state past a watermark horizon
:class:`StreamingCorrelator`  one-shot streaming drive with the same
                            ``correlate()`` shape as the batch Correlator
:class:`StreamingRanker`    watermark-gated candidate selection over
                            growing per-node sources
:class:`ShardedCorrelator`  partition a trace into causally-closed shards
                            (union-find over context/connection keys) and
                            correlate them in parallel
:class:`FileTailSource`     ``tail -f``-style chunked log file reader
:class:`IteratorSource`     chunked reader over any line iterable
:class:`ActivityStream`     raw line -> typed activity classification step
==========================  ==================================================

Equivalence guarantee: with eviction disabled (``horizon=None``) the
streaming path produces exactly the same finished CAGs -- same edge
multisets, same ranked latency report -- as the batch path; with a finite
horizon, only requests idle longer than the horizon can differ.  See
``docs/architecture.md`` and ``tests/test_stream.py``.
"""

from .checkpoint import StreamCheckpoint, load_checkpoint, save_checkpoint
from .incremental import IncrementalEngine, StreamingCorrelator
from .ranker import GrowingSource, StreamingRanker
from .reader import ActivityStream, FileTailSource, IteratorSource, iter_chunks
from .scheduler import (
    SCHEDULE_KINDS,
    ShardPlan,
    WorkStealingDispatcher,
    make_plan,
)
from .sharded import (
    MergeTree,
    ShardedCorrelator,
    canonical_part,
    merge_engine_stats,
    merge_pair,
    merge_ranker_stats,
    merge_results,
    partition_activities,
    partition_components,
)

__all__ = [
    "ActivityStream",
    "FileTailSource",
    "GrowingSource",
    "IncrementalEngine",
    "IteratorSource",
    "MergeTree",
    "SCHEDULE_KINDS",
    "ShardPlan",
    "ShardedCorrelator",
    "StreamCheckpoint",
    "StreamingCorrelator",
    "StreamingRanker",
    "WorkStealingDispatcher",
    "canonical_part",
    "iter_chunks",
    "load_checkpoint",
    "make_plan",
    "merge_engine_stats",
    "merge_pair",
    "merge_ranker_stats",
    "merge_results",
    "partition_activities",
    "partition_components",
    "save_checkpoint",
]
