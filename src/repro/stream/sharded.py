"""Sharded correlation: partition the trace, correlate shards in parallel.

Correlation decisions only ever relate activities through two keys: the
*context identifier* (adjacent-context edges, ``cmap``) and the
*connection 4-tuple* (message edges, ``mmap``).  Treating both key kinds
as nodes of one graph -- with an edge between an activity's context key
and its connection key -- the connected components of that graph are
exactly the finest partition of the trace that is **causally closed**: no
context or message relation can cross a component boundary.  Each
component can therefore be correlated completely independently, and the
union of the per-shard results is *identical* to the batch result.

:func:`partition_activities` computes those components with a union-find
pass; :class:`ShardedCorrelator` schedules them onto a worker pool with
one of three policies (see :mod:`repro.stream.scheduler`) and gathers
the per-shard results through an associative **merge tree** back into
one :class:`~repro.core.correlator.CorrelationResult`:

``schedule="static"``
    The historical behaviour: components folded round-robin into at
    most ``max_shards`` buckets, one correlation task per bucket.
``schedule="balanced"``
    Components weighted by activity count and packed LPT-greedily onto
    the shard slots, one task per component.
``schedule="stealing"``
    The balanced plan plus run-time work stealing: an idle slot takes
    the next component from the tail of the most-loaded queue, which is
    what fixes the straggler problem of skewed component distributions
    (a replica group or fan-out tier routinely produces one giant
    component next to many small ones).

Because the gather is associative and every merge step keeps the CAG
lists canonically ordered (by BEGIN timestamp, then creation sequence),
the merged output is byte-identical whatever order shards complete in --
the property the cross-backend golden digests pin down.

Two practical notes:

* Shard count is workload-dependent.  Components merge whenever requests
  share an execution entity or a connection, so a service with heavily
  recycled worker pools and persistent connections may collapse into few
  components (in the degenerate case, one -- then sharding gracefully
  reduces to the batch path, still correct, just not parallel).  Client
  churn, per-request connections and multi-frontend deployments shard
  well.
* Two executors are available (``executor="thread"`` is the default).
  Threads share the Python runtime, so the speed-up on CPython is bounded
  by the GIL for pure-Python work; ``executor="process"`` ships each
  shard to a worker process (activities and results are pickled across
  the boundary), buying true CPU parallelism at a serialisation cost
  that pays off on large shards.  Either way the partitioning itself is
  the architectural seam a distributed driver would use to place shards
  on different machines.  Process workers correlate *copies*, so the
  caller's activity objects are left unmutated; the returned CAGs are
  byte-identical either way.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import fields, replace
from heapq import merge as _heap_merge
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..core.activity import Activity, sort_key
from ..core.correlator import CorrelationResult, Correlator
from ..core.engine import EngineStats
from ..core.interning import INTERNER
from ..core.ranker import RankerStats
from .scheduler import (
    SCHEDULE_KINDS,
    ShardPlan,
    WorkStealingDispatcher,
    make_plan,
)


class _UnionFind:
    """Union-find over arbitrary hashable keys (path halving + rank)."""

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}

    def find(self, key: Hashable) -> Hashable:
        parent = self._parent.setdefault(key, key)
        if parent == key:
            self._rank.setdefault(key, 0)
            return key
        root = key
        while self._parent[root] != root:
            self._parent[root] = self._parent[self._parent[root]]
            root = self._parent[root]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1


def partition_components(activities: Iterable[Activity]) -> List[List[Activity]]:
    """The causally-closed components of a trace, in first-seen order.

    Each activity links its context key and its (undirected) connection
    key in a union-find; activities of one connected component form one
    sub-trace, preserving their original relative order.  This is the
    finest causally-closed partition -- every schedule packs *these*.
    """
    uf = _UnionFind()
    ordered = list(activities)
    # Build each activity's graph keys once and reuse them for the find
    # pass -- tuple construction is the dominant cost of partitioning a
    # large trace, and ``context_key`` is the interned int already cached
    # on the activity.
    ctx_keys: List[Tuple[str, int]] = []
    for activity in ordered:
        ctx = ("ctx", activity.context_key)
        ctx_keys.append(ctx)
        uf.union(ctx, ("conn", activity.message.undirected_key()))

    by_component: Dict[Hashable, List[Activity]] = {}
    for activity, ctx in zip(ordered, ctx_keys):
        root = uf.find(ctx)
        by_component.setdefault(root, []).append(activity)

    return list(by_component.values())


def partition_activities(
    activities: Iterable[Activity],
    max_shards: Optional[int] = None,
) -> List[List[Activity]]:
    """Split a trace into causally-closed shards (the static policy).

    With ``max_shards`` set, components are folded round-robin (in order
    of each component's earliest activity) into that many buckets, which
    balances bucket *counts* -- not costs -- and keeps the causal-closure
    property (a bucket is a union of components).  Bucket assignment is
    deterministic for a given trace but not stable across traces --
    adding or removing a component may shift later components' buckets.
    Cost-aware packing lives in :mod:`repro.stream.scheduler`.
    """
    components = partition_components(activities)
    if max_shards is None or max_shards <= 0 or len(components) <= max_shards:
        return components

    buckets: List[List[Activity]] = [[] for _ in range(max_shards)]
    for index, component in enumerate(
        sorted(components, key=lambda c: sort_key(c[0]))
    ):
        buckets[index % max_shards].extend(component)
    return [bucket for bucket in buckets if bucket]


def _sum_stats(cls, parts):
    """Field-wise sum of same-typed stats dataclasses."""
    merged = cls()
    for part in parts:
        for f in fields(cls):
            setattr(merged, f.name, getattr(merged, f.name) + getattr(part, f.name))
    return merged


def merge_engine_stats(parts: Sequence[EngineStats]) -> EngineStats:
    """Sum per-shard engine counters into one report."""
    return _sum_stats(EngineStats, parts)


def merge_ranker_stats(parts: Sequence[RankerStats]) -> RankerStats:
    """Combine per-shard ranker counters (sums; ``max_buffered`` is the
    concurrent worst case, so shard maxima are *summed* too -- every shard
    may sit at its peak at the same instant)."""
    return _sum_stats(RankerStats, parts)


def _cag_order(cag) -> Tuple[float, int]:
    """Canonical CAG order: BEGIN timestamp, then creation sequence."""
    return (cag.begin_timestamp, cag.root.seq)


def canonical_part(part: CorrelationResult) -> CorrelationResult:
    """A shard result with its CAG lists in canonical order.

    Canonicalising each leaf once is what makes :func:`merge_pair` a
    linear two-way list merge, and what makes the whole gather
    *associative*: every intermediate result is canonically ordered, so
    any merge tree over the same leaves produces the same lists.
    """
    return replace(
        part,
        cags=sorted(part.cags, key=_cag_order),
        incomplete_cags=sorted(part.incomplete_cags, key=_cag_order),
    )


def merge_pair(a: CorrelationResult, b: CorrelationResult) -> CorrelationResult:
    """Merge two canonically-ordered partial results into one.

    Every field combines associatively: CAG lists by ordered two-way
    merge, stats and peak counters by field-wise sum (peaks are summed
    because all shards are resident at once in the parallel driver --
    the honest concurrent working-set bound), ``correlation_time`` by
    sum (total busy time; the driver overwrites the final result's value
    with the wall-clock elapsed).  Commutative too, apart from the
    stable tie-break of equal sort keys -- which cannot occur across
    shards, since ``seq`` is globally unique.
    """
    return replace(
        a,
        cags=list(_heap_merge(a.cags, b.cags, key=_cag_order)),
        incomplete_cags=list(
            _heap_merge(a.incomplete_cags, b.incomplete_cags, key=_cag_order)
        ),
        correlation_time=a.correlation_time + b.correlation_time,
        peak_buffered_activities=a.peak_buffered_activities
        + b.peak_buffered_activities,
        peak_state_entries=a.peak_state_entries + b.peak_state_entries,
        ranker_stats=merge_ranker_stats([a.ranker_stats, b.ranker_stats]),
        engine_stats=merge_engine_stats([a.engine_stats, b.engine_stats]),
        total_activities=a.total_activities + b.total_activities,
        final_state_entries=a.final_state_entries + b.final_state_entries,
        final_open_tombstones=a.final_open_tombstones + b.final_open_tombstones,
    )


class MergeTree:
    """Incremental pairwise reduction of shard results.

    Results are pushed as they complete; the tree keeps at most
    ``log2(pushed)`` partial results alive (the classic binary-counter
    fold: a completed pair merges immediately, freeing both halves), so
    the driver never serialises O(shards) merge work at the end and
    never holds every unmerged part at once.  Because :func:`merge_pair`
    is associative over canonical parts, the final result is independent
    of completion order -- :func:`merge_results` relies on exactly that.
    """

    def __init__(self) -> None:
        # _levels[rank] holds at most one partial result of 2**rank leaves.
        self._levels: List[Optional[CorrelationResult]] = []

    def push(self, part: CorrelationResult) -> None:
        """Add one *canonically ordered* shard result (see
        :func:`canonical_part`)."""
        rank = 0
        while rank < len(self._levels) and self._levels[rank] is not None:
            part = merge_pair(self._levels[rank], part)
            self._levels[rank] = None
            rank += 1
        if rank == len(self._levels):
            self._levels.append(part)
        else:
            self._levels[rank] = part

    def result(self) -> Optional[CorrelationResult]:
        """Fold the remaining partials (``None`` when nothing was pushed)."""
        merged: Optional[CorrelationResult] = None
        for partial in self._levels:
            if partial is None:
                continue
            merged = partial if merged is None else merge_pair(partial, merged)
        return merged


def merge_results(
    parts: Sequence[CorrelationResult],
    window: float,
    elapsed: float,
    total_activities: int,
    shard_sizes: Optional[Sequence[int]] = None,
) -> CorrelationResult:
    """Merge per-shard correlation results into one batch-shaped result.

    The gather is a pairwise merge tree over canonicalised parts, so the
    merged CAG lists -- and with them the ranked latency report computed
    from them -- are deterministic regardless of shard completion *or*
    argument order (``tests/test_sharded_scaling.py`` pins this down
    with shuffled part orders).  Peak memory numbers are summed across
    shards: with all shards resident at once (the parallel driver's
    situation) that is the honest working-set bound.
    """
    tree = MergeTree()
    for part in parts:
        tree.push(canonical_part(part))
    merged = tree.result()
    if merged is None:
        merged = CorrelationResult(
            cags=[],
            incomplete_cags=[],
            correlation_time=0.0,
            peak_buffered_activities=0,
            peak_state_entries=0,
            ranker_stats=RankerStats(),
            engine_stats=EngineStats(),
            window=window,
            total_activities=0,
        )
    return replace(
        merged,
        correlation_time=elapsed,
        window=window,
        total_activities=total_activities,
        shard_sizes=list(shard_sizes) if shard_sizes is not None else None,
    )


def _correlate_shard(
    window: float,
    sampling,
    decisions,
    shard: Sequence[Activity],
    interner_snapshot=None,
) -> CorrelationResult:
    """Correlate one shard (module-level so process pools can pickle it).

    ``sampling`` / ``decisions`` carry the request-sampling policy and
    its whole-trace frozen decision set: the spec is a frozen dataclass
    and the decisions a frozenset of key tuples, so both cross the
    pickle boundary to process-pool workers unchanged.

    ``interner_snapshot`` rebuilds the parent's key space in a worker
    process before the shard is touched: unpickled activities carry the
    parent's interned ``context_key``/``message_key``/``node_key`` ints
    verbatim (slots dataclasses do not re-run ``__post_init__``), so the
    worker's interner must assign the identical ids -- otherwise any
    activity *constructed* in the worker (none today, but nothing should
    rely on that) would live in a conflicting key space.  With the fork
    start method the child inherits the parent's interner and the
    install degenerates to a no-op; spawn starts need it.
    """
    if interner_snapshot is not None:
        INTERNER.install(interner_snapshot)
    return Correlator(
        window=window, sampling=sampling, sampling_decisions=decisions
    ).correlate(shard)


def _correlate_shard_timed(
    window: float,
    sampling,
    decisions,
    shard: Sequence[Activity],
    interner_snapshot=None,
) -> Tuple[CorrelationResult, float]:
    """:func:`_correlate_shard` plus the worker's own busy-time measurement.

    The worker times itself with ``thread_time`` -- CPU time of the
    executing thread alone -- so the driver's per-slot busy accounting
    (and the scaling figure's makespan) excludes queueing, pickle
    transfer and, crucially, GIL/scheduler waits while *other* workers
    run: on an oversubscribed machine a wall-clock self-measurement
    would charge every slot for its neighbours' work and flatten the
    very load imbalance the measurement exists to show.
    """
    start = time.thread_time()
    part = _correlate_shard(window, sampling, decisions, shard, interner_snapshot)
    return part, time.thread_time() - start


#: Executor kinds accepted by :class:`ShardedCorrelator`.
EXECUTOR_KINDS = ("thread", "process")


class ShardedCorrelator:
    """Partition a trace into causally-closed shards and correlate them
    concurrently.

    Parameters
    ----------
    window:
        Sliding-time-window size in seconds (per shard, identical
        semantics to the batch correlator).
    max_workers:
        Pool size for shard correlation (default: one worker per shard
        slot).
    max_shards:
        Upper bound on shard count; components are folded together above
        it.  ``None`` keeps one shard per connected component.
    executor:
        ``"thread"`` (default) correlates shards on a thread pool --
        zero serialisation cost, GIL-bounded; ``"process"`` ships shards
        to worker processes for true CPU parallelism (shards and results
        cross a pickle boundary, so it pays off on large traces).
    schedule:
        How components are assigned to shard slots: ``"static"``
        (historical round-robin fold), ``"balanced"`` (LPT cost-aware
        packing) or ``"stealing"`` (LPT plus run-time work stealing).
        See :mod:`repro.stream.scheduler`.  All three produce identical
        merged output; only the load balance differs.
    sampling:
        Optional :class:`repro.sampling.SamplingSpec`.  The hash and
        budget policies sample the identical request subset the batch
        and streaming drivers do (budget decisions are frozen over the
        whole trace *before* partitioning, then shared with every
        shard).  The adaptive policy is rejected: its feedback loop
        observes one sequential engine's state, which a shard-parallel
        run does not have.

    After a :meth:`correlate` call the scheduling outcome is exposed for
    reporting: ``last_shard_sizes`` (activities per slot),
    ``last_slot_busy_s`` (worker-measured busy seconds per slot),
    ``last_steals`` and ``last_plan``.
    """

    def __init__(
        self,
        window: float = 0.010,
        max_workers: Optional[int] = None,
        max_shards: Optional[int] = None,
        executor: str = "thread",
        schedule: str = "static",
        sampling=None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; valid executors: "
                f"{', '.join(EXECUTOR_KINDS)}"
            )
        if schedule not in SCHEDULE_KINDS:
            raise ValueError(
                f"unknown schedule {schedule!r}; valid schedules: "
                f"{', '.join(SCHEDULE_KINDS)}"
            )
        if sampling is not None and sampling.kind == "adaptive":
            raise ValueError(
                "adaptive sampling feeds back from one sequential engine's "
                "state; use the batch or streaming driver (or a fixed-rate "
                "policy) with sharded correlation"
            )
        self.window = window
        self.max_workers = max_workers
        self.max_shards = max_shards
        self.executor = executor
        self.schedule = schedule
        self.sampling = sampling
        #: shard-slot activity counts of the last ``correlate`` call
        self.last_shard_sizes: List[int] = []
        #: worker-measured busy seconds per slot of the last call
        self.last_slot_busy_s: List[float] = []
        #: components stolen across slots in the last call
        self.last_steals: int = 0
        #: the initial :class:`~repro.stream.scheduler.ShardPlan` used
        self.last_plan: Optional[ShardPlan] = None

    def correlate(self, activities: Iterable[Activity]) -> CorrelationResult:
        """Correlate a flat activity collection shard-parallel."""
        ordered = list(activities)
        start = time.perf_counter()
        # Budget decisions depend on whole-trace root order, which no
        # single shard can see: freeze them before partitioning.
        decisions = (
            self.sampling.freeze(ordered) if self.sampling is not None else None
        )
        if self.schedule == "static":
            return self._correlate_static(ordered, decisions, start)
        return self._correlate_planned(ordered, decisions, start)

    # -- static: the historical bucket fold, one task per bucket -------------

    def _correlate_static(
        self, ordered: List[Activity], decisions, start: float
    ) -> CorrelationResult:
        shards = partition_activities(ordered, max_shards=self.max_shards)
        self.last_shard_sizes = [len(shard) for shard in shards]
        self.last_plan = None
        self.last_steals = 0
        if not shards:
            self.last_slot_busy_s = []
            return Correlator(window=self.window).correlate([])
        if len(shards) == 1:
            part, busy = _correlate_shard_timed(
                self.window, self.sampling, decisions, shards[0]
            )
            self.last_slot_busy_s = [busy]
            elapsed = time.perf_counter() - start
            return merge_results(
                [part], self.window, elapsed, len(ordered),
                shard_sizes=self.last_shard_sizes,
            )
        pool_cls = (
            ProcessPoolExecutor if self.executor == "process" else ThreadPoolExecutor
        )
        count = len(shards)
        # Thread workers share the process interner already; process
        # workers get a snapshot so they rebuild the identical key space
        # (see _correlate_shard).  Taken after partitioning, so every key
        # of every shard is covered.
        snapshot = INTERNER.snapshot() if self.executor == "process" else None
        tree = MergeTree()
        busy_s = [0.0] * count
        with pool_cls(max_workers=self.max_workers) as pool:
            for index, (part, busy) in enumerate(
                pool.map(
                    _correlate_shard_timed,
                    [self.window] * count,
                    [self.sampling] * count,
                    [decisions] * count,
                    shards,
                    [snapshot] * count,
                )
            ):
                busy_s[index] = busy
                tree.push(canonical_part(part))
        self.last_slot_busy_s = busy_s
        elapsed = time.perf_counter() - start
        return merge_results(
            [tree.result()], self.window, elapsed, len(ordered),
            shard_sizes=self.last_shard_sizes,
        )

    # -- balanced / stealing: per-component dispatch -------------------------

    def _correlate_planned(
        self, ordered: List[Activity], decisions, start: float
    ) -> CorrelationResult:
        components = partition_components(ordered)
        if not components:
            self.last_shard_sizes = []
            self.last_slot_busy_s = []
            self.last_steals = 0
            self.last_plan = None
            return Correlator(window=self.window).correlate([])
        weights = [len(component) for component in components]
        # Time order of each component's earliest activity: the
        # deterministic secondary order every plan builds on.
        order = sorted(
            range(len(components)), key=lambda index: sort_key(components[index][0])
        )
        slots = len(components)
        if self.max_shards is not None and self.max_shards > 0:
            slots = min(slots, self.max_shards)
        plan = make_plan(self.schedule, weights, order, slots)
        dispatcher = WorkStealingDispatcher(
            plan, allow_steal=self.schedule == "stealing"
        )
        tree = MergeTree()

        if slots == 1:
            # One slot: no pool, no concurrency -- run the plan inline.
            while True:
                index = dispatcher.next_component(0)
                if index is None:
                    break
                part, busy = _correlate_shard_timed(
                    self.window, self.sampling, decisions, components[index]
                )
                dispatcher.record(0, index, busy)
                tree.push(canonical_part(part))
        else:
            snapshot = INTERNER.snapshot() if self.executor == "process" else None
            pool_cls = (
                ProcessPoolExecutor
                if self.executor == "process"
                else ThreadPoolExecutor
            )
            pool_workers = (
                self.max_workers if self.max_workers is not None else slots
            )
            with pool_cls(max_workers=min(pool_workers, slots)) as pool:

                def dispatch(slot: int):
                    index = dispatcher.next_component(slot)
                    if index is None:
                        return None
                    future = pool.submit(
                        _correlate_shard_timed,
                        self.window,
                        self.sampling,
                        decisions,
                        components[index],
                        snapshot,
                    )
                    return future, index

                # One outstanding task per slot; a completed slot pulls
                # its next component (or steals one) immediately, while
                # other slots keep running -- no barrier between rounds.
                running = {}
                for slot in range(slots):
                    task = dispatch(slot)
                    if task is not None:
                        running[task[0]] = (slot, task[1])
                while running:
                    done, _pending = wait(running, return_when=FIRST_COMPLETED)
                    for future in done:
                        slot, index = running.pop(future)
                        part, busy = future.result()
                        dispatcher.record(slot, index, busy)
                        tree.push(canonical_part(part))
                        task = dispatch(slot)
                        if task is not None:
                            running[task[0]] = (slot, task[1])

        self.last_plan = plan
        self.last_steals = dispatcher.steals
        self.last_slot_busy_s = dispatcher.busy_seconds()
        self.last_shard_sizes = [slot.activities for slot in dispatcher.slots]
        elapsed = time.perf_counter() - start
        return merge_results(
            [tree.result()], self.window, elapsed, len(ordered),
            shard_sizes=self.last_shard_sizes,
        )

    # -- reporting ------------------------------------------------------------

    def last_makespan_s(self) -> float:
        """Busiest slot's measured busy time of the last ``correlate``.

        With one core per slot this tracks the parallel wall-clock time;
        on an oversubscribed machine it still measures the schedule's
        quality (what the wall clock would be with real parallelism).
        """
        return max(self.last_slot_busy_s) if self.last_slot_busy_s else 0.0
