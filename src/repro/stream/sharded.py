"""Sharded correlation: partition the trace, correlate shards in parallel.

Correlation decisions only ever relate activities through two keys: the
*context identifier* (adjacent-context edges, ``cmap``) and the
*connection 4-tuple* (message edges, ``mmap``).  Treating both key kinds
as nodes of one graph -- with an edge between an activity's context key
and its connection key -- the connected components of that graph are
exactly the finest partition of the trace that is **causally closed**: no
context or message relation can cross a component boundary.  Each
component can therefore be correlated completely independently, and the
union of the per-shard results is *identical* to the batch result.

:func:`partition_activities` computes those components with a union-find
pass, then folds them into at most ``max_shards`` shard buckets;
:class:`ShardedCorrelator` correlates the shards concurrently with
``concurrent.futures`` and merges CAGs, statistics and the ranked latency
report back into one :class:`~repro.core.correlator.CorrelationResult`.

Two practical notes:

* Shard count is workload-dependent.  Components merge whenever requests
  share an execution entity or a connection, so a service with heavily
  recycled worker pools and persistent connections may collapse into few
  components (in the degenerate case, one -- then sharding gracefully
  reduces to the batch path, still correct, just not parallel).  Client
  churn, per-request connections and multi-frontend deployments shard
  well.
* Two executors are available (``executor="thread"`` is the default).
  Threads share the Python runtime, so the speed-up on CPython is bounded
  by the GIL for pure-Python work; ``executor="process"`` ships each
  shard to a worker process (activities and results are pickled across
  the boundary), buying true CPU parallelism at a serialisation cost
  that pays off on large shards.  Either way the partitioning itself is
  the architectural seam a distributed driver would use to place shards
  on different machines.  Process workers correlate *copies*, so the
  caller's activity objects are left unmutated; the returned CAGs are
  byte-identical either way.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import fields
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..core.activity import Activity, sort_key
from ..core.correlator import CorrelationResult, Correlator
from ..core.engine import EngineStats
from ..core.interning import INTERNER
from ..core.ranker import RankerStats


class _UnionFind:
    """Union-find over arbitrary hashable keys (path halving + rank)."""

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}

    def find(self, key: Hashable) -> Hashable:
        parent = self._parent.setdefault(key, key)
        if parent == key:
            self._rank.setdefault(key, 0)
            return key
        root = key
        while self._parent[root] != root:
            self._parent[root] = self._parent[self._parent[root]]
            root = self._parent[root]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1


def partition_activities(
    activities: Iterable[Activity],
    max_shards: Optional[int] = None,
) -> List[List[Activity]]:
    """Split a trace into causally-closed shards.

    Each activity links its context key and its (undirected) connection
    key in a union-find; activities in the same connected component land
    in the same shard, preserving their original relative order.  With
    ``max_shards`` set, components are folded round-robin (in order of
    each component's earliest activity) into that many buckets, which
    balances bucket sizes and keeps the causal-closure property (a
    bucket is a union of components).  Bucket assignment is
    deterministic for a given trace but not stable across traces --
    adding or removing a component may shift later components' buckets.
    """
    uf = _UnionFind()
    ordered = list(activities)
    # Build each activity's graph keys once and reuse them for the find
    # pass -- tuple construction is the dominant cost of partitioning a
    # large trace, and ``context_key`` is the interned int already cached
    # on the activity.
    ctx_keys: List[Tuple[str, int]] = []
    for activity in ordered:
        ctx = ("ctx", activity.context_key)
        ctx_keys.append(ctx)
        uf.union(ctx, ("conn", activity.message.undirected_key()))

    by_component: Dict[Hashable, List[Activity]] = {}
    for activity, ctx in zip(ordered, ctx_keys):
        root = uf.find(ctx)
        by_component.setdefault(root, []).append(activity)

    components = list(by_component.values())
    if max_shards is None or max_shards <= 0 or len(components) <= max_shards:
        return components

    buckets: List[List[Activity]] = [[] for _ in range(max_shards)]
    for index, component in enumerate(
        sorted(components, key=lambda c: sort_key(c[0]))
    ):
        buckets[index % max_shards].extend(component)
    return [bucket for bucket in buckets if bucket]


def _sum_stats(cls, parts):
    """Field-wise sum of same-typed stats dataclasses."""
    merged = cls()
    for part in parts:
        for f in fields(cls):
            setattr(merged, f.name, getattr(merged, f.name) + getattr(part, f.name))
    return merged


def merge_engine_stats(parts: Sequence[EngineStats]) -> EngineStats:
    """Sum per-shard engine counters into one report."""
    return _sum_stats(EngineStats, parts)


def merge_ranker_stats(parts: Sequence[RankerStats]) -> RankerStats:
    """Combine per-shard ranker counters (sums; ``max_buffered`` is the
    concurrent worst case, so shard maxima are *summed* too -- every shard
    may sit at its peak at the same instant)."""
    return _sum_stats(RankerStats, parts)


def merge_results(
    parts: Sequence[CorrelationResult],
    window: float,
    elapsed: float,
    total_activities: int,
    shard_sizes: Optional[Sequence[int]] = None,
) -> CorrelationResult:
    """Merge per-shard correlation results into one batch-shaped result.

    CAGs are re-ranked by their BEGIN timestamp so the merged report is
    deterministic regardless of shard completion order.  Peak memory
    numbers are summed across shards: with all shards resident at once
    (the parallel driver's situation) that is the honest working-set
    bound.
    """
    cags = sorted(
        (cag for part in parts for cag in part.cags),
        key=lambda cag: (cag.begin_timestamp, cag.root.seq),
    )
    incomplete = sorted(
        (cag for part in parts for cag in part.incomplete_cags),
        key=lambda cag: (cag.begin_timestamp, cag.root.seq),
    )
    return CorrelationResult(
        cags=cags,
        incomplete_cags=incomplete,
        correlation_time=elapsed,
        peak_buffered_activities=sum(p.peak_buffered_activities for p in parts),
        peak_state_entries=sum(p.peak_state_entries for p in parts),
        ranker_stats=merge_ranker_stats([p.ranker_stats for p in parts]),
        engine_stats=merge_engine_stats([p.engine_stats for p in parts]),
        window=window,
        total_activities=total_activities,
        shard_sizes=list(shard_sizes) if shard_sizes is not None else None,
        final_state_entries=sum(p.final_state_entries for p in parts),
        final_open_tombstones=sum(p.final_open_tombstones for p in parts),
    )


def _correlate_shard(
    window: float,
    sampling,
    decisions,
    shard: Sequence[Activity],
    interner_snapshot=None,
) -> CorrelationResult:
    """Correlate one shard (module-level so process pools can pickle it).

    ``sampling`` / ``decisions`` carry the request-sampling policy and
    its whole-trace frozen decision set: the spec is a frozen dataclass
    and the decisions a frozenset of key tuples, so both cross the
    pickle boundary to process-pool workers unchanged.

    ``interner_snapshot`` rebuilds the parent's key space in a worker
    process before the shard is touched: unpickled activities carry the
    parent's interned ``context_key``/``message_key``/``node_key`` ints
    verbatim (slots dataclasses do not re-run ``__post_init__``), so the
    worker's interner must assign the identical ids -- otherwise any
    activity *constructed* in the worker (none today, but nothing should
    rely on that) would live in a conflicting key space.  With the fork
    start method the child inherits the parent's interner and the
    install degenerates to a no-op; spawn starts need it.
    """
    if interner_snapshot is not None:
        INTERNER.install(interner_snapshot)
    return Correlator(
        window=window, sampling=sampling, sampling_decisions=decisions
    ).correlate(shard)


#: Executor kinds accepted by :class:`ShardedCorrelator`.
EXECUTOR_KINDS = ("thread", "process")


class ShardedCorrelator:
    """Partition a trace into causally-closed shards and correlate them
    concurrently.

    Parameters
    ----------
    window:
        Sliding-time-window size in seconds (per shard, identical
        semantics to the batch correlator).
    max_workers:
        Pool size for shard correlation (default: executor's own
        heuristic).
    max_shards:
        Upper bound on shard count; components are folded together above
        it.  ``None`` keeps one shard per connected component.
    executor:
        ``"thread"`` (default) correlates shards on a thread pool --
        zero serialisation cost, GIL-bounded; ``"process"`` ships shards
        to worker processes for true CPU parallelism (shards and results
        cross a pickle boundary, so it pays off on large traces).
    sampling:
        Optional :class:`repro.sampling.SamplingSpec`.  The hash and
        budget policies sample the identical request subset the batch
        and streaming drivers do (budget decisions are frozen over the
        whole trace *before* partitioning, then shared with every
        shard).  The adaptive policy is rejected: its feedback loop
        observes one sequential engine's state, which a shard-parallel
        run does not have.
    """

    def __init__(
        self,
        window: float = 0.010,
        max_workers: Optional[int] = None,
        max_shards: Optional[int] = None,
        executor: str = "thread",
        sampling=None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; valid executors: "
                f"{', '.join(EXECUTOR_KINDS)}"
            )
        if sampling is not None and sampling.kind == "adaptive":
            raise ValueError(
                "adaptive sampling feeds back from one sequential engine's "
                "state; use the batch or streaming driver (or a fixed-rate "
                "policy) with sharded correlation"
            )
        self.window = window
        self.max_workers = max_workers
        self.max_shards = max_shards
        self.executor = executor
        self.sampling = sampling
        #: shard sizes of the last ``correlate`` call (for reporting)
        self.last_shard_sizes: List[int] = []

    def correlate(self, activities: Iterable[Activity]) -> CorrelationResult:
        """Correlate a flat activity collection shard-parallel."""
        ordered = list(activities)
        start = time.perf_counter()
        # Budget decisions depend on whole-trace root order, which no
        # single shard can see: freeze them before partitioning.
        decisions = (
            self.sampling.freeze(ordered) if self.sampling is not None else None
        )
        shards = partition_activities(ordered, max_shards=self.max_shards)
        self.last_shard_sizes = [len(shard) for shard in shards]
        if not shards:
            return Correlator(window=self.window).correlate([])
        if len(shards) == 1:
            part = _correlate_shard(self.window, self.sampling, decisions, shards[0])
            elapsed = time.perf_counter() - start
            return merge_results(
                [part], self.window, elapsed, len(ordered),
                shard_sizes=self.last_shard_sizes,
            )
        pool_cls = (
            ProcessPoolExecutor if self.executor == "process" else ThreadPoolExecutor
        )
        count = len(shards)
        # Thread workers share the process interner already; process
        # workers get a snapshot so they rebuild the identical key space
        # (see _correlate_shard).  Taken after partitioning, so every key
        # of every shard is covered.
        snapshot = INTERNER.snapshot() if self.executor == "process" else None
        with pool_cls(max_workers=self.max_workers) as pool:
            parts = list(
                pool.map(
                    _correlate_shard,
                    [self.window] * count,
                    [self.sampling] * count,
                    [decisions] * count,
                    shards,
                    [snapshot] * count,
                )
            )
        elapsed = time.perf_counter() - start
        return merge_results(
            parts, self.window, elapsed, len(ordered),
            shard_sizes=self.last_shard_sizes,
        )
