"""Shard scheduling: cost model, LPT packing and work stealing.

The sharded driver correlates causally-closed components concurrently,
and for that the *assignment* of components to worker slots is pure
policy: any assignment is correct (components never interact), only the
makespan -- the busiest slot's total work -- differs.  Real deployments
produce heavily skewed components (a replica group or a fan-out tier
collapses thousands of requests into one giant component next to many
small ones), so the assignment policy is exactly what decides whether
adding shards buys throughput or just adds idle workers behind one
straggler.

Three schedules, in increasing sophistication:

``static``
    The historical policy: components sorted by their earliest activity
    and folded round-robin into the shard buckets.  Oblivious to cost --
    two giant components landing on the same bucket double that shard's
    work while others idle.

``balanced``
    Cost-aware up-front packing.  Each component is weighted by its
    activity count (the correlation hot path is linear in delivered
    candidates, so activity count *is* the cost model -- measured at
    roughly 7-8 us per activity, flat across window sizes), then packed
    with the classic Longest-Processing-Time greedy rule: heaviest
    component first onto the currently lightest slot.  LPT's makespan is
    provably within 4/3 of optimal, which is all a scheduler needs when
    the weights are estimates anyway.

``stealing``
    LPT packing as the initial plan, plus work stealing at run time: a
    slot that drains its own queue takes the next component from the
    *tail* of the most-loaded remaining queue.  Stealing whole
    components (never splitting one) preserves causal closure, and the
    tail-of-heaviest victim rule steals the work most likely to still be
    far from starting.  This recovers from cost-model error -- the one
    thing up-front packing cannot do -- at the price of a coordination
    round-trip per component.

The dispatcher is *driver-coordinated*: the driver owns the queues and
hands one component to a worker per task, so the same protocol drives
thread pools, process pools, and (eventually) remote workers -- no
shared memory is assumed.  Per-slot busy time is accounted from the
workers' own measurements, which makes the reported makespan honest even
when the pool multiplexes slots onto fewer cores than workers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence

#: Schedules accepted by :class:`~repro.stream.sharded.ShardedCorrelator`.
SCHEDULE_KINDS = ("static", "balanced", "stealing")


@dataclass
class ShardPlan:
    """An up-front assignment of components to worker slots.

    ``assignments[slot]`` lists component indices in dispatch order; the
    indices refer to the component list the plan was built from.
    ``weights[index]`` is that component's cost estimate (its activity
    count).
    """

    schedule: str
    assignments: List[List[int]]
    weights: List[int]

    def slot_weights(self) -> List[int]:
        """Planned cost per slot (before any stealing)."""
        return [
            sum(self.weights[index] for index in slot) for slot in self.assignments
        ]

    def makespan(self) -> int:
        """Planned cost of the busiest slot (the quantity LPT minimises)."""
        slot_weights = self.slot_weights()
        return max(slot_weights) if slot_weights else 0


def plan_static(
    weights: Sequence[int], order: Sequence[int], slots: int
) -> ShardPlan:
    """The historical round-robin fold as a plan.

    ``order`` is the component indices sorted by each component's
    earliest activity -- the exact order the original bucket fold used,
    so a single-task-per-slot run of this plan reproduces the historical
    shard contents verbatim.
    """
    assignments: List[List[int]] = [[] for _ in range(slots)]
    for position, index in enumerate(order):
        assignments[position % slots].append(index)
    return ShardPlan(schedule="static", assignments=assignments, weights=list(weights))


def plan_balanced(
    weights: Sequence[int], order: Sequence[int], slots: int
) -> ShardPlan:
    """LPT greedy packing: heaviest component onto the lightest slot.

    Ties (equal weights, equal loads) break on the time order and the
    slot index, so the plan is deterministic for a given trace.
    """
    assignments: List[List[int]] = [[] for _ in range(slots)]
    loads = [0] * slots
    position = {index: rank for rank, index in enumerate(order)}
    by_weight = sorted(order, key=lambda index: (-weights[index], position[index]))
    for index in by_weight:
        lightest = min(range(slots), key=lambda slot: (loads[slot], slot))
        assignments[lightest].append(index)
        loads[lightest] += weights[index]
    return ShardPlan(
        schedule="balanced", assignments=assignments, weights=list(weights)
    )


def make_plan(
    schedule: str, weights: Sequence[int], order: Sequence[int], slots: int
) -> ShardPlan:
    """Build the initial plan for any schedule kind.

    ``stealing`` starts from the balanced (LPT) plan -- stealing is a
    run-time correction, not a different initial placement.
    """
    if schedule not in SCHEDULE_KINDS:
        raise ValueError(
            f"unknown schedule {schedule!r}; valid schedules: "
            f"{', '.join(SCHEDULE_KINDS)}"
        )
    if slots <= 0:
        raise ValueError("slots must be positive")
    if schedule == "static":
        return plan_static(weights, order, slots)
    plan = plan_balanced(weights, order, slots)
    plan.schedule = schedule
    return plan


@dataclass
class SlotAccounting:
    """What one worker slot actually did (filled in as tasks complete)."""

    executed: List[int] = field(default_factory=list)
    busy_seconds: float = 0.0
    activities: int = 0


class WorkStealingDispatcher:
    """Driver-side dispatch state for one sharded run.

    The driver calls :meth:`next_component` when a slot becomes idle
    (initially, and after each task completes) and :meth:`record` with
    the worker-measured busy time when a task's result arrives.  With
    ``allow_steal=False`` the dispatcher degrades to plain queue
    consumption of the initial plan, which lets one driver loop serve
    the ``balanced`` and ``stealing`` schedules identically.
    """

    def __init__(self, plan: ShardPlan, allow_steal: bool) -> None:
        self.plan = plan
        self.allow_steal = allow_steal
        self._queues: List[Deque[int]] = [
            deque(slot) for slot in plan.assignments
        ]
        # Remaining planned weight per queue: the steal victim choice is
        # O(slots) against these counters instead of re-summing queues.
        self._remaining: List[int] = [
            sum(plan.weights[index] for index in slot) for slot in plan.assignments
        ]
        self.slots: List[SlotAccounting] = [
            SlotAccounting() for _ in plan.assignments
        ]
        self.steals = 0

    def next_component(self, slot: int) -> Optional[int]:
        """The next component index for an idle slot (``None`` = drained).

        Home queue first (front, preserving the planned order); once the
        home queue is empty and stealing is enabled, take from the *tail*
        of the queue with the most remaining planned work.
        """
        queue = self._queues[slot]
        if queue:
            index = queue.popleft()
            self._remaining[slot] -= self.plan.weights[index]
            self.slots[slot].executed.append(index)
            return index
        if not self.allow_steal:
            return None
        victim = -1
        victim_remaining = 0
        for other, remaining in enumerate(self._remaining):
            if self._queues[other] and remaining > victim_remaining:
                victim = other
                victim_remaining = remaining
        if victim < 0:
            return None
        index = self._queues[victim].pop()
        self._remaining[victim] -= self.plan.weights[index]
        self.steals += 1
        self.slots[slot].executed.append(index)
        return index

    def record(self, slot: int, index: int, busy_seconds: float) -> None:
        """Account a completed component against its executing slot."""
        accounting = self.slots[slot]
        accounting.busy_seconds += busy_seconds
        accounting.activities += self.plan.weights[index]

    def busy_seconds(self) -> List[float]:
        """Measured busy time per slot."""
        return [slot.busy_seconds for slot in self.slots]

    def makespan_seconds(self) -> float:
        """Measured makespan: the busiest slot's total busy time.

        On a machine with at least as many cores as slots this tracks
        wall-clock time; on an oversubscribed machine it still measures
        the schedule's quality (what the wall clock *would* be with real
        parallelism), which is what the scaling figure reports.
        """
        busy = self.busy_seconds()
        return max(busy) if busy else 0.0
