"""Chunked log ingestion for the streaming pipeline.

The batch path reads whole log files into memory before correlating.
Online tracing instead consumes logs *as they grow*; this module provides
the ingestion side of that pipeline:

* :func:`iter_chunks` -- batch any iterable into fixed-size lists;
* :class:`IteratorSource` -- adapt an iterable of TCP_TRACE lines (a
  file object, a socket reader, a generator) into activity chunks;
* :class:`FileTailSource` -- follow a growing log file on disk,
  remembering the read offset and reassembling lines across chunk
  boundaries (``tail -f`` semantics, without inotify dependencies);
* :class:`ActivityStream` -- the shared raw-line -> typed-activity step
  (parse + BEGIN/END classification + attribute noise filter), built on
  :class:`repro.core.log_format.ActivityClassifier`.

Every source yields lists of :class:`~repro.core.activity.Activity` ready
to be pushed into :class:`repro.stream.IncrementalEngine.ingest`.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, List, Optional, Sequence, TypeVar

from ..core.activity import Activity
from ..core.log_format import (
    ActivityClassifier,
    FrontendSpec,
    LineAssembler,
    LogFormatError,
    parse_record,
)

T = TypeVar("T")


def iter_chunks(items: Iterable[T], chunk_size: int) -> Iterator[List[T]]:
    """Yield successive lists of at most ``chunk_size`` items."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    chunk: List[T] = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


class ActivityStream:
    """Convert raw TCP_TRACE lines into typed activities, incrementally.

    A thin stateful wrapper over :class:`ActivityClassifier` that also
    tolerates malformed lines (counted, not fatal -- a live log being
    written while we read it can always hand us a torn or corrupt line).
    """

    def __init__(
        self,
        frontends: Sequence[FrontendSpec],
        ignore_programs: Optional[set] = None,
        ignore_ports: Optional[set] = None,
        ignore_ips: Optional[set] = None,
    ) -> None:
        self.classifier = ActivityClassifier(
            frontends=list(frontends),
            ignore_programs=set(ignore_programs or ()),
            ignore_ports=set(ignore_ports or ()),
            ignore_ips=set(ignore_ips or ()),
        )
        self.malformed_lines = 0

    @property
    def filtered_records(self) -> int:
        """Records dropped by the attribute-based noise filter."""
        return self.classifier.filtered_count

    def classify_lines(self, lines: Iterable[str]) -> List[Activity]:
        """Parse and classify a batch of lines into activities."""
        activities: List[Activity] = []
        for line in lines:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                record = parse_record(stripped)
            except LogFormatError:
                self.malformed_lines += 1
                continue
            activity = self.classifier.classify(record)
            if activity is not None:
                activities.append(activity)
        return activities


class IteratorSource:
    """Chunked activity source over any iterable of log lines."""

    def __init__(
        self,
        lines: Iterable[str],
        stream: ActivityStream,
        chunk_size: int = 256,
    ) -> None:
        self._lines = lines
        self._stream = stream
        self._chunk_size = chunk_size

    def __iter__(self) -> Iterator[List[Activity]]:
        for chunk in iter_chunks(self._lines, self._chunk_size):
            activities = self._stream.classify_lines(chunk)
            if activities:
                yield activities


class FileTailSource:
    """Incrementally read a (possibly still growing) TCP_TRACE log file.

    ``poll()`` reads whatever bytes were appended since the last call and
    returns the completed lines; a trailing partial line stays buffered in
    a :class:`LineAssembler` until its newline arrives.  ``drain()``
    additionally flushes that final unterminated line -- call it once the
    writer is known to be done.

    The source is deliberately dependency-free (no inotify): the caller
    decides the polling cadence, which keeps it usable inside simulations
    and tests as well as against real files.
    """

    def __init__(self, path: str, chunk_bytes: int = 64 * 1024) -> None:
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        self.path = path
        self.chunk_bytes = chunk_bytes
        self.offset = 0  # byte offset into the file
        self._assembler = LineAssembler()
        self._decoder = self._new_decoder()

    @staticmethod
    def _new_decoder():
        # Incremental decoder: a poll() that ends mid multi-byte UTF-8
        # sequence keeps the partial bytes buffered instead of emitting
        # replacement characters and corrupting the record.
        import codecs

        return codecs.getincrementaldecoder("utf-8")("replace")

    def poll(self) -> List[str]:
        """Read newly-appended data; return the newly-completed lines."""
        lines: List[str] = []
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return lines  # not created yet
        if size < self.offset:
            # The file shrank: it was rotated/truncated under us
            # (copytruncate).  Restart from the top; the partial line and
            # partial character buffered from the old incarnation are
            # gone with it.
            self.offset = 0
            self._assembler = LineAssembler()
            self._decoder = self._new_decoder()
        if size == self.offset:
            return lines
        with open(self.path, "rb") as handle:
            handle.seek(self.offset)
            while True:
                chunk = handle.read(self.chunk_bytes)
                if not chunk:
                    break
                lines.extend(self._assembler.feed(self._decoder.decode(chunk)))
            self.offset = handle.tell()
        return lines

    def drain(self) -> List[str]:
        """Final poll plus the buffered partial line (end of stream)."""
        lines = self.poll()
        tail = self._decoder.decode(b"", final=True)
        if tail:
            lines.extend(self._assembler.feed(tail))
        lines.extend(self._assembler.flush())
        return lines
