"""Incremental correlation: CAGs emitted as soon as their END arrives.

This module is the online counterpart of :class:`repro.core.correlator.
Correlator`.  Instead of slurping the whole trace and correlating once,
:class:`IncrementalEngine` accepts activities chunk by chunk, advances a
watermark, and emits each finished CAG the moment its root request's END
activity is correlated -- which is what makes request tracing usable as a
*monitoring* tool against a live service rather than a post-mortem one.

Two knobs control the memory/latency/accuracy triangle:

``skew_bound``
    How far node clocks may disagree.  It only delays emission (candidates
    wait until every node's log has progressed past them by ``window +
    2 * skew_bound``); it never changes the output.

``horizon`` (seconds, ``None`` = disabled)
    Watermark-based eviction of stale engine state.  Index-map entries and
    open CAGs untouched for longer than the horizon are dropped and
    counted in :class:`repro.core.engine.EngineStats` (fields
    ``evicted_mmap_entries`` / ``evicted_cmap_entries`` /
    ``evicted_open_cags``).  This bounds memory under abandoned flows and
    noise, at an accuracy cost *only* for requests that stay idle longer
    than the horizon: their state is gone when the late activities
    finally arrive, so they surface as deformed/incomplete paths instead
    of completed ones.  With ``horizon=None`` (or any horizon above the
    service's worst-case response time) the streaming output is
    *identical* to the batch output -- the equivalence is asserted by
    ``tests/test_stream.py``.

Typical use::

    engine = IncrementalEngine(window=0.010, horizon=30.0)
    for chunk in activity_chunks:                # any iterable of batches
        for cag in engine.ingest(chunk):         # CAGs finish mid-stream
            handle_finished_request(cag)
    for cag in engine.flush():                   # drain the tail
        handle_finished_request(cag)
    result = engine.result()                     # CorrelationResult

For one-shot use over an activity iterable, :class:`StreamingCorrelator`
wraps the chunking loop behind the same ``correlate()`` signature as the
batch :class:`~repro.core.correlator.Correlator`.
"""

from __future__ import annotations

import gc
import math
import time
from typing import Iterable, Iterator, List, Optional, Sequence

from ..core.activity import Activity, sort_key
from ..core.cag import CAG
from ..core.correlator import CorrelationResult
from ..core.engine import CorrelationEngine
from .checkpoint import load_checkpoint, save_checkpoint
from .ranker import StreamingRanker


class IncrementalEngine:
    """Streaming wrapper around the correlation engine (push interface).

    Parameters
    ----------
    window:
        Sliding-time-window size in seconds, exactly as in the batch path.
    horizon:
        Eviction horizon in seconds, or ``None`` to never evict (see the
        module docstring for the trade-off).
    skew_bound:
        Upper bound on absolute node clock skew in seconds; part of the
        reorder slack that gates candidate delivery.
    sample_interval:
        How often (in delivered candidates) the live-object counts are
        sampled for the memory accounting, as in the batch correlator.
    sampling:
        Optional :class:`repro.sampling.SamplingSpec`: trace only a
        deterministic subset of the requests.  This is where the
        *adaptive* policy lives naturally -- its controller observes the
        engine's open-CAG count (tombstones included) and steers the
        admission rate toward the configured budget, which is the
        overhead-control loop a live deployment runs.
    sampling_decisions:
        Pre-frozen decision set for the budget policy.  The push
        interface has no whole-trace pre-pass, so without one the
        budget is applied in arrival order -- exact when the stream is
        fed in global timestamp order (as :class:`StreamingCorrelator`
        feeds it).
    """

    def __init__(
        self,
        window: float = 0.010,
        horizon: Optional[float] = None,
        skew_bound: float = 0.005,
        sample_interval: int = 256,
        sampling=None,
        sampling_decisions=None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if horizon is not None and horizon <= 0:
            raise ValueError("horizon must be positive (or None to disable)")
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.window = window
        self.horizon = horizon
        self.sampling = sampling
        self.sampler = (
            sampling.make_sampler(sampling_decisions) if sampling is not None else None
        )
        self.engine = CorrelationEngine(sampler=self.sampler)
        self.ranker = StreamingRanker(
            mmap=self.engine.mmap, window=window, skew_bound=skew_bound
        )
        self.sample_interval = sample_interval
        self.total_ingested = 0
        self.peak_buffered = 0
        self.peak_state = 0
        self.processing_time = 0.0
        self._processed = 0
        self._flushed = False
        self._last_evict_watermark = -math.inf

    # -- streaming interface -------------------------------------------------

    def ingest(self, activities: Iterable[Activity]) -> List[CAG]:
        """Feed one chunk of activities; return the CAGs finished by it.

        Ordering contract -- both parts matter:

        * within one node, activities must arrive in that node's log
          order (nondecreasing local timestamps);
        * across nodes, streams must be interleaved roughly in real time
          (as a live multi-node feed naturally is).  The watermark is the
          *slowest seen node's* frontier, so feeding whole per-node logs
          one after another (``cat web.log app.log``) starves it: the
          first node's RECEIVEs would be judged before their SENDs from
          the not-yet-seen node arrive, and get misdiscarded as noise.

        For data at rest, sort globally by timestamp first --
        :class:`StreamingCorrelator` and the CLI ``stream`` command do
        exactly that.
        """
        if self._flushed:
            raise RuntimeError("cannot ingest after flush()")
        self.total_ingested += self.ranker.ingest(activities)
        return self._drain()

    def flush(self) -> List[CAG]:
        """End of stream: deliver everything still gated by the watermark."""
        self.ranker.seal()
        finished = self._drain()
        self._flushed = True
        return finished

    def pending_state_size(self) -> int:
        """Live bookkeeping entries: engine maps + ranker buffer."""
        return self.engine.pending_state_size() + self.ranker.buffered_count()

    def watermark(self) -> float:
        """Current delivery watermark (local-time ceiling), -inf initially."""
        return self.ranker.watermark

    def result(self) -> CorrelationResult:
        """Aggregate accounting, same shape as the batch correlator's.

        ``incomplete_cags`` includes both the still-open CAGs and any
        evicted ones, so batch and streaming accounting stay comparable.
        """
        return CorrelationResult(
            cags=list(self.engine.finished_cags),
            incomplete_cags=list(self.engine.open_cags) + self.engine.evicted_cags,
            correlation_time=self.processing_time,
            peak_buffered_activities=max(
                self.peak_buffered, self.ranker.stats.max_buffered
            ),
            peak_state_entries=max(self.peak_state, self.engine.pending_state_size()),
            ranker_stats=self.ranker.stats,
            engine_stats=self.engine.stats,
            window=self.window,
            total_activities=self.total_ingested,
            final_state_entries=self.pending_state_size(),
            final_open_tombstones=self.engine.open_tombstone_count,
        )

    # -- internals ----------------------------------------------------------

    def _drain(self) -> List[CAG]:
        finished: List[CAG] = []
        # Same per-candidate hoisting as the batch correlator: the drain
        # loop is the streaming hot path.
        rank = self.ranker.rank
        process = self.engine.process
        sample_interval = self.sample_interval
        # Same rationale as the batch correlator: the drain loop is
        # internal-only and cycle-free, so the cycle collector's
        # full-heap scans are pure overhead here.  User code between
        # chunks still runs with the collector in its original state.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        start = time.perf_counter()
        try:
            while True:
                candidate = rank()
                if candidate is None:
                    break
                cag = process(candidate)
                if cag is not None:
                    finished.append(cag)
                self._processed += 1
                if self._processed % sample_interval == 0:
                    self._sample()
            self._maybe_evict()
        finally:
            if gc_was_enabled:
                gc.enable()
        self._sample()
        self.processing_time += time.perf_counter() - start
        return finished

    def _maybe_evict(self) -> None:
        """Run watermark eviction when it can pay for itself.

        Eviction scans the live state, so running it on every chunk would
        make ingestion O(chunks x live entries); instead it fires only
        once the watermark has advanced by a quarter horizon since the
        last sweep.  After ``seal()`` the watermark is +inf -- end-of-
        stream cleanup is *not* eviction (the remaining open CAGs are
        legitimately in flight and are reported as incomplete), so no
        sweep runs then.
        """
        if self.horizon is None or self.ranker.sealed:
            return
        watermark = self.ranker.watermark
        if watermark <= -math.inf or math.isinf(watermark):
            return
        if watermark - self._last_evict_watermark < self.horizon / 4.0:
            return
        self._last_evict_watermark = watermark
        self.engine.evict_stale(watermark - self.horizon)

    def _sample(self) -> None:
        self.peak_buffered = max(self.peak_buffered, self.ranker.buffered_count())
        self.peak_state = max(self.peak_state, self.engine.pending_state_size())


class StreamingCorrelator:
    """Drop-in streaming counterpart of the batch ``Correlator``.

    ``correlate()`` accepts the same flat activity iterable, drives an
    :class:`IncrementalEngine` chunk by chunk in *arrival order* (global
    timestamp order, the realistic online delivery order) and returns the
    same :class:`~repro.core.correlator.CorrelationResult`.  Use
    :meth:`correlate_iter` instead to consume finished CAGs as they are
    emitted.

    Checkpoint/resume: with ``checkpoint_path`` + ``checkpoint_every``
    set, the engine state is snapshotted at the first chunk boundary at
    or past every ``checkpoint_every`` ingested activities (see
    :mod:`repro.stream.checkpoint` for the file format).  With
    ``resume_from`` set, correlation revives the saved engine, skips the
    already-ingested prefix of the (deterministically sorted) trace, and
    continues -- the final result digest is identical to an
    uninterrupted run.  The streaming knobs must match the ones the
    checkpoint was taken under; mismatches raise :class:`ValueError`
    rather than silently producing different output.

    Composing with a persistent :class:`~repro.store.TraceStore` (the
    ``on_cag`` hook of :class:`~repro.pipeline.StoreSink`): CAGs are
    offered to the store as they finish, i.e. at chunk boundaries, so a
    long-running ingest commits request rows incrementally.  After a
    crash-and-resume, CAGs that finished *between* the last checkpoint
    and the crash are re-emitted by the resumed run; store ingest is
    keyed by the request's data-derived root identity and is therefore
    idempotent, so the combined store is identical to one written by an
    uninterrupted run (see :meth:`repro.store.TraceStore.run_digest`).
    """

    def __init__(
        self,
        window: float = 0.010,
        horizon: Optional[float] = None,
        skew_bound: float = 0.005,
        chunk_size: int = 256,
        sample_interval: int = 256,
        sampling=None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        resume_from: Optional[str] = None,
    ) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if (checkpoint_path is None) != (checkpoint_every is None):
            raise ValueError(
                "checkpoint_path and checkpoint_every must be set together"
            )
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        self.window = window
        self.horizon = horizon
        self.skew_bound = skew_bound
        self.chunk_size = chunk_size
        self.sample_interval = sample_interval
        self.sampling = sampling
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.resume_from = resume_from
        #: The engine the last ``correlate_iter``/``correlate`` call drove;
        #: read ``last_engine.result()`` after consuming the iterator.
        self.last_engine: Optional[IncrementalEngine] = None

    def make_engine(self, sampling_decisions=None) -> IncrementalEngine:
        return IncrementalEngine(
            window=self.window,
            horizon=self.horizon,
            skew_bound=self.skew_bound,
            sample_interval=self.sample_interval,
            sampling=self.sampling,
            sampling_decisions=sampling_decisions,
        )

    def _decisions_for(self, ordered: Sequence[Activity]):
        """Freeze the budget policy's decisions from the whole trace --
        the same pre-pass the batch and sharded drivers run, so the
        admitted subset is backend-independent."""
        if self.sampling is None:
            return None
        return self.sampling.freeze(ordered)

    def correlate(self, activities: Iterable[Activity]) -> CorrelationResult:
        """Correlate a (finite) activity collection incrementally."""
        for _cag in self.correlate_iter(activities):
            pass
        assert self.last_engine is not None
        return self.last_engine.result()

    def correlate_iter(
        self,
        activities: Iterable[Activity],
        engine: Optional[IncrementalEngine] = None,
    ) -> Iterator[CAG]:
        """Yield finished CAGs as the stream is consumed.

        The engine driven here is left on :attr:`last_engine`; read
        ``last_engine.result()`` after the iterator is exhausted (or pass
        your own ``engine``, which disables ``resume_from`` handling).
        """
        ordered = self._arrival_order(activities)
        skip = 0
        if engine is None:
            if self.resume_from is not None:
                engine, skip = self._resume_engine(len(ordered))
            else:
                engine = self.make_engine(self._decisions_for(ordered))
        self.last_engine = engine
        every = self.checkpoint_every
        # Cadence in *ingested activities*, written at chunk boundaries:
        # the next threshold is the first multiple of ``every`` past what
        # the engine has already seen (which on resume is mid-trace).
        next_checkpoint = (
            (engine.total_ingested // every + 1) * every if every else None
        )
        for start in range(skip, len(ordered), self.chunk_size):
            chunk = ordered[start : start + self.chunk_size]
            yield from engine.ingest(chunk)
            if next_checkpoint is not None and engine.total_ingested >= next_checkpoint:
                self._write_checkpoint(engine)
                next_checkpoint = (engine.total_ingested // every + 1) * every
        yield from engine.flush()

    # -- checkpoint plumbing -------------------------------------------------

    def _config_fingerprint(self) -> dict:
        """The knobs that must match between a checkpoint and a resume."""
        return {
            "window": self.window,
            "horizon": self.horizon,
            "skew_bound": self.skew_bound,
            "chunk_size": self.chunk_size,
            "sample_interval": self.sample_interval,
            "sampling": self.sampling,
        }

    def _write_checkpoint(self, engine: IncrementalEngine) -> None:
        assert self.checkpoint_path is not None
        save_checkpoint(
            self.checkpoint_path,
            engine,
            ingested_count=engine.total_ingested,
            config=self._config_fingerprint(),
        )

    def _resume_engine(self, trace_length: int):
        assert self.resume_from is not None
        checkpoint = load_checkpoint(self.resume_from)
        expected = self._config_fingerprint()
        mismatched = sorted(
            key
            for key in expected
            if checkpoint.config.get(key) != expected[key]
        )
        if mismatched:
            raise ValueError(
                "checkpoint configuration mismatch on "
                + ", ".join(
                    f"{key} (checkpoint {checkpoint.config.get(key)!r} != "
                    f"current {expected[key]!r})"
                    for key in mismatched
                )
            )
        if checkpoint.ingested_count > trace_length:
            raise ValueError(
                f"checkpoint has ingested {checkpoint.ingested_count} activities "
                f"but the trace only has {trace_length}"
            )
        return checkpoint.engine, checkpoint.ingested_count

    @staticmethod
    def _arrival_order(activities: Iterable[Activity]) -> Sequence[Activity]:
        """Globally timestamp-sorted activities: the order a merged online
        feed would deliver them in (per-node order is preserved, which is
        all the incremental engine requires)."""
        return sorted(activities, key=sort_key)
