"""Tests for the Correlator (ranker + engine, offline mode)."""

import pytest

from helpers import SyntheticTrace
from repro.core.correlator import Correlator


def build_trace(requests=5, skews=None, seg=None):
    trace = SyntheticTrace(
        skews=skews or {},
        sender_max=seg,
        receiver_max=int(seg * 0.7) if seg else None,
    )
    for index in range(requests):
        trace.three_tier_request(
            request_id=index + 1,
            start=0.1 + index * 0.02,
            web_pid=100 + index % 3,
            app_tid=200 + index % 4,
            db_tid=300 + index % 4,
            db_queries=1 + index % 3,
        )
    return trace


class TestCorrelatorBasics:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Correlator(window=0.0)
        with pytest.raises(ValueError):
            Correlator(window=0.01, sample_interval=0)

    def test_every_request_yields_one_finished_cag(self):
        trace = build_trace(requests=6)
        result = Correlator(window=0.01).correlate(trace.activities)
        assert result.completed_requests == 6
        assert not result.incomplete_cags

    def test_correlate_streams_matches_flat_input(self):
        trace = build_trace(requests=4)
        flat = Correlator(window=0.01).correlate(trace.activities)
        streamed = Correlator(window=0.01).correlate_streams(trace.by_node())
        assert flat.completed_requests == streamed.completed_requests
        assert flat.total_activities == streamed.total_activities

    def test_result_summary_keys(self):
        trace = build_trace(requests=2)
        result = Correlator(window=0.01).correlate(trace.activities)
        summary = result.summary()
        for key in (
            "completed_requests",
            "correlation_time_s",
            "peak_memory_bytes",
            "total_activities",
            "noise_discarded",
            "window_s",
        ):
            assert key in summary

    def test_correlation_time_is_measured(self):
        trace = build_trace(requests=3)
        result = Correlator(window=0.01).correlate(trace.activities)
        assert result.correlation_time > 0.0

    def test_peak_memory_scales_with_buffered_activities(self):
        trace = build_trace(requests=20)
        small = Correlator(window=0.0001).correlate(trace.activities)
        large = Correlator(window=100.0).correlate(trace.activities)
        assert large.peak_buffered_activities >= small.peak_buffered_activities
        assert large.peak_memory_bytes >= small.peak_memory_bytes


class TestWindowIndependence:
    @pytest.mark.parametrize("window", [0.0005, 0.005, 0.05, 1.0, 50.0])
    def test_every_window_size_produces_the_same_paths(self, window):
        trace = build_trace(requests=8)
        result = Correlator(window=window).correlate(trace.activities)
        assert result.completed_requests == 8
        for cag in result.cags:
            assert len(cag.request_ids()) == 1
            cag.validate()

    @pytest.mark.parametrize("skew", [0.0, 0.01, 0.2])
    def test_clock_skew_does_not_change_path_count(self, skew):
        trace = build_trace(requests=8, skews={"app": skew, "db": -skew})
        result = Correlator(window=0.002).correlate(trace.activities)
        assert result.completed_requests == 8

    def test_segmented_messages_still_produce_one_path_per_request(self):
        trace = build_trace(requests=6, seg=700)
        result = Correlator(window=0.01).correlate(trace.activities)
        assert result.completed_requests == 6
        for cag in result.cags:
            cag.validate()


class TestIncompleteTraces:
    def test_missing_end_leaves_cag_open(self):
        trace = build_trace(requests=3)
        # drop the END of the last request (simulated activity loss)
        activities = [
            a for a in trace.activities if not (a.request_id == 3 and a.type.name == "END")
        ]
        result = Correlator(window=0.01).correlate(activities)
        assert result.completed_requests == 2
        assert len(result.incomplete_cags) == 1
        assert result.incomplete_cags[0].is_deformed()

    def test_empty_input(self):
        result = Correlator(window=0.01).correlate([])
        assert result.completed_requests == 0
        assert result.total_activities == 0
