"""Tests for the RUBiS request catalogue and workload mixes."""

import pytest

from repro.services.rubis.requests import (
    BROWSE_ONLY_MIX,
    CATALOG,
    DEFAULT_MIX,
    VIEW_ITEM,
    expected_query_count,
    expected_thread_holding_time,
    mix_by_name,
)


class TestCatalog:
    def test_catalog_has_many_interaction_types(self):
        assert len(CATALOG) >= 12

    def test_every_type_touches_the_database(self):
        for request_type in CATALOG.values():
            assert request_type.query_count >= 1

    def test_every_type_has_positive_demands_and_sizes(self):
        for request_type in CATALOG.values():
            assert request_type.httpd_cpu > 0
            assert request_type.app_cpu > 0
            assert request_type.request_bytes > 0
            assert request_type.reply_bytes > 0
            for query in request_type.queries:
                assert query.engine_delay > 0
                assert query.reply_bytes > 0

    def test_view_item_is_a_heavy_read(self):
        assert VIEW_ITEM.query_count >= 5
        assert not VIEW_ITEM.writes
        assert any(query.touches_items for query in VIEW_ITEM.queries)

    def test_write_types_only_in_default_mix(self):
        browse_types = {rt.name for rt, _w in BROWSE_ONLY_MIX}
        default_types = {rt.name for rt, _w in DEFAULT_MIX}
        writers = {name for name, rt in CATALOG.items() if rt.writes}
        assert not (writers & browse_types)
        assert writers & default_types


class TestMixes:
    def test_weights_sum_to_one(self):
        for mix in (BROWSE_ONLY_MIX, DEFAULT_MIX):
            assert sum(weight for _rt, weight in mix) == pytest.approx(1.0, abs=0.01)

    def test_view_item_is_the_most_frequent_interaction(self):
        for mix in (BROWSE_ONLY_MIX, DEFAULT_MIX):
            top = max(mix, key=lambda item: item[1])[0]
            assert top.name == "ViewItem"

    def test_mix_by_name(self):
        assert mix_by_name("browse_only") is BROWSE_ONLY_MIX
        assert mix_by_name("default") is DEFAULT_MIX
        with pytest.raises(KeyError):
            mix_by_name("bogus")

    def test_expected_query_count_in_plausible_range(self):
        count = expected_query_count(BROWSE_ONLY_MIX)
        assert 3.0 < count < 6.0

    def test_thread_holding_time_supports_the_maxthreads_story(self):
        """With MaxThreads=40, the thread pool must saturate around
        40/holding ~ 120-180 requests/s so the paper's knee appears within
        the evaluated client range."""
        holding = expected_thread_holding_time(BROWSE_ONLY_MIX)
        capacity = 40 / holding
        assert 100 <= capacity <= 220

    def test_empty_mix_edge_cases(self):
        assert expected_query_count([]) == 0.0
        assert expected_thread_holding_time([]) == 0.0
