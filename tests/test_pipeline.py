"""Tests for the unified pipeline facade (repro.pipeline).

The load-bearing test is the **equivalence matrix**: every scenario of
the topology library, run through all three backends (batch, streaming,
sharded), must produce byte-identical correlation results -- asserted
both pairwise (``verify_equivalence``) and against the pinned golden
digests in ``tests/golden_pipeline_digests.json``, so any engine,
ranker, topology or backend change that silently alters a reconstruction
shows up here first.

Regenerate the golden file after an *intentional* output change with::

    PYTHONPATH=src:tests python tests/test_pipeline.py --regenerate

The rest covers the facade (sources, stages, sinks), the process-pool
sharded executor, and the mismatch-reporting path of the equivalence API.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from helpers import SyntheticTrace
from repro.core.activity import ActivityType
from repro.core.log_format import format_record
from repro.pipeline import (
    AccuracyStage,
    BackendSpec,
    BreakdownStage,
    CagJsonlSink,
    DiagnosisStage,
    DotSink,
    EquivalenceError,
    LogSource,
    MemorySource,
    PatternStage,
    Pipeline,
    ProfileStage,
    RankedLatencyStage,
    RunSource,
    SummaryJsonSink,
    as_source,
    result_digest,
    verify_equivalence,
)
from repro.topology.library import ScenarioConfig, scenario_names
from repro.topology.workload import WorkloadStages

#: Shared matrix run parameters -- the golden digests are pinned for
#: exactly these (change them only together with --regenerate).
MATRIX_STAGES = WorkloadStages(up_ramp=0.5, runtime=4.0, down_ramp=0.5)
MATRIX_SEED = 11
MATRIX_WINDOW = 0.010

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_pipeline_digests.json"


def matrix_config(name: str) -> ScenarioConfig:
    """The pinned run configuration of one matrix scenario."""
    overrides = {"clients": 40} if name == "rubis" else {}
    return ScenarioConfig(
        scenario=name, stages=MATRIX_STAGES, seed=MATRIX_SEED, **overrides
    )


@pytest.fixture(scope="session")
def matrix_sources():
    """One lazily-executed, memoised source per library scenario."""
    return {name: RunSource(config=matrix_config(name)) for name in scenario_names()}


# ---------------------------------------------------------------------------
# the equivalence matrix: 5 scenarios x 3 backends, pinned
# ---------------------------------------------------------------------------


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("name", scenario_names())
    def test_all_backends_identical_and_pinned(self, matrix_sources, name):
        report = verify_equivalence(matrix_sources[name], window=MATRIX_WINDOW)
        assert {o.kind for o in report.outcomes} == {"batch", "streaming", "sharded"}
        assert report.equivalent, report.describe()
        golden = json.loads(GOLDEN_PATH.read_text("utf-8"))
        assert report.digest == golden[name], (
            f"{name}: pipeline output diverged from the pinned golden digest "
            "(if intentional, regenerate with "
            "`PYTHONPATH=src:tests python tests/test_pipeline.py --regenerate`)"
        )

    def test_process_executor_matches_thread_executor(self, matrix_sources):
        source = matrix_sources["fanout_aggregator"]
        thread = BackendSpec.sharded(window=MATRIX_WINDOW, executor="thread")
        process = BackendSpec.sharded(window=MATRIX_WINDOW, executor="process")
        thread_result = thread.correlate(source.activities())
        process_result = process.correlate(source.activities())
        assert result_digest(process_result) == result_digest(thread_result)
        # CAGs that crossed the process boundary are structurally intact.
        for cag in process_result.cags[:20]:
            cag.validate()

    def test_pipeline_verify_equivalence_uses_the_pipeline_window(self, matrix_sources):
        pipeline = Pipeline(
            matrix_sources["cache_aside"], backend=BackendSpec.batch(window=0.005)
        )
        report = pipeline.verify_equivalence()
        assert report.equivalent, report.describe()
        assert all(o.backend.window == 0.005 for o in report.outcomes)


class TestEquivalenceReporting:
    def _divergent_trace(self) -> SyntheticTrace:
        """A trace where a short streaming horizon genuinely changes the
        output: a request whose BEGIN sits idle far longer than the
        horizon (its state is evicted before the work arrives) plus
        steady unrelated traffic that keeps the watermark moving."""
        trace = SyntheticTrace()
        trace.three_tier_request(request_id=1, start=0.5, web_pid=100)
        # the straggler: BEGIN now, work only after a long idle gap
        trace.three_tier_request(request_id=2, start=6.0, web_pid=101)
        straggler_begin = next(
            a for a in trace.activities
            if a.request_id == 2 and a.type is ActivityType.BEGIN
        )
        straggler_begin.timestamp = 0.6
        # watermark movers between the BEGIN and the late work
        for index in range(3, 7):
            trace.three_tier_request(
                request_id=index, start=1.0 + index * 0.8, web_pid=100 + index
            )
        return trace

    def test_mismatch_is_reported_not_hidden(self):
        trace = self._divergent_trace()
        source = MemorySource(trace.activities)
        backends = [
            BackendSpec.batch(window=MATRIX_WINDOW),
            BackendSpec.streaming(window=MATRIX_WINDOW, horizon=1.0, skew_bound=0.001),
        ]
        report = verify_equivalence(source, backends=backends)
        assert not report.equivalent
        assert report.digest is None
        assert [o.kind for o in report.mismatches()] == ["streaming"]
        assert "MISMATCH" in report.describe()
        with pytest.raises(EquivalenceError):
            report.require()

    def test_generous_horizon_restores_equivalence(self):
        trace = self._divergent_trace()
        source = MemorySource(trace.activities)
        backends = [
            BackendSpec.batch(window=MATRIX_WINDOW),
            BackendSpec.streaming(window=MATRIX_WINDOW, horizon=60.0, skew_bound=0.001),
        ]
        verify_equivalence(source, backends=backends).require()


# ---------------------------------------------------------------------------
# sources
# ---------------------------------------------------------------------------


class TestSources:
    def test_as_source_adapts_configs_runs_and_lists(self, tiny_run):
        from helpers import tiny_config

        assert isinstance(as_source(tiny_config()), RunSource)
        assert isinstance(as_source(tiny_run), RunSource)
        assert isinstance(as_source(tiny_run.activities()), MemorySource)
        source = as_source(tiny_run)
        assert source is as_source(source)  # sources pass through
        with pytest.raises(TypeError):
            as_source("/var/log/trace.log")  # log files need a frontend

    def test_run_source_hands_out_fresh_activities(self, tiny_run):
        source = RunSource.from_run(tiny_run)
        first = source.activities()
        second = source.activities()
        assert len(first) == len(second) == tiny_run.total_activities
        assert first[0] is not second[0]
        assert source.ground_truth is tiny_run.ground_truth

    def test_memory_source_clones_protect_the_originals(self, tiny_run):
        source = MemorySource(tiny_run.activities())
        spec = BackendSpec.batch(window=MATRIX_WINDOW)
        # Two passes over the same source: if the first pass's in-place
        # byte merging leaked into the held originals, the second digest
        # would differ.
        assert result_digest(spec.correlate(source.activities())) == result_digest(
            spec.correlate(source.activities())
        )

    def test_log_source_matches_the_simulation_source(self, tiny_run, tmp_path):
        # One log file per node, as a real deployment would hand us.
        paths = []
        for node, records in sorted(tiny_run.records_by_node.items()):
            path = tmp_path / f"tcp_trace_{node}.log"
            path.write_text(
                "".join(format_record(record) + "\n" for record in records),
                encoding="utf-8",
            )
            paths.append(path)
        log_source = LogSource(
            paths,
            frontend=tiny_run.frontend_spec(),
            ignore_programs=set(tiny_run.topology.ignore_programs),
        )
        # The text round trip truncates timestamps to the TCP_TRACE
        # format's 6-decimal precision, so digests cannot be compared
        # against the in-memory source; the reconstruction itself must
        # still be complete and exact.
        session = Pipeline(
            source=log_source,
            backend=BackendSpec.batch(window=MATRIX_WINDOW),
        ).run()
        assert session.request_count == tiny_run.completed_requests
        assert log_source.malformed_lines == 0
        from repro.core.accuracy import path_accuracy

        report = path_accuracy(
            session.cags, tiny_run.ground_truth, time_tolerance=1e-5
        )
        assert report.accuracy == 1.0
        # and the three backends agree on the file-based source too
        verify_equivalence(log_source, window=MATRIX_WINDOW).require()

    def test_log_source_counts_malformed_lines(self, tiny_run, tmp_path):
        path = tmp_path / "torn.log"
        lines = [format_record(r) for r in tiny_run.all_records()[:10]]
        lines.insert(3, "this is not a record")
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        source = LogSource(path, frontend=tiny_run.frontend_spec())
        activities = source.activities()
        assert len(activities) == 10
        assert source.malformed_lines == 1


# ---------------------------------------------------------------------------
# the facade: stages and sinks
# ---------------------------------------------------------------------------


class TestPipelineFacade:
    def test_stages_and_sinks_compose(self, tiny_run, tmp_path):
        pipeline = Pipeline(
            source=tiny_run,
            backend=BackendSpec.streaming(window=MATRIX_WINDOW, skew_bound=0.002),
            stages=[
                AccuracyStage(),
                RankedLatencyStage(top=3),
                PatternStage(),
                BreakdownStage(),
                ProfileStage("tiny"),
            ],
            sinks=[
                SummaryJsonSink(tmp_path / "summary.json"),
                CagJsonlSink(tmp_path / "cags.jsonl"),
                DotSink(tmp_path / "dot", limit=2),
            ],
        )
        session = pipeline.run()

        assert session.request_count == tiny_run.completed_requests
        assert session.analyses["accuracy"].accuracy == 1.0
        ranked = session.analyses["ranked_latency"]
        assert 0 < len(ranked) <= 3
        assert ranked[0]["rank"] == 1
        assert ranked[0]["paths"] >= ranked[-1]["paths"]  # most frequent first
        assert sum(ranked[0]["percentages"].values()) == pytest.approx(100.0)
        assert session.analyses["patterns"]
        assert session.analyses["breakdown"].total > 0
        assert session.analyses["profile"].percentages

        summary = json.loads((tmp_path / "summary.json").read_text("utf-8"))
        assert summary["requests"] == session.request_count
        assert summary["backend"].startswith("streaming")

        jsonl_lines = (tmp_path / "cags.jsonl").read_text("utf-8").splitlines()
        assert len(jsonl_lines) == session.request_count
        first = json.loads(jsonl_lines[0])
        assert first["finished"] and first["vertices"]

        dots = sorted((tmp_path / "dot").glob("*.dot"))
        assert len(dots) == 2
        assert "digraph cag" in dots[0].read_text("utf-8")

        assert set(session.artifacts) == {"summary_json", "cag_jsonl", "dot"}

    def test_on_cag_hook_fires_per_finished_path(self, tiny_run):
        seen = []
        session = Pipeline(
            source=tiny_run,
            backend=BackendSpec.streaming(window=MATRIX_WINDOW, skew_bound=0.002),
        ).run(on_cag=seen.append)
        assert len(seen) == session.request_count

    def test_with_backend_swaps_only_the_driver(self, tiny_run):
        base = Pipeline(source=tiny_run, stages=[AccuracyStage()])
        sharded = base.with_backend(BackendSpec.sharded(window=MATRIX_WINDOW))
        assert sharded.source is base.source
        session = sharded.run()
        assert session.backend.kind == "sharded"
        assert session.analyses["accuracy"].accuracy == 1.0

    def test_accuracy_stage_requires_ground_truth(self, tiny_run):
        pipeline = Pipeline(
            source=MemorySource(tiny_run.activities()), stages=[AccuracyStage()]
        )
        with pytest.raises(ValueError, match="ground truth"):
            pipeline.run()

    def test_diagnosis_stage_accepts_a_reference_session(self, tiny_run):
        reference = Pipeline(source=tiny_run, stages=[ProfileStage("healthy")]).run()
        session = Pipeline(
            source=tiny_run,
            stages=[DiagnosisStage(reference, threshold=5.0)],
        ).run()
        diagnosis = session.analyses["diagnosis"]
        # same trace against itself: nothing above the threshold
        assert diagnosis.suspected_components() == []


# ---------------------------------------------------------------------------
# backend spec validation
# ---------------------------------------------------------------------------


class TestBackendSpec:
    def test_bad_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            BackendSpec(kind="quantum")
        with pytest.raises(ValueError):
            BackendSpec(window=0.0)
        with pytest.raises(ValueError):
            BackendSpec.streaming(horizon=-1.0)
        with pytest.raises(ValueError):
            BackendSpec.streaming(chunk_size=0)
        with pytest.raises(ValueError):
            BackendSpec.sharded(executor="fiber")

    def test_describe_names_the_driver_and_knobs(self):
        batch = BackendSpec.batch(window=0.002).describe()
        assert batch.startswith("batch (window=0.002s")
        # every kind reports the active rank-kernel backend
        assert "kernel=python" in batch or "kernel=native" in batch
        streaming = BackendSpec.streaming(horizon=5.0).describe()
        assert "streaming" in streaming and "horizon=5s" in streaming
        assert "kernel=" in streaming
        sharded = BackendSpec.sharded(executor="process", max_shards=8).describe()
        assert "executor=process" in sharded and "max_shards=8" in sharded
        assert "kernel=" in sharded

    def test_sharded_result_reports_shard_sizes(self, tiny_run):
        result = BackendSpec.sharded(window=MATRIX_WINDOW, max_shards=4).correlate(
            tiny_run.activities()
        )
        assert result.shard_sizes is not None
        assert sum(result.shard_sizes) == tiny_run.total_activities
        batch = BackendSpec.batch(window=MATRIX_WINDOW).correlate(tiny_run.activities())
        assert batch.shard_sizes is None


def _regenerate_goldens() -> None:
    digests = {}
    for name in scenario_names():
        report = verify_equivalence(
            RunSource(config=matrix_config(name)), window=MATRIX_WINDOW
        ).require()
        digests[name] = report.digest
        print(f"{name:20s} {report.digest}")
    GOLDEN_PATH.write_text(json.dumps(digests, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate_goldens()
    else:
        print(__doc__)
