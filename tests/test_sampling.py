"""Tests for the request-sampling subsystem (repro.sampling).

The load-bearing test is the **sampled equivalence matrix**: every
scenario of the topology library, run through all three backends with
the same sampling policy, must admit the identical request subset and
produce byte-identical results -- asserted pairwise
(``verify_equivalence(sampling=...)``) and against the pinned golden
digests in ``tests/golden_sampling_digests.json``.

Regenerate the golden file after an *intentional* output change with::

    PYTHONPATH=src:tests python tests/test_sampling.py --regenerate

The rest covers the decision layer (spec validation, root-hash
determinism and subset nesting, the budget pre-pass, the adaptive
controller), the engine's tombstone bookkeeping, and the
``SamplingAccuracyStage``.
"""

import json
import math
from pathlib import Path

import pytest

from repro.core.correlator import Correlator
from repro.core.engine import CorrelationEngine
from repro.pipeline import (
    BackendSpec,
    Pipeline,
    RunSource,
    SamplingAccuracyStage,
    SamplingSpec,
    canonical_cags,
    result_digest,
    verify_equivalence,
)
from repro.sampling import (
    AdaptiveController,
    precompute_decisions,
    root_key,
    root_position,
)
from repro.sampling.sampler import iter_roots
from repro.stream import ShardedCorrelator, StreamingCorrelator
from repro.topology.library import scenario_names
from test_pipeline import MATRIX_WINDOW, matrix_config

#: The pinned matrix policy -- change only together with --regenerate.
MATRIX_SAMPLING = SamplingSpec.uniform(0.5)

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_sampling_digests.json"


@pytest.fixture(scope="session")
def matrix_sources():
    """One lazily-executed, memoised source per library scenario."""
    return {name: RunSource(config=matrix_config(name)) for name in scenario_names()}


# ---------------------------------------------------------------------------
# the sampled equivalence matrix: 5 scenarios x 3 backends, pinned
# ---------------------------------------------------------------------------


class TestSampledEquivalenceMatrix:
    @pytest.mark.parametrize("name", scenario_names())
    def test_all_backends_sample_the_identical_subset(self, matrix_sources, name):
        report = verify_equivalence(
            matrix_sources[name], window=MATRIX_WINDOW, sampling=MATRIX_SAMPLING
        )
        assert {o.kind for o in report.outcomes} == {"batch", "streaming", "sharded"}
        assert report.equivalent, report.describe()
        golden = json.loads(GOLDEN_PATH.read_text("utf-8"))
        assert report.digest == golden[name], (
            f"{name}: sampled pipeline output diverged from the pinned golden "
            "digest (if intentional, regenerate with "
            "`PYTHONPATH=src:tests python tests/test_sampling.py --regenerate`)"
        )

    def test_sampled_cags_are_a_subset_of_the_full_run(self, matrix_sources):
        source = matrix_sources["rubis"]
        full = BackendSpec.batch(window=MATRIX_WINDOW).correlate(source.activities())
        sampled = BackendSpec.batch(
            window=MATRIX_WINDOW, sampling=MATRIX_SAMPLING
        ).correlate(source.activities())
        full_shapes = set(map(repr, canonical_cags(full.cags)))
        sampled_shapes = set(map(repr, canonical_cags(sampled.cags)))
        # the sampler selects, never approximates: every sampled-in CAG is
        # byte-identical to its full-run counterpart
        assert sampled_shapes <= full_shapes
        assert len(sampled.cags) < len(full.cags)
        stats = sampled.engine_stats
        assert stats.sampled_out_roots > 0
        assert len(sampled.cags) + stats.sampled_out_finished == len(full.cags)

    def test_budget_policy_is_backend_independent(self, matrix_sources):
        source = matrix_sources["cache_aside"]
        spec = SamplingSpec.budget(5)
        report = verify_equivalence(
            source, window=MATRIX_WINDOW, sampling=spec
        ).require()
        assert report.digest is not None

    def test_process_executor_matches_thread_executor_sampled(self, matrix_sources):
        source = matrix_sources["fanout_aggregator"]
        thread = BackendSpec.sharded(
            window=MATRIX_WINDOW, executor="thread", sampling=MATRIX_SAMPLING
        )
        process = BackendSpec.sharded(
            window=MATRIX_WINDOW, executor="process", sampling=MATRIX_SAMPLING
        )
        assert result_digest(thread.correlate(source.activities())) == result_digest(
            process.correlate(source.activities())
        )

    def test_adaptive_batch_matches_streaming(self, matrix_sources):
        # Both drivers correlate the identical candidate sequence and the
        # controller ticks on a candidate-count cadence, so with eviction
        # disabled the adaptive rate trajectories -- and the admitted
        # subsets -- coincide exactly.
        source = matrix_sources["rubis"]
        spec = SamplingSpec.adaptive(target_open_cags=5, interval=64, gain=0.8)
        batch = BackendSpec.batch(window=MATRIX_WINDOW, sampling=spec).correlate(
            source.activities()
        )
        streaming = BackendSpec.streaming(
            window=MATRIX_WINDOW, sampling=spec
        ).correlate(source.activities())
        assert result_digest(batch) == result_digest(streaming)

    def test_sampling_reduces_engine_state(self, matrix_sources):
        source = matrix_sources["rubis"]
        full = BackendSpec.batch(window=MATRIX_WINDOW).correlate(source.activities())
        sampled = BackendSpec.batch(
            window=MATRIX_WINDOW, sampling=SamplingSpec.uniform(0.1)
        ).correlate(source.activities())
        assert sampled.peak_state_entries < full.peak_state_entries


# ---------------------------------------------------------------------------
# the decision layer
# ---------------------------------------------------------------------------


class TestSamplingSpec:
    def test_bad_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            SamplingSpec(kind="coinflip")
        with pytest.raises(ValueError):
            SamplingSpec.uniform(0.0)
        with pytest.raises(ValueError):
            SamplingSpec.uniform(1.5)
        with pytest.raises(ValueError):
            SamplingSpec.budget(0)
        with pytest.raises(ValueError):
            SamplingSpec(kind="uniform", budget_per_second=10)
        with pytest.raises(ValueError):
            SamplingSpec(kind="budget")
        with pytest.raises(ValueError):
            SamplingSpec(kind="adaptive")  # no controller
        with pytest.raises(ValueError):
            SamplingSpec.adaptive(target_open_cags=0)
        with pytest.raises(ValueError):
            SamplingSpec.adaptive(target_open_cags=10, gain=0.0)
        with pytest.raises(ValueError):
            SamplingSpec.adaptive(target_open_cags=10, min_rate=0.9, max_rate=0.5)

    def test_describe_names_policy_and_knobs(self):
        assert SamplingSpec.uniform(0.25).describe() == "uniform (rate=0.25)"
        assert "budget=40/s" in SamplingSpec.budget(40).describe()
        adaptive = SamplingSpec.adaptive(target_open_cags=100).describe()
        assert "adaptive" in adaptive and "target_open_cags=100" in adaptive
        assert "salt=7" in SamplingSpec.uniform(0.5, salt=7).describe()

    def test_backend_spec_validation(self):
        with pytest.raises(ValueError, match="SamplingSpec"):
            BackendSpec.batch(sampling="0.5")
        with pytest.raises(ValueError, match="adaptive"):
            BackendSpec.sharded(
                sampling=SamplingSpec.adaptive(target_open_cags=10)
            )
        with pytest.raises(ValueError, match="adaptive"):
            ShardedCorrelator(sampling=SamplingSpec.adaptive(target_open_cags=10))
        described = BackendSpec.batch(sampling=SamplingSpec.uniform(0.5)).describe()
        assert "sampling=uniform (rate=0.5)" in described


class TestRootHash:
    def test_positions_are_deterministic_and_clone_stable(self, tiny_run):
        roots = iter_roots(tiny_run.activities())
        assert roots, "the run must contain BEGIN roots"
        for root in roots[:20]:
            position = root_position(root)
            assert 0.0 <= position < 1.0
            assert root_position(root) == position
            assert root_position(root.clone()) == position

    def test_salt_rotates_the_subset(self, tiny_run):
        roots = iter_roots(tiny_run.activities())
        default = {root_key(r) for r in roots if root_position(r, 0) < 0.5}
        salted = {root_key(r) for r in roots if root_position(r, 1) < 0.5}
        assert default != salted

    def test_rates_nest_monotonically(self, tiny_run):
        """Everything sampled at a low rate is also sampled at any higher
        rate -- the property that makes rate sweeps comparable."""
        roots = iter_roots(tiny_run.activities())
        subsets = {
            rate: {
                root_key(r) for r in roots if root_position(r) < rate
            }
            for rate in (0.1, 0.3, 0.6, 1.0)
        }
        assert subsets[0.1] <= subsets[0.3] <= subsets[0.6] <= subsets[1.0]
        assert subsets[1.0] == {root_key(r) for r in roots}

    def test_realised_fraction_tracks_the_rate(self, tiny_run):
        roots = iter_roots(tiny_run.activities())
        admitted = sum(1 for r in roots if root_position(r) < 0.5)
        assert 0.3 <= admitted / len(roots) <= 0.7  # small-sample slack


class TestBudgetPolicy:
    def test_budget_caps_admitted_roots_per_second(self, tiny_run):
        spec = SamplingSpec.budget(3)
        decisions = precompute_decisions(tiny_run.activities(), spec)
        by_bucket = {}
        for _ctx, _msg, ts in decisions:
            bucket = int(math.floor(ts))
            by_bucket[bucket] = by_bucket.get(bucket, 0) + 1
        assert by_bucket, "budget must admit something"
        assert max(by_bucket.values()) <= 3

    def test_budget_admits_earliest_roots_first(self, tiny_run):
        spec = SamplingSpec.budget(2)
        roots = iter_roots(tiny_run.activities())
        decisions = precompute_decisions(tiny_run.activities(), spec)
        for bucket in {int(math.floor(r.timestamp)) for r in roots}:
            in_bucket = [r for r in roots if int(math.floor(r.timestamp)) == bucket]
            expected = {root_key(r) for r in in_bucket[:2]}
            admitted = {
                key for key in decisions if int(math.floor(key[2])) == bucket
            }
            assert admitted == expected

    def test_adaptive_decisions_cannot_be_precomputed(self, tiny_run):
        spec = SamplingSpec.adaptive(target_open_cags=10)
        with pytest.raises(ValueError, match="run time"):
            precompute_decisions(tiny_run.activities(), spec)
        # freeze() is the drivers' hook: per-root policies freeze nothing
        assert SamplingSpec.uniform(0.5).freeze(tiny_run.activities()) is None
        assert spec.freeze(tiny_run.activities()) is None

    def test_generous_budget_traces_everything(self, tiny_run):
        full = Correlator(window=0.01).correlate(tiny_run.activities())
        sampled = Correlator(
            window=0.01, sampling=SamplingSpec.budget(10_000)
        ).correlate(tiny_run.activities())
        assert result_digest(sampled) == result_digest(full)


class TestAdaptiveController:
    def test_rate_moves_toward_the_target_and_clamps(self):
        controller = AdaptiveController(
            target_open_cags=100, gain=1.0, min_rate=0.05, max_rate=1.0
        )
        assert controller.update(200, 1.0) == 0.5  # over budget: halve
        assert controller.update(50, 0.5) == 1.0  # under budget: grow, clamp
        assert controller.update(100_000, 1.0) == 0.05  # floor clamp
        assert controller.update(0, 0.5) == 1.0  # empty engine: grow to max

    def test_gain_damps_the_correction(self):
        controller = AdaptiveController(target_open_cags=100, gain=0.5)
        assert controller.update(400, 1.0) == pytest.approx(0.5)  # sqrt(1/4)

    def test_sampler_ticks_on_the_configured_cadence(self):
        spec = SamplingSpec.adaptive(target_open_cags=1, interval=10, gain=1.0)
        sampler = spec.make_sampler()
        for _ in range(9):
            sampler.tick(1000)
        assert sampler.current_rate == 1.0  # not yet
        sampler.tick(1000)
        assert sampler.current_rate < 1.0  # tick 10 fired
        assert sampler.stats.rate_updates == 1

    def test_overloaded_engine_sheds_requests(self, loaded_run):
        spec = SamplingSpec.adaptive(
            target_open_cags=4, interval=32, gain=1.0, min_rate=0.01
        )
        full = StreamingCorrelator(window=0.01).correlate(loaded_run.activities())
        shed = StreamingCorrelator(window=0.01, sampling=spec).correlate(
            loaded_run.activities()
        )
        stats = shed.engine_stats
        assert stats.sampled_out_roots > 0
        assert len(shed.cags) < len(full.cags)
        assert shed.peak_state_entries < full.peak_state_entries


# ---------------------------------------------------------------------------
# engine bookkeeping: tombstones are evicted, never leaked
# ---------------------------------------------------------------------------


class _RejectAll:
    """Duck-typed sampler that samples every request out."""

    is_adaptive = False

    def __init__(self):
        self.roots_seen = 0

    def admit(self, root):
        self.roots_seen += 1
        return False


class TestEngineTombstones:
    def test_rejected_requests_surface_nowhere(self, trace_builder):
        trace_builder.three_tier_request(request_id=1, start=0.5)
        trace_builder.three_tier_request(request_id=2, start=1.5)
        engine = CorrelationEngine(sampler=_RejectAll())
        from repro.core.ranker import Ranker

        ranker = Ranker(trace_builder.by_node(), mmap=engine.mmap, window=0.01)
        while True:
            candidate = ranker.rank()
            if candidate is None:
                break
            engine.process(candidate)
        assert engine.finished_cags == []
        assert engine.open_cags == []
        assert engine.evicted_cags == []
        assert engine.stats.sampled_out_roots == 2
        assert engine.stats.sampled_out_finished == 2
        assert engine.stats.finished_cags == 0
        # every piece of per-request state was purged at completion
        assert engine._owner == {}
        assert engine._backlog_size == 0
        assert len(engine.mmap) == 0
        assert len(engine.cmap) == 0  # context entries purged with the tombstone

    def test_full_and_sampled_runs_agree_on_the_admitted_subset(self, tiny_run):
        spec = SamplingSpec.uniform(0.4)
        full = Correlator(window=0.01).correlate(tiny_run.activities())
        sampled = Correlator(window=0.01, sampling=spec).correlate(
            tiny_run.activities()
        )
        decisions = precompute_decisions(tiny_run.activities(), spec)
        admitted_ids = {
            next(iter(cag.request_ids()))
            for cag in full.cags
            if root_key(cag.root) in decisions
        }
        assert {
            next(iter(cag.request_ids())) for cag in sampled.cags
        } == admitted_ids


class TestSamplingAccuracyStage:
    def test_stage_scores_a_sampled_session(self, tiny_run):
        session = Pipeline(
            source=tiny_run,
            backend=BackendSpec.batch(
                window=0.01, sampling=SamplingSpec.uniform(0.5)
            ),
            stages=[SamplingAccuracyStage()],
        ).run()
        fidelity = session.analyses["sampling_accuracy"]
        assert 0.0 < fidelity.sample_fraction < 1.0
        assert 0.0 <= fidelity.pattern_coverage <= 1.0
        assert fidelity.sampled_requests == session.request_count
        assert fidelity.full_requests == tiny_run.completed_requests
        summary = fidelity.summary()
        assert summary["sampled_requests"] == float(session.request_count)

    def test_unsampled_session_scores_perfect(self, tiny_run):
        session = Pipeline(
            source=tiny_run,
            backend=BackendSpec.batch(window=0.01),
            stages=[SamplingAccuracyStage()],
        ).run()
        fidelity = session.analyses["sampling_accuracy"]
        assert fidelity.sample_fraction == 1.0
        assert fidelity.pattern_coverage == 1.0
        assert fidelity.dominant_profile_distance == 0.0


def _regenerate_goldens() -> None:
    digests = {}
    for name in scenario_names():
        report = verify_equivalence(
            RunSource(config=matrix_config(name)),
            window=MATRIX_WINDOW,
            sampling=MATRIX_SAMPLING,
        ).require()
        digests[name] = report.digest
        print(f"{name:20s} {report.digest}")
    GOLDEN_PATH.write_text(json.dumps(digests, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate_goldens()
    else:
        print(__doc__)
