"""Tests for the probabilistic baselines and their comparison with PreciseTracer."""

from helpers import SyntheticTrace
from repro.baselines.project5 import nesting_algorithm
from repro.baselines.wap5 import Wap5Config, Wap5Tracer
from repro.core.correlator import Correlator


def sequential_trace(requests=4):
    """Requests that never overlap in time: easy for every approach."""
    trace = SyntheticTrace()
    for index in range(requests):
        trace.three_tier_request(request_id=index + 1, start=index * 5.0, db_queries=2)
    return trace


def concurrent_trace(requests=8):
    """Heavily overlapped requests.

    Each request is serviced by its own worker threads (the paper's
    assumption 2 holds, so PreciseTracer must stay exact), but the
    application-server and database threads share their process id --
    which is exactly the granularity WAP5-style inference works at, so
    timing-only linking gets confused."""
    trace = SyntheticTrace()
    for index in range(requests):
        trace.three_tier_request(
            request_id=index + 1,
            start=1.0 + index * 0.0004,
            web_pid=100 + index,
            app_tid=200 + index,
            db_tid=300 + index,
            db_queries=2,
            step=0.002,
        )
    return trace


class TestWap5:
    def test_infers_paths_for_sequential_workload(self):
        trace = sequential_trace()
        paths = Wap5Tracer().infer_paths(trace.activities)
        assert len(paths) == len(trace.ground_truth)

    def test_perfect_accuracy_when_requests_do_not_overlap(self):
        trace = sequential_trace()
        accuracy = Wap5Tracer().path_accuracy(trace.activities, trace.ground_truth)
        assert accuracy == 1.0

    def test_accuracy_degrades_under_concurrency(self):
        trace = concurrent_trace()
        accuracy = Wap5Tracer().path_accuracy(trace.activities, trace.ground_truth)
        assert accuracy < 1.0

    def test_precisetracer_beats_wap5_on_the_same_concurrent_trace(self):
        trace = concurrent_trace()
        wap5_accuracy = Wap5Tracer().path_accuracy(trace.activities, trace.ground_truth)
        result = Correlator(window=0.01).correlate(trace.activities)
        from repro.core.accuracy import path_accuracy

        precise = path_accuracy(result.cags, trace.ground_truth).accuracy
        assert precise == 1.0
        assert precise > wap5_accuracy

    def test_empty_ground_truth(self):
        assert Wap5Tracer().path_accuracy([], {}) == 1.0

    def test_config_controls_causal_horizon(self):
        config = Wap5Config(max_causal_gap=0.0001, decay=0.001)
        trace = sequential_trace(requests=2)
        # with an absurdly small horizon most outputs cannot be linked
        paths = Wap5Tracer(config).infer_paths(trace.activities)
        linked = sum(len(path.activities) for path in paths)
        assert linked < len(trace.activities)


class TestProject5Nesting:
    def test_pairs_calls_and_returns(self):
        trace = sequential_trace(requests=2)
        result = nesting_algorithm(trace.activities)
        assert result.pairs
        # every pair must have both halves for a complete trace
        complete = [pair for pair in result.pairs if pair.return_receive is not None]
        assert complete

    def test_sequential_requests_nest_correctly(self):
        trace = sequential_trace(requests=3)
        result = nesting_algorithm(trace.activities)
        assert result.path_accuracy(trace.ground_truth) == 1.0

    def test_concurrent_requests_confuse_nesting(self):
        trace = concurrent_trace()
        result = nesting_algorithm(trace.activities)
        assert result.path_accuracy(trace.ground_truth) < 1.0

    def test_roots_are_calls_issued_by_the_frontend(self):
        # The client side is untraced, so the outermost visible RPC is the
        # web tier calling the application tier.
        trace = sequential_trace(requests=2)
        result = nesting_algorithm(trace.activities)
        assert result.roots()
        for root in result.roots():
            assert root.caller[1] == "httpd"
            assert root.callee[1] == "java"

    def test_children_of_lists_nested_calls(self):
        trace = sequential_trace(requests=1)
        result = nesting_algorithm(trace.activities)
        roots = result.roots()
        assert roots
        nested = result.children_of(roots[0])
        assert len(nested) >= 1
