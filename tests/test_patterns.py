"""Tests for causal-path pattern classification."""

import pytest

from helpers import SyntheticTrace
from repro.core.correlator import Correlator
from repro.core.patterns import PatternClassifier, cag_signature, classify, dominant_pattern


def make_cags(query_counts):
    trace = SyntheticTrace()
    for index, queries in enumerate(query_counts):
        trace.three_tier_request(
            request_id=index + 1,
            start=index * 1.0,
            db_queries=queries,
            web_pid=100 + index % 5,   # different workers every time
            app_tid=200 + index % 7,
            db_tid=300 + index % 7,
        )
    result = Correlator(window=0.01).correlate(trace.activities)
    assert result.completed_requests == len(query_counts)
    return result.cags


class TestSignature:
    def test_same_shape_same_signature_despite_different_workers(self):
        cags = make_cags([2, 2])
        assert cag_signature(cags[0]) == cag_signature(cags[1])

    def test_different_query_count_changes_signature(self):
        cags = make_cags([1, 3])
        assert cag_signature(cags[0]) != cag_signature(cags[1])

    def test_signature_contains_component_info_not_pids(self):
        cags = make_cags([1])
        vertex_sigs, _ = cag_signature(cags[0])
        for type_name, hostname, program in vertex_sigs:
            assert isinstance(type_name, str)
            assert program in {"httpd", "java", "mysqld"}


class TestClassification:
    def test_groups_by_shape(self):
        cags = make_cags([2, 2, 2, 1, 1, 3])
        patterns = classify(cags)
        assert len(patterns) == 3
        assert patterns[0].count == 3  # most frequent first
        assert sum(p.count for p in patterns) == 6

    def test_dominant_pattern(self):
        cags = make_cags([2, 2, 1])
        dominant = dominant_pattern(cags)
        assert dominant is not None
        assert dominant.count == 2

    def test_dominant_pattern_of_empty_is_none(self):
        assert dominant_pattern([]) is None

    def test_pattern_components_and_length(self):
        cags = make_cags([2])
        pattern = classify(cags)[0]
        components = {program for _host, program in pattern.components()}
        assert components == {"httpd", "java", "mysqld"}
        assert pattern.length == len(cags[0])

    def test_pattern_average_path_and_latency(self):
        cags = make_cags([2, 2])
        pattern = classify(cags)[0]
        average = pattern.average_path()
        assert average.total > 0
        assert pattern.average_latency() == pytest.approx(cags[0].duration(), rel=1e-6)

    def test_describe_mentions_count(self):
        cags = make_cags([1, 1])
        text = classify(cags)[0].describe()
        assert "2 paths" in text

    def test_classifier_incremental_add(self):
        cags = make_cags([1, 2])
        classifier = PatternClassifier()
        classifier.add(cags[0])
        assert len(classifier) == 1
        classifier.add(cags[1])
        assert len(classifier) == 2
        assert classifier.most_frequent() is not None
