"""Unit tests for the correlation engine (Fig. 3 pseudo-code)."""

from repro.core.activity import Activity, ActivityType, ContextId, MessageId
from repro.core.engine import CorrelationEngine


WEB_CTX = ("www", "httpd", 100, 100)
APP_CTX = ("app", "java", 200, 201)
DB_CTX = ("db", "mysqld", 300, 301)


def act(activity_type, ts, ctx, src, dst, size=100, rid=1):
    return Activity(
        type=activity_type,
        timestamp=ts,
        context=ContextId(*ctx),
        message=MessageId(src[0], src[1], dst[0], dst[1], size),
        request_id=rid,
    )


CLIENT = ("9.9.9.9", 55000)
WEB_FRONT = ("10.0.0.1", 80)
WEB_OUT = ("10.0.0.1", 33000)
APP_IN = ("10.0.0.2", 8080)


def begin(ts=1.0, size=400):
    return act(ActivityType.BEGIN, ts, WEB_CTX, CLIENT, WEB_FRONT, size)


def simple_request(engine):
    """Feed a minimal BEGIN -> SEND -> RECEIVE -> SEND -> RECEIVE -> END."""
    b = begin(1.0)
    s1 = act(ActivityType.SEND, 1.1, WEB_CTX, WEB_OUT, APP_IN, 600)
    r1 = act(ActivityType.RECEIVE, 1.2, APP_CTX, WEB_OUT, APP_IN, 600)
    s2 = act(ActivityType.SEND, 1.3, APP_CTX, APP_IN, WEB_OUT, 900)
    r2 = act(ActivityType.RECEIVE, 1.4, WEB_CTX, APP_IN, WEB_OUT, 900)
    e = act(ActivityType.END, 1.5, WEB_CTX, WEB_FRONT, CLIENT, 2000)
    for activity in (b, s1, r1, s2, r2, e):
        engine.process(activity)
    return [b, s1, r1, s2, r2, e]


class TestBeginEnd:
    def test_begin_creates_open_cag(self):
        engine = CorrelationEngine()
        engine.process(begin())
        assert len(engine.open_cags) == 1
        assert len(engine.finished_cags) == 0
        assert engine.stats.begins == 1

    def test_end_finishes_cag_and_outputs_it(self):
        engine = CorrelationEngine()
        activities = simple_request(engine)
        assert len(engine.finished_cags) == 1
        assert len(engine.open_cags) == 0
        cag = engine.finished_cags[0]
        assert cag.finished
        assert len(cag) == len(activities)

    def test_end_without_context_parent_is_unmatched(self):
        engine = CorrelationEngine()
        engine.process(act(ActivityType.END, 1.0, WEB_CTX, WEB_FRONT, CLIENT, 2000))
        assert engine.stats.unmatched_ends == 1
        assert not engine.finished_cags

    def test_split_begin_parts_merge_into_one_root(self):
        engine = CorrelationEngine()
        engine.process(begin(1.0, size=300))
        engine.process(begin(1.0001, size=100))
        assert len(engine.open_cags) == 1
        assert engine.open_cags[0].root.size == 400

    def test_split_end_parts_merge(self):
        engine = CorrelationEngine()
        activities = simple_request(engine)
        extra_end = act(ActivityType.END, 1.50001, WEB_CTX, WEB_FRONT, CLIENT, 500)
        engine.process(extra_end)
        assert len(engine.finished_cags) == 1
        # the extra part only grew the first END's byte count
        assert activities[-1].size == 2500

    def test_two_requests_in_same_worker_produce_two_cags(self):
        engine = CorrelationEngine()
        simple_request(engine)
        # second request handled by the same httpd worker (context reuse)
        b = begin(2.0)
        e = act(ActivityType.END, 2.5, WEB_CTX, WEB_FRONT, CLIENT, 1000)
        engine.process(b)
        engine.process(e)
        assert len(engine.finished_cags) == 2
        first, second = engine.finished_cags
        assert first.root is not second.root


class TestSendHandling:
    def test_send_joins_cag_with_context_edge(self):
        engine = CorrelationEngine()
        b = begin()
        s = act(ActivityType.SEND, 1.1, WEB_CTX, WEB_OUT, APP_IN, 600)
        engine.process(b)
        engine.process(s)
        cag = engine.open_cags[0]
        assert s in cag
        assert cag.context_parent(s) is b

    def test_send_without_parent_is_ignored(self):
        engine = CorrelationEngine()
        s = act(ActivityType.SEND, 1.0, APP_CTX, APP_IN, WEB_OUT, 100)
        engine.process(s)
        assert engine.stats.unmatched_sends == 1
        assert not engine.mmap.has_match(s.message_key)

    def test_consecutive_send_parts_merge_by_size(self):
        engine = CorrelationEngine()
        b = begin()
        part1 = act(ActivityType.SEND, 1.1, WEB_CTX, WEB_OUT, APP_IN, 400)
        part2 = act(ActivityType.SEND, 1.1001, WEB_CTX, WEB_OUT, APP_IN, 200)
        for activity in (b, part1, part2):
            engine.process(activity)
        assert engine.stats.merged_sends == 1
        assert part1.size == 600
        cag = engine.open_cags[0]
        assert part1 in cag
        assert part2 not in cag

    def test_sends_to_different_destinations_do_not_merge(self):
        engine = CorrelationEngine()
        b = begin()
        to_app = act(ActivityType.SEND, 1.1, WEB_CTX, WEB_OUT, APP_IN, 400)
        to_other = act(ActivityType.SEND, 1.2, WEB_CTX, WEB_OUT, ("10.0.0.9", 1234), 300)
        for activity in (b, to_app, to_other):
            engine.process(activity)
        assert engine.stats.merged_sends == 0
        assert len(engine.open_cags[0]) == 3


class TestReceiveHandling:
    def test_receive_matches_send_and_gets_message_edge(self):
        engine = CorrelationEngine()
        b = begin()
        s = act(ActivityType.SEND, 1.1, WEB_CTX, WEB_OUT, APP_IN, 600)
        r = act(ActivityType.RECEIVE, 1.2, APP_CTX, WEB_OUT, APP_IN, 600)
        for activity in (b, s, r):
            engine.process(activity)
        cag = engine.open_cags[0]
        assert cag.message_parent(r) is s
        assert not engine.mmap.has_match(s.message_key)

    def test_unmatched_receive_is_counted_and_ignored(self):
        engine = CorrelationEngine()
        r = act(ActivityType.RECEIVE, 1.0, APP_CTX, WEB_OUT, APP_IN, 600)
        engine.process(r)
        assert engine.stats.unmatched_receives == 1

    def test_partial_receives_accumulate_until_balance(self):
        """Fig. 4: one send, receiver reads in three parts."""
        engine = CorrelationEngine()
        b = begin()
        s = act(ActivityType.SEND, 1.1, WEB_CTX, WEB_OUT, APP_IN, 900)
        parts = [
            act(ActivityType.RECEIVE, 1.2, APP_CTX, WEB_OUT, APP_IN, 400),
            act(ActivityType.RECEIVE, 1.21, APP_CTX, WEB_OUT, APP_IN, 400),
            act(ActivityType.RECEIVE, 1.22, APP_CTX, WEB_OUT, APP_IN, 100),
        ]
        engine.process(b)
        engine.process(s)
        for part in parts[:-1]:
            engine.process(part)
            assert engine.mmap.has_match(s.message_key)  # still pending
        engine.process(parts[-1])
        cag = engine.open_cags[0]
        assert parts[-1] in cag  # the completing part becomes the vertex
        assert parts[0] not in cag
        assert engine.stats.partial_receives == 2

    def test_n_to_n_segmentation_with_interleaved_delivery(self):
        """Fig. 4 general case: 2 send parts, 3 receive parts, interleaved."""
        engine = CorrelationEngine()
        b = begin()
        s1 = act(ActivityType.SEND, 1.1, WEB_CTX, WEB_OUT, APP_IN, 500)
        s2 = act(ActivityType.SEND, 1.1001, WEB_CTX, WEB_OUT, APP_IN, 400)
        r1 = act(ActivityType.RECEIVE, 1.2, APP_CTX, WEB_OUT, APP_IN, 300)
        r2 = act(ActivityType.RECEIVE, 1.21, APP_CTX, WEB_OUT, APP_IN, 300)
        r3 = act(ActivityType.RECEIVE, 1.22, APP_CTX, WEB_OUT, APP_IN, 300)
        # delivery order interleaves receive parts between the send parts
        for activity in (b, s1, r1, r2, s2, r3):
            engine.process(activity)
        cag = engine.open_cags[0]
        receives_in_cag = [v for v in cag.vertices if v.type is ActivityType.RECEIVE]
        assert len(receives_in_cag) == 1
        assert cag.message_parent(receives_in_cag[0]) is s1

    def test_balance_reached_during_merge_still_adds_receive(self):
        """The byte balance can hit zero while a SEND part is merged."""
        engine = CorrelationEngine()
        b = begin()
        s1 = act(ActivityType.SEND, 1.1, WEB_CTX, WEB_OUT, APP_IN, 500)
        s2 = act(ActivityType.SEND, 1.1001, WEB_CTX, WEB_OUT, APP_IN, 400)
        r1 = act(ActivityType.RECEIVE, 1.2, APP_CTX, WEB_OUT, APP_IN, 600)
        r2 = act(ActivityType.RECEIVE, 1.21, APP_CTX, WEB_OUT, APP_IN, 300)
        # all receiver bytes are delivered before the second send part
        for activity in (b, s1, r1, r2, s2):
            engine.process(activity)
        cag = engine.open_cags[0]
        receives_in_cag = [v for v in cag.vertices if v.type is ActivityType.RECEIVE]
        assert len(receives_in_cag) == 1
        assert not engine.mmap.has_match(s1.message_key)

    def test_receive_gets_context_edge_only_within_same_cag(self):
        """Thread reuse (Fig. 3 lines 29-32): the recycled thread's previous
        activity belongs to another request and must not be linked."""
        engine = CorrelationEngine()
        first = simple_request(engine)
        # Second request: same app thread (APP_CTX) serves it.
        b = begin(2.0)
        s = act(ActivityType.SEND, 2.1, WEB_CTX, WEB_OUT, APP_IN, 600)
        r = act(ActivityType.RECEIVE, 2.2, APP_CTX, WEB_OUT, APP_IN, 600)
        for activity in (b, s, r):
            engine.process(activity)
        cag = engine.open_cags[0]
        # message edge present, but no context edge back to request 1
        assert cag.message_parent(r) is s
        assert cag.context_parent(r) is None
        assert engine.stats.thread_reuse_blocked >= 1

    def test_receive_with_both_parents_in_same_cag_gets_both(self):
        engine = CorrelationEngine()
        activities = simple_request(engine)
        cag = engine.finished_cags[0]
        r2 = activities[4]
        assert cag.message_parent(r2) is activities[3]
        assert cag.context_parent(r2) is activities[1]


class TestLifecycleAndState:
    def test_finished_cag_state_is_cleaned_up(self):
        engine = CorrelationEngine()
        simple_request(engine)
        assert len(engine.mmap) == 0
        assert engine.pending_state_size() >= 0
        assert len(engine._owner) == 0  # internal, but the leak matters

    def test_validate_every_finished_cag(self):
        engine = CorrelationEngine()
        simple_request(engine)
        for cag in engine.finished_cags:
            cag.validate()

    def test_request_ids_are_pure_per_cag(self):
        engine = CorrelationEngine()
        simple_request(engine)
        assert engine.finished_cags[0].request_ids() == {1}
