"""Shared fixtures for the test suite.

Integration fixtures run the cluster simulator once per session with a
small configuration and share the result, so individual tests stay fast.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.services.rubis.client import WorkloadStages
from repro.services.rubis.deployment import RubisConfig, run_rubis


TINY_STAGES = WorkloadStages(up_ramp=0.5, runtime=4.0, down_ramp=0.5)


def tiny_config(**overrides) -> RubisConfig:
    """A small, fast experiment configuration for integration tests."""
    base = RubisConfig(
        clients=30,
        stages=TINY_STAGES,
        clock_skew=0.001,
        think_time=3.0,
        seed=42,
    )
    return base.with_overrides(**overrides) if overrides else base


@pytest.fixture(scope="session")
def tiny_run():
    """One shared small Browse_Only run (traced)."""
    return run_rubis(tiny_config())


@pytest.fixture(scope="session")
def tiny_trace(tiny_run):
    """The PreciseTracer result over the shared small run."""
    return tiny_run.trace(window=0.010)


@pytest.fixture(scope="session")
def loaded_run():
    """A run with enough concurrency to exercise queueing and thread reuse."""
    return run_rubis(tiny_config(clients=120, think_time=2.0))


@pytest.fixture()
def trace_builder():
    """A fresh synthetic-trace builder (no skew, no segmentation)."""
    from helpers import SyntheticTrace

    return SyntheticTrace()
