"""Shared fixtures for the test suite.

Integration fixtures run the cluster simulator once per session with a
small configuration and share the result, so individual tests stay fast.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.services.rubis.deployment import run_rubis

from helpers import TINY_STAGES, tiny_config  # noqa: F401  (re-exported for fixtures)


@pytest.fixture(scope="session")
def tiny_run():
    """One shared small Browse_Only run (traced)."""
    return run_rubis(tiny_config())


@pytest.fixture(scope="session")
def tiny_trace(tiny_run):
    """The PreciseTracer result over the shared small run."""
    return tiny_run.trace(window=0.010)


@pytest.fixture(scope="session")
def loaded_run():
    """A run with enough concurrency to exercise queueing and thread reuse."""
    return run_rubis(tiny_config(clients=120, think_time=2.0))


@pytest.fixture()
def trace_builder():
    """A fresh synthetic-trace builder (no skew, no segmentation)."""
    from helpers import SyntheticTrace

    return SyntheticTrace()
