"""Tests for the experiment harness (figure generators, report, CLI)."""

import pytest

from repro.experiments.config import FULL, SCALES, SMALL, ExperimentScale, default_scale
from repro.experiments.figures import (
    FigureResult,
    accuracy_table,
    baseline_comparison,
    figure8,
    figure11,
    figure15,
    figure16,
    figure17,
    figure17_diagnosis,
)
from repro.experiments.report import format_value, render_report, render_table, write_report
from repro.experiments.runner import RunCache, config_key, get_run
from repro.services.rubis.client import WorkloadStages
from repro.services.rubis.deployment import RubisConfig


#: A deliberately tiny scale so harness tests stay fast.
TINY = ExperimentScale(
    name="tiny",
    stages=WorkloadStages(up_ramp=0.5, runtime=3.0, down_ramp=0.5),
    seed=21,
    client_series=(20, 60),
    window_clients=(20,),
    windows=(0.001, 0.1),
    fig15_clients=(20, 60),
    fault_clients=30,
    noise_clients=(20,),
    accuracy_clients=(20,),
    accuracy_windows=(0.01,),
    accuracy_skews=(0.001, 0.2),
    accuracy_workloads=("browse_only",),
    baseline_clients=(20,),
)


@pytest.fixture(scope="module")
def cache():
    return RunCache()


class TestScales:
    def test_registry_contains_small_and_full(self):
        assert SCALES["small"] is SMALL
        assert SCALES["full"] is FULL

    def test_default_scale_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert default_scale() is FULL
        monkeypatch.setenv("REPRO_SCALE", "unknown")
        assert default_scale() is SMALL
        monkeypatch.delenv("REPRO_SCALE")
        assert default_scale() is SMALL

    def test_full_scale_covers_the_paper_grid(self):
        assert FULL.client_series[0] == 100
        assert FULL.client_series[-1] == 1000
        assert len(FULL.client_series) == 10


class TestRunCache:
    def test_identical_configs_hit_the_cache(self, cache):
        config = RubisConfig(clients=10, stages=TINY.stages, seed=TINY.seed)
        first = get_run(config, cache)
        second = get_run(config, cache)
        assert first is second
        assert cache.hits >= 1

    def test_different_configs_miss(self, cache):
        a = get_run(RubisConfig(clients=10, stages=TINY.stages, seed=TINY.seed), cache)
        b = get_run(RubisConfig(clients=12, stages=TINY.stages, seed=TINY.seed), cache)
        assert a is not b

    def test_config_key_is_stable_and_distinct(self):
        a = RubisConfig(clients=10)
        b = RubisConfig(clients=10)
        c = RubisConfig(clients=11)
        assert config_key(a) == config_key(b)
        assert config_key(a) != config_key(c)


class TestFigureGenerators:
    def test_figure8_requests_grow_with_clients(self, cache):
        result = figure8(TINY, cache)
        requests = result.column("requests")
        assert len(requests) == 2
        assert requests[1] > requests[0]

    def test_figure11_memory_grows_with_window(self, cache):
        result = figure11(TINY, cache)
        series = {row["window_s"]: row["peak_buffered_activities"] for row in result.rows}
        assert series[0.1] >= series[0.001]

    def test_figure15_has_one_row_per_client_count(self, cache):
        result = figure15(TINY, cache)
        assert result.column("clients") == [20, 60]
        for row in result.rows:
            shares = [value for key, value in row.items() if key != "clients"]
            assert sum(shares) == pytest.approx(100.0, abs=2.0)

    def test_figure16_compares_two_maxthreads_settings(self, cache):
        result = figure16(TINY, cache)
        for row in result.rows:
            assert row["tp_mt250_rps"] >= 0
            assert row["rt_mt40_ms"] > 0

    def test_figure17_contains_all_four_scenarios(self, cache):
        result = figure17(TINY, cache)
        assert result.column("scenario") == ["normal", "EJB_Delay", "Database_Lock", "EJB_Network"]

    def test_figure17_diagnosis_points_at_injected_components(self, cache):
        suspects = figure17_diagnosis(TINY, cache, threshold=5.0)
        assert "java" in suspects["EJB_Delay"]
        assert "mysqld" in suspects["Database_Lock"]

    def test_accuracy_table_is_all_perfect(self, cache):
        result = accuracy_table(TINY, cache)
        assert result.rows
        assert all(row["accuracy"] == 1.0 for row in result.rows)

    def test_baseline_comparison_shows_the_precision_gap(self, cache):
        result = baseline_comparison(TINY, cache)
        for row in result.rows:
            assert row["precisetracer"] == 1.0
            assert row["wap5_style"] <= 1.0

    def test_figure_result_helpers(self):
        result = FigureResult(
            figure_id="x", title="t", columns=["a", "b"], rows=[{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        )
        assert result.column("a") == [1, 3]
        assert result.series("a", "b") == {1: 2, 3: 4}


class TestReportRendering:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(1.23456) == "1.235"
        assert format_value("txt") == "txt"

    def test_render_table_contains_headers_and_rows(self):
        result = FigureResult(
            figure_id="fig", title="Demo", columns=["col"], rows=[{"col": 42}]
        )
        text = render_table(result)
        assert "Demo" in text
        assert "col" in text
        assert "42" in text

    def test_render_report_and_write(self, tmp_path):
        result = FigureResult(figure_id="fig", title="Demo", columns=["c"], rows=[{"c": 1}])
        path = tmp_path / "report.txt"
        text = write_report([result, result], str(path))
        assert path.read_text() == text
        assert text.count("Demo") == 2
        assert render_report([result]).endswith("\n")
