"""The swappable rank-kernel: selection policy, parity, and plumbing.

The kernel seam (``repro.core.kernel``) provides the candidate-selection
sweep in two forms: the pure-Python reference (the semantic definition,
from which every golden digest is generated) and an optional compiled
CPython extension.  These tests pin three things:

* **selection policy** -- ``REPRO_KERNEL=python`` pins the reference,
  ``native`` is required-or-error (never a silent fallback), ``auto``
  prefers the extension and falls back silently without a toolchain;
* **parity** -- the compiled kernel returns bit-identical decisions to
  the reference on a randomized battery of head-column states, and
  end-to-end correlation digests agree under both backends (the full
  golden matrices run under both kernels on the two CI legs);
* **plumbing** -- the ranker re-binds its selector when streaming
  ingest grows the head columns, and pickling (checkpoint/resume) drops
  the bound selector and re-resolves the kernel in the restoring
  process.
"""

import math
import pickle
import random

import pytest

from helpers import tiny_config
import repro.core.kernel as kernel
from repro.core.kernel import (
    BLOCKED,
    DISCARD,
    EMPTY,
    RULE1,
    RULE2,
    STALL,
    KernelUnavailableError,
    kernel_info,
    kernel_provenance,
    reference,
)
from repro.core.kernel import _native


def native_module_or_none():
    try:
        return _native.load(allow_build=True, retry_failed=True)
    except _native.KernelBuildError:
        return None


NATIVE = native_module_or_none()
needs_native = pytest.mark.skipif(
    NATIVE is None, reason="no C toolchain: compiled kernel unavailable"
)


@pytest.fixture
def fresh_cache():
    """Run with an empty kernel-resolution cache, restore it afterwards."""
    kernel._reset_cache()
    yield
    kernel._reset_cache()


class TestSelectionPolicy:
    def test_python_mode_pins_the_reference(self, fresh_cache):
        info = kernel_info("python")
        assert info.name == "python"
        assert info.make_selector is reference.make_selector
        assert info.float_column is list and info.int_column is list

    def test_unknown_mode_raises(self, fresh_cache):
        with pytest.raises(ValueError, match="REPRO_KERNEL"):
            kernel_info("typo")

    def test_env_var_drives_the_default(self, fresh_cache, monkeypatch):
        monkeypatch.setenv(kernel.ENV_VAR, "python")
        assert kernel_info().requested == "python"

    def test_native_unavailable_is_a_clear_error(self, fresh_cache, monkeypatch):
        def refuse(**kwargs):
            raise _native.KernelBuildError("no C compiler found (test)")

        monkeypatch.setattr(_native, "load", refuse)
        with pytest.raises(KernelUnavailableError, match="REPRO_KERNEL=native"):
            kernel_info("native")

    def test_auto_falls_back_silently_without_a_toolchain(
        self, fresh_cache, monkeypatch
    ):
        def refuse(**kwargs):
            raise _native.KernelBuildError("no C compiler found (test)")

        monkeypatch.setattr(_native, "load", refuse)
        info = kernel_info("auto")
        assert info.name == "python"
        assert "fallback" in info.reason
        assert info.make_selector is reference.make_selector

    @needs_native
    def test_auto_prefers_a_built_extension(self, fresh_cache):
        info = kernel_info("auto")
        assert info.name == "native"
        assert info.make_selector is NATIVE.make_selector

    def test_provenance_columns(self, fresh_cache):
        provenance = kernel_provenance("python")
        assert provenance == {
            "kernel": "python",
            "kernel_requested": "python",
            "kernel_reason": provenance["kernel_reason"],
        }
        assert provenance["kernel_reason"]


@needs_native
class TestDecisionParity:
    def test_decision_codes_agree(self):
        for name in ("RULE1", "RULE2", "EMPTY", "DISCARD", "BLOCKED", "STALL"):
            assert getattr(NATIVE, name) == getattr(reference, name), name

    def _random_state(self, rng, n):
        """A random-but-plausible head-column state plus index dicts."""
        from array import array

        head_ts = array("d")
        head_pri = array("q")
        head_seq = array("q")
        head_keys = []
        mmap_pending = {}
        buffered = {}
        future = {}
        for slot in range(n):
            if rng.random() < 0.2:  # empty slot
                head_ts.append(math.inf)
                head_pri.append(9)
                head_seq.append(0)
                head_keys.append(None)
                continue
            # duplicate timestamps exercise the tie-breaks
            head_ts.append(rng.choice([0.5, 1.0, 1.5, rng.random() * 2]))
            pri = rng.choice([0, 1, 2, 3, 3])  # receives overrepresented
            head_pri.append(pri)
            head_seq.append(rng.randrange(100))
            if pri == 3:
                key = rng.randrange(5)
                head_keys.append(key)
                state = rng.random()
                if state < 0.35:
                    mmap_pending[key] = ["sentinel send"]  # Rule-1 eligible
                elif state < 0.55:
                    buffered[key] = {"node": ["sentinel"]}  # blocked
                elif state < 0.7:
                    future[key] = rng.choice([0, 1, 2])  # maybe blocked
                # else: noise (no matching SEND anywhere)
            else:
                head_keys.append(None)
        return head_ts, head_pri, head_seq, head_keys, mmap_pending, buffered, future

    def test_randomized_battery_matches_the_reference(self):
        from array import array

        rng = random.Random(20260807)
        for case in range(400):
            n = rng.randrange(1, 7)
            columns = self._random_state(rng, n)
            ceiling = rng.choice([math.inf, 0.75, 1.25, 2.5])
            ref_blocked, ref_discard = [0] * n, [0] * n
            nat_blocked, nat_discard = array("q", [0] * n), array("q", [0] * n)
            ref = reference.make_selector(*columns, ref_blocked, ref_discard)
            nat = NATIVE.make_selector(*columns, nat_blocked, nat_discard)
            ref_decision = ref(ceiling)
            nat_decision = nat(ceiling)
            assert ref_decision == nat_decision, (case, ceiling, columns)
            code, value = ref_decision & 7, ref_decision >> 3
            if code in (BLOCKED, DISCARD):
                assert list(nat_blocked[:value] if code == BLOCKED else nat_discard[:value]) == (
                    ref_blocked[:value] if code == BLOCKED else ref_discard[:value]
                ), (case, ceiling, columns)

    def test_mismatched_column_lengths_are_rejected(self):
        from array import array

        with pytest.raises(ValueError, match="slot count"):
            NATIVE.make_selector(
                array("d", [1.0, 2.0]),
                array("q", [0]),  # shorter than head_ts
                array("q", [0, 0]),
                [None, None],
                {},
                {},
                {},
                array("q", [0, 0]),
                array("q", [0, 0]),
            )


class TestEndToEndParity:
    @pytest.fixture(scope="class")
    def tiny_deployment(self):
        from repro.services.rubis.deployment import run_rubis

        return run_rubis(tiny_config())

    def _digest(self, activities):
        from repro.pipeline.backends import BackendSpec
        from repro.pipeline.equivalence import result_digest

        return result_digest(
            BackendSpec.batch(window=0.010).correlate(activities)
        )

    @needs_native
    def test_correlation_digest_identical_under_both_kernels(
        self, tiny_deployment, monkeypatch
    ):
        # correlation mutates activities in place (byte balances), so
        # each backend run classifies its own fresh activity objects
        monkeypatch.setenv(kernel.ENV_VAR, "python")
        python_digest = self._digest(tiny_deployment.activities())
        monkeypatch.setenv(kernel.ENV_VAR, "native")
        native_digest = self._digest(tiny_deployment.activities())
        assert python_digest == native_digest

    @pytest.mark.parametrize("mode", ["python", "native"])
    def test_fuzz_smoke_is_green(self, mode, monkeypatch):
        if mode == "native" and NATIVE is None:
            pytest.skip("no C toolchain: compiled kernel unavailable")
        from repro.fuzz.harness import run_fuzz

        monkeypatch.setenv(kernel.ENV_VAR, mode)
        report = run_fuzz(seeds=5)
        assert report.failures == []


class TestRankerPlumbing:
    def _ranker(self, mode, activities_by_node):
        from repro.core.index_maps import MessageMap
        from repro.core.ranker import Ranker

        return Ranker(activities_by_node, MessageMap(), window=0.010)

    def _drain(self, ranker):
        out = []
        while True:
            candidate = ranker.rank()
            if candidate is None:
                break
            out.append((candidate.node_key, candidate.seq))
        return out

    @pytest.mark.parametrize("mode", ["python", "native"])
    def test_pickle_roundtrip_preserves_the_stream(self, mode, monkeypatch):
        if mode == "native" and NATIVE is None:
            pytest.skip("no C toolchain: compiled kernel unavailable")
        monkeypatch.setenv(kernel.ENV_VAR, mode)
        from helpers import SyntheticTrace

        script = SyntheticTrace()
        script.three_tier_request(1, 0.001)
        script.three_tier_request(2, 0.050)
        by_node = script.by_node()

        uninterrupted = self._drain(self._ranker(mode, by_node))
        ranker = self._ranker(mode, by_node)
        prefix = [ranker.rank() for _ in range(3)]
        restored = pickle.loads(pickle.dumps(ranker))
        assert restored.kernel_name == kernel_info().name
        resumed = [(p.node_key, p.seq) for p in prefix] + self._drain(restored)
        assert resumed == uninterrupted

    def test_streaming_ingest_rebinds_the_selector(self, monkeypatch):
        monkeypatch.setenv(kernel.ENV_VAR, "python")
        from repro.core.index_maps import MessageMap
        from repro.stream.ranker import StreamingRanker
        from helpers import SyntheticTrace

        script = SyntheticTrace()
        script.three_tier_request(1, 0.001)
        ranker = StreamingRanker(MessageMap(), window=0.010, skew_bound=0.005)
        by_node = script.by_node()
        nodes = list(by_node)
        ranker.ingest(by_node[nodes[0]])
        ranker.rank()  # binds a selector over the current slot count
        bound = ranker._select
        assert bound is not None
        for node in nodes[1:]:
            ranker.ingest(by_node[node])
        # growing the head columns must invalidate the bound selector
        assert ranker._select is None
        ranker.seal()
        while ranker.rank() is not None:
            pass
        assert ranker.exhausted()
